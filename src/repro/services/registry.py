"""The service registry: where Qurator services are deployed and found.

Registration assigns each service a unique endpoint under a host URL;
lookups are by name, by endpoint, or by implemented IQ concept (the
query the binding registry and the QV compiler issue).  ``wsdl_index``
simulates the published-WSDL surface the workflow scavenger crawls.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.rdf import URIRef
from repro.services.interface import Service
from repro.services.wsdl import wsdl_for


class ServiceRegistry:
    """Registry of deployed services, keyed every way the framework needs."""

    def __init__(self, host: str = "http://qurator.org/services") -> None:
        self.host = host.rstrip("/")
        self._by_name: Dict[str, Service] = {}
        self._by_endpoint: Dict[str, Service] = {}
        self._by_concept: Dict[URIRef, List[Service]] = {}
        #: Per-endpoint circuit-breaker registry, installed by a
        #: :class:`repro.resilience.ResilientInvoker`; the registry
        #: itself stays resilience-agnostic and only republishes the
        #: health counters (see :meth:`health`).
        self.health_registry: Optional[Any] = None

    def deploy(self, service: Service) -> str:
        """Register a service; assigns its endpoint. Returns the endpoint."""
        if service.name in self._by_name:
            raise ValueError(f"a service named {service.name!r} is already deployed")
        endpoint = f"{self.host}/{service.name}"
        service.endpoint = endpoint
        self._by_name[service.name] = service
        self._by_endpoint[endpoint] = service
        self._by_concept.setdefault(service.concept, []).append(service)
        return endpoint

    def replace(self, service: Service) -> Service:
        """Swap the same-named deployed service in place.

        The replacement inherits the deployed endpoint, so compiled
        bindings and WSDL links stay valid — this is how a
        :class:`repro.resilience.FlakyService` wrapper (or a patched
        implementation) takes over an endpoint.  Returns the service
        it replaced.
        """
        try:
            previous = self._by_name[service.name]
        except KeyError:
            raise KeyError(
                f"no service named {service.name!r} to replace; "
                f"deployed: {sorted(self._by_name)}"
            ) from None
        service.endpoint = previous.endpoint
        self._by_name[service.name] = service
        self._by_endpoint[previous.endpoint] = service
        siblings = self._by_concept.setdefault(service.concept, [])
        previous_siblings = self._by_concept.get(previous.concept, [])
        if previous in previous_siblings:
            previous_siblings.remove(previous)
        siblings.append(service)
        return previous

    def health(self) -> Dict[str, Any]:
        """endpoint -> circuit-breaker snapshot for deployed services.

        Empty when no resilient invoker has been attached; endpoints
        that were never invoked through the invoker are omitted.
        """
        if self.health_registry is None:
            return {}
        known = self.health_registry.snapshots()
        return {
            endpoint: known[endpoint]
            for endpoint in self._by_endpoint
            if endpoint in known
        }

    def undeploy(self, name: str) -> None:
        """Remove a service from every index (idempotent)."""
        service = self._by_name.pop(name, None)
        if service is None:
            return
        self._by_endpoint.pop(service.endpoint, None)
        siblings = self._by_concept.get(service.concept, [])
        if service in siblings:
            siblings.remove(service)

    def by_name(self, name: str) -> Service:
        """The service by name; KeyError lists the catalogue."""

        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no service named {name!r}; deployed: {sorted(self._by_name)}"
            ) from None

    def by_endpoint(self, endpoint: str) -> Service:
        """The service at an endpoint URL."""

        try:
            return self._by_endpoint[endpoint]
        except KeyError:
            raise KeyError(f"no service at endpoint {endpoint!r}") from None

    def by_concept(self, concept: URIRef) -> List[Service]:
        """Every service implementing an IQ concept."""
        return list(self._by_concept.get(concept, []))

    def resolve_concept(self, concept: URIRef) -> Service:
        """The unique service implementing a concept; error if ambiguous."""
        candidates = self.by_concept(concept)
        if not candidates:
            raise KeyError(f"no service implements concept {concept}")
        if len(candidates) > 1:
            names = sorted(s.name for s in candidates)
            raise KeyError(
                f"concept {concept} is implemented by several services: {names}; "
                f"bind one explicitly in the binding registry"
            )
        return candidates[0]

    def services(self) -> List[Service]:
        """All deployed services."""
        return list(self._by_name.values())

    def wsdl_index(self) -> Dict[str, str]:
        """endpoint -> WSDL document, the surface the scavenger crawls."""
        return {s.endpoint: wsdl_for(s) for s in self._by_name.values()}

    def __iter__(self) -> Iterator[Service]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
