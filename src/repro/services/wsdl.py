"""WSDL descriptor generation for deployed services.

The workflow scavenger discovers services by reading WSDL from a host
(paper Sec. 6.1: "any deployed Web Service with a published WSDL
interface can be found automatically").  Descriptors here are small but
structurally genuine WSDL 1.1 documents sharing the single port type of
the common interface.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

_WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
_TNS = "http://qurator.org/services#"

_TEMPLATE = """<?xml version="1.0" encoding="UTF-8"?>
<definitions name="{name}"
    targetNamespace="{tns}"
    xmlns="{wsdl}"
    xmlns:tns="{tns}">
  <message name="ProcessRequest">
    <part name="dataSet" element="tns:DataSet"/>
    <part name="annotationMap" element="tns:AnnotationMap"/>
  </message>
  <message name="ProcessResponse">
    <part name="annotationMap" element="tns:AnnotationMap"/>
  </message>
  <portType name="QuratorServicePortType">
    <operation name="process">
      <input message="tns:ProcessRequest"/>
      <output message="tns:ProcessResponse"/>
    </operation>
  </portType>
  <service name="{name}">
    <documentation>concept={concept}</documentation>
    <port name="{name}Port" binding="tns:QuratorServiceBinding">
      <address location="{endpoint}"/>
    </port>
  </service>
</definitions>
"""


def wsdl_for(service) -> str:
    """Render the WSDL document describing one deployed service."""
    return _TEMPLATE.format(
        name=service.name,
        tns=_TNS,
        wsdl=_WSDL_NS,
        concept=service.concept,
        endpoint=service.endpoint,
    )


def parse_wsdl(text: str) -> dict:
    """Extract (name, endpoint, concept) from a WSDL document."""
    root = ET.fromstring(text)
    name = root.get("name") or ""
    endpoint = ""
    concept = ""
    for service in root.iter(f"{{{_WSDL_NS}}}service"):
        doc = service.find(f"{{{_WSDL_NS}}}documentation")
        if doc is not None and doc.text and doc.text.startswith("concept="):
            concept = doc.text[len("concept="):]
        for port in service.iter(f"{{{_WSDL_NS}}}port"):
            address = port.find(f"{{{_WSDL_NS}}}address")
            if address is not None:
                endpoint = address.get("location") or ""
    return {"name": name, "endpoint": endpoint, "concept": concept}
