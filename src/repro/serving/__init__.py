"""The multi-tenant quality-view serving layer.

The paper's deployment model ("quality views as services") makes a
compiled view a long-lived service invoked repeatedly by independent
consumers; this package is that serving tier for the whole framework:

* :mod:`~repro.serving.server` — a threaded stdlib HTTP/JSON server
  (:class:`QualityViewServer`) exposing view registration, enactment
  submission, job lifecycle, dead letters, metrics, and health;
* :mod:`~repro.serving.registry` — named view registrations shared by
  tenants, validated and compiled at ``PUT`` time;
* :mod:`~repro.serving.plans` — a fingerprint-keyed LRU of compiled
  workflows, installed as the framework compiler's plan cache so
  signature-identical views cost one compilation server-wide;
* :mod:`~repro.serving.quotas` — per-tenant token buckets behind the
  429/``Retry-After`` admission path (the queue's block/reject policy
  backs it for total-load protection);
* :mod:`~repro.serving.wire` — deterministic JSON codecs for results,
  jobs, and requests (served results are byte-equal to direct
  :class:`~repro.runtime.service.ExecutionService` runs).

``python -m repro serve`` wires a synthetic proteomics deployment
behind this server; see ``docs/architecture.md`` ("Serving layer").
"""

from repro.serving.plans import PlanCache
from repro.serving.quotas import QuotaDecision, QuotaManager, TokenBucket
from repro.serving.registry import (
    RegisteredView,
    RegistrationError,
    UnknownViewError,
    ViewRegistry,
)
from repro.serving.server import (
    QualityViewServer,
    ServingConfig,
    build_server,
)
from repro.serving.wire import WireError, encode_job, encode_result

__all__ = [
    "PlanCache",
    "QualityViewServer",
    "QuotaDecision",
    "QuotaManager",
    "RegisteredView",
    "RegistrationError",
    "ServingConfig",
    "TokenBucket",
    "UnknownViewError",
    "ViewRegistry",
    "WireError",
    "build_server",
    "encode_job",
    "encode_result",
]
