"""The shared compiled-plan cache of the serving layer.

Identical quality views registered by different tenants (or under
different names) hash to the same :func:`repro.qv.ir.view_fingerprint`;
the :class:`PlanCache` keys on that digest so the whole server performs
one compilation per distinct view signature, however many tenants
register it.  Installed as :attr:`repro.qv.compiler.QVCompiler.plan_cache`
it short-circuits the default-option optimizing pipeline.

The cache is a bounded LRU: registering views beyond ``capacity``
evicts the least-recently-used plan (it recompiles on next use — plans
are derived state, never the source of truth).  Lookups are
single-flight: the lock is held across a miss's compilation so two
concurrent registrations of the same view cannot both compile it.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict

from repro.observability import get_registry


def _counter(name: str, help_text: str):
    return get_registry().counter(name, help_text)


class PlanCache:
    """An LRU of compiled workflows keyed by ``view_fingerprint``."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._plans: "OrderedDict[str, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._compile_seconds = 0.0

    def _entries_gauge(self):
        # Resolved per touch: the process registry may be swapped
        # mid-run (tests install fresh registries).
        return get_registry().gauge(
            "repro_serving_plan_cache_entries",
            "Compiled plans currently cached by the serving layer.",
        )

    def get_or_compile(
        self, fingerprint: str, compile_fn: Callable[[], Any]
    ) -> Any:
        """The cached plan for ``fingerprint``, compiling on a miss.

        The compile runs under the cache lock (single-flight), so N
        concurrent registrations of one view signature cost exactly
        one compilation.
        """
        with self._lock:
            plan = self._plans.get(fingerprint)
            if plan is not None:
                self._plans.move_to_end(fingerprint)
                self._hits += 1
                _counter(
                    "repro_serving_plan_cache_hits_total",
                    "Plan-cache lookups served from a cached compilation.",
                ).inc()
                return plan
            self._misses += 1
            _counter(
                "repro_serving_plan_cache_misses_total",
                "Plan-cache lookups that required a fresh compilation.",
            ).inc()
            started = time.perf_counter()
            plan = compile_fn()
            elapsed = time.perf_counter() - started
            self._compile_seconds += elapsed
            get_registry().histogram(
                "repro_serving_plan_compile_seconds",
                "Wall-clock seconds compiling a view on a plan-cache miss.",
            ).observe(elapsed)
            self._plans[fingerprint] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self._evictions += 1
                _counter(
                    "repro_serving_plan_cache_evictions_total",
                    "Plans evicted from the LRU at capacity.",
                ).inc()
            self._entries_gauge().set(len(self._plans))
            return plan

    def contains(self, fingerprint: str) -> bool:
        """Whether a plan is cached (does not touch LRU order)."""
        with self._lock:
            return fingerprint in self._plans

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready reading of the cache counters."""
        with self._lock:
            compilations = self._misses
            return {
                "capacity": self.capacity,
                "entries": len(self._plans),
                "hits": self._hits,
                "misses": self._misses,
                "compilations": compilations,
                "evictions": self._evictions,
                "compile_seconds": round(self._compile_seconds, 6),
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<PlanCache {stats['entries']}/{self.capacity} plans, "
            f"{stats['hits']} hits / {stats['misses']} misses>"
        )
