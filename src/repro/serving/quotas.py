"""Per-tenant admission control: token buckets over monotonic time.

Each tenant gets one :class:`TokenBucket` (``rate`` tokens/second,
``burst`` capacity); an enactment costs one token.  A refused request
carries ``retry_after`` — the seconds until the bucket holds one token
again — which the server surfaces as the HTTP ``Retry-After`` header
on its 429 response.  Quotas guard *per-tenant fairness*; the queue's
block/reject policy (:class:`repro.runtime.service.ExecutionService`)
guards *total* load — a tenant inside its quota can still be refused
by queue backpressure, and vice versa.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.observability import get_registry


@dataclass(frozen=True)
class QuotaDecision:
    """The outcome of one admission check."""

    allowed: bool
    tenant: str
    #: Seconds until one token is available again (0.0 when allowed).
    retry_after: float = 0.0
    #: Tokens left after the check (floored at 0 for display).
    remaining: float = 0.0

    def retry_after_header(self) -> str:
        """``Retry-After`` header value (whole seconds, >= 1)."""
        return str(max(1, math.ceil(self.retry_after)))


class TokenBucket:
    """One tenant's bucket: ``burst`` capacity refilled at ``rate``/s."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock=time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/s, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self, cost: float = 1.0) -> "tuple[bool, float, float]":
        """(allowed, retry_after, remaining) for one request of ``cost``."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= cost:
                self._tokens -= cost
                return True, 0.0, self._tokens
            deficit = cost - self._tokens
            return False, deficit / self.rate, 0.0


class QuotaManager:
    """Token buckets keyed by tenant, created lazily on first use.

    ``rate``/``burst`` are the defaults for unseen tenants;
    :meth:`configure` pins a per-tenant override (e.g. a paid tier).
    ``rate=None`` disables quota enforcement entirely (every check
    allows).
    """

    def __init__(
        self,
        rate: Optional[float] = 50.0,
        burst: float = 100.0,
        clock=time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._overrides: Dict[str, "tuple[float, float]"] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether admission checks can ever refuse."""
        return self.rate is not None

    def configure(self, tenant: str, rate: float, burst: float) -> None:
        """Pin a per-tenant rate/burst (replaces any existing bucket)."""
        with self._lock:
            self._overrides[tenant] = (float(rate), float(burst))
            self._buckets[tenant] = TokenBucket(rate, burst, self._clock)

    def check(self, tenant: str, cost: float = 1.0) -> QuotaDecision:
        """Spend ``cost`` tokens of ``tenant``'s bucket, or refuse."""
        if self.rate is None:
            return QuotaDecision(allowed=True, tenant=tenant)
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                rate, burst = self._overrides.get(
                    tenant, (self.rate, self.burst)
                )
                bucket = TokenBucket(rate, burst, self._clock)
                self._buckets[tenant] = bucket
                get_registry().gauge(
                    "repro_serving_quota_tenants",
                    "Tenants with an active quota bucket.",
                ).set(len(self._buckets))
        allowed, retry_after, remaining = bucket.try_acquire(cost)
        if not allowed:
            get_registry().counter(
                "repro_serving_quota_rejections_total",
                "Enactments refused by a tenant's token bucket.",
                labels=("tenant",),
            ).labels(tenant=tenant).inc()
        return QuotaDecision(
            allowed=allowed,
            tenant=tenant,
            retry_after=retry_after,
            remaining=remaining,
        )

    def tenants(self) -> Dict[str, Dict[str, Any]]:
        """tenant -> {rate, burst} for every active bucket."""
        with self._lock:
            return {
                tenant: {"rate": bucket.rate, "burst": bucket.burst}
                for tenant, bucket in sorted(self._buckets.items())
            }
