"""The view registry: named, compiled quality views shared by tenants.

``PUT /views/{name}`` lands here: the XML is parsed, validated against
the framework's IQ model, and compiled through the framework compiler —
which routes default-option compiles through the server's
:class:`~repro.serving.plans.PlanCache`, so signature-identical views
(same fingerprint) registered under different names or by different
tenants share one compiled workflow and one precomputed wavefront
schedule.  Registration is idempotent per (name, fingerprint):
re-registering the same XML bumps nothing but the tenant set; changed
XML bumps the version and swaps the plan.

With a *durable graph* attached (``repro serve --store-dir``), every
registration is also written — name, source XML, version, tenant set —
as triples in a disk-backed store, and a restarted registry re-parses,
re-validates and re-compiles each persisted view at construction.  A
restarted server therefore re-serves its registered views without any
client re-registration, with byte-identical enactment results.
"""

from __future__ import annotations

import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.errors import QuratorError
from repro.observability import get_event_log, get_registry
from repro.qv.ir import view_fingerprint
from repro.rdf import Graph, Literal, Namespace, URIRef

if TYPE_CHECKING:
    from repro.core.framework import QuratorFramework
    from repro.core.quality_view import QualityView
    from repro.serving.plans import PlanCache

#: Vocabulary of the persisted-registration triples.
SV = Namespace("http://qurator.org/serving#")
#: Subject namespace: one node per registered view name.
VIEW_NS = "http://qurator.org/serving/view/"


def _view_subject(name: str) -> URIRef:
    return URIRef(VIEW_NS + urllib.parse.quote(name, safe=""))


class UnknownViewError(KeyError):
    """No view is registered under the requested name."""


class RegistrationError(ValueError):
    """The submitted view failed to parse, validate, or compile."""


@dataclass
class RegisteredView:
    """One name's registered view and its shared compiled plan."""

    name: str
    view: "QualityView"
    fingerprint: str
    version: int
    registered_at: float
    plan_cache_hit: bool
    tenants: Set[str] = field(default_factory=set)
    enactments: int = 0
    #: The source XML as submitted (what a durable registry persists).
    xml: str = ""
    #: True when this record was rebuilt from the durable store.
    restored: bool = False

    def describe(self) -> Dict[str, object]:
        """The JSON-ready registration document."""
        workflow = self.view.compile()
        schedule = workflow.ensure_schedule()
        return {
            "name": self.name,
            "view": self.view.name,
            "fingerprint": self.fingerprint,
            "version": self.version,
            "registered_at": self.registered_at,
            "plan_cache": "hit" if self.plan_cache_hit else "miss",
            "tenants": sorted(self.tenants),
            "enactments": self.enactments,
            "restored": self.restored,
            "processors": len(workflow.processors),
            "waves": len(schedule.stages),
        }


class ViewRegistry:
    """Thread-safe name -> :class:`RegisteredView` map of one server."""

    def __init__(
        self,
        framework: "QuratorFramework",
        plan_cache: "PlanCache",
        durable_graph: Optional[Graph] = None,
    ) -> None:
        self.framework = framework
        self.plan_cache = plan_cache
        # Route every default-option compile of this framework through
        # the shared cache; this is what makes cross-tenant plan reuse
        # automatic rather than a serving-layer special case.
        framework.compiler.plan_cache = plan_cache
        self._views: Dict[str, RegisteredView] = {}
        self._lock = threading.Lock()
        self._durable = durable_graph
        if durable_graph is not None:
            self._restore()

    # -- durability --------------------------------------------------------

    def _persist(self, record: RegisteredView) -> None:
        """Write one registration's current state to the durable graph."""
        graph = self._durable
        if graph is None or not record.xml:
            return
        subject = _view_subject(record.name)
        with graph._write_lock:
            graph.remove(subject, None, None)
            graph.add(subject, SV.name, Literal(record.name))
            graph.add(subject, SV.xml, Literal(record.xml))
            graph.add(subject, SV.version, Literal(record.version))
            for tenant in sorted(record.tenants):
                graph.add(subject, SV.tenant, Literal(tenant))
        graph.flush()

    def _forget(self, name: str) -> None:
        graph = self._durable
        if graph is None:
            return
        graph.remove(_view_subject(name), None, None)
        graph.flush()

    def _restore(self) -> None:
        """Re-register every view persisted in the durable graph.

        Each persisted view re-parses, re-validates, and re-compiles
        through the shared plan cache exactly as a fresh ``PUT`` would;
        the persisted version and tenant set are carried over.  A view
        that no longer compiles (e.g. the IQ model changed underneath
        it) is skipped with an event rather than failing startup.
        """
        graph = self._durable
        assert graph is not None
        restored = 0
        for subject in sorted(graph.subjects(SV.xml, None), key=str):
            name_term = graph.value(subject, SV.name, None)
            xml_term = graph.value(subject, SV.xml, None)
            version_term = graph.value(subject, SV.version, None)
            if name_term is None or xml_term is None:
                continue
            name = str(name_term.value if isinstance(name_term, Literal)
                       else name_term)
            xml_text = str(xml_term.value if isinstance(xml_term, Literal)
                           else xml_term)
            tenants = {
                str(t.value if isinstance(t, Literal) else t)
                for t in graph.objects(subject, SV.tenant)
            }
            try:
                version = int(version_term.value)  # type: ignore[union-attr]
            except (AttributeError, TypeError, ValueError):
                version = 1
            tenant_list = sorted(tenants) or ["public"]
            try:
                record = self.register(name, xml_text, tenant_list[0])
            except RegistrationError as exc:
                get_event_log().emit(
                    "serving.view.restore_failed",
                    view=name,
                    error=str(exc),
                )
                continue
            with self._lock:
                record.version = version
                record.tenants.update(tenant_list)
                record.restored = True
            restored += 1
        if restored:
            get_event_log().emit("serving.views.restored", count=restored)

    def register(
        self, name: str, xml_text: str, tenant: str
    ) -> RegisteredView:
        """Parse, validate, compile, and (re)register one view."""
        try:
            view = self.framework.quality_view(xml_text)
            report = view.validate()
            if not report.ok():
                raise RegistrationError(
                    "view failed validation: " + "; ".join(report.errors)
                )
            fingerprint = view_fingerprint(view.spec)
            hit = self.plan_cache.contains(fingerprint)
            view.compile()
        except RegistrationError:
            raise
        except (QuratorError, ValueError) as exc:
            raise RegistrationError(str(exc)) from exc
        with self._lock:
            existing = self._views.get(name)
            if existing is not None and existing.fingerprint == fingerprint:
                existing.tenants.add(tenant)
                existing.plan_cache_hit = True
                record = existing
            else:
                record = RegisteredView(
                    name=name,
                    view=view,
                    fingerprint=fingerprint,
                    version=(existing.version + 1) if existing else 1,
                    registered_at=time.time(),
                    plan_cache_hit=hit,
                    tenants={tenant},
                    xml=xml_text,
                )
                self._views[name] = record
            count = len(self._views)
        self._persist(record)
        get_registry().gauge(
            "repro_serving_views_registered",
            "Views currently registered with the server.",
        ).set(count)
        get_event_log().emit(
            "serving.view.registered",
            view=name,
            tenant=tenant,
            fingerprint=fingerprint[:16],
            version=record.version,
            plan_cache="hit" if record.plan_cache_hit else "miss",
        )
        return record

    def get(self, name: str) -> RegisteredView:
        """The registered view, or :class:`UnknownViewError`."""
        with self._lock:
            record = self._views.get(name)
        if record is None:
            raise UnknownViewError(name)
        return record

    def unregister(self, name: str) -> bool:
        """Drop one registration; False when the name was unknown."""
        with self._lock:
            removed = self._views.pop(name, None) is not None
            count = len(self._views)
        if removed:
            self._forget(name)
            get_registry().gauge(
                "repro_serving_views_registered",
                "Views currently registered with the server.",
            ).set(count)
        return removed

    def names(self) -> List[str]:
        """Registered names, sorted."""
        with self._lock:
            return sorted(self._views)

    def describe_all(self) -> List[Dict[str, object]]:
        """Every registration's document, name-sorted."""
        with self._lock:
            records = [self._views[name] for name in sorted(self._views)]
        return [record.describe() for record in records]

    def count_enactment(self, name: str) -> None:
        """Bump one view's enactment counter (unknown names ignored)."""
        with self._lock:
            record = self._views.get(name)
            if record is not None:
                record.enactments += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)
