"""The multi-tenant quality-view server (``python -m repro serve``).

A threaded stdlib HTTP/JSON front end over one
:class:`~repro.core.framework.QuratorFramework` and one
:class:`~repro.runtime.service.ExecutionService`:

==============================  =============================================
``PUT /views/{name}``           register a view (XML or ``{"xml": ...}``);
                                compiles through the shared plan cache
``GET /views`` / ``{name}``     list / inspect registrations
``DELETE /views/{name}``        unregister
``POST /views/{name}/enact``    submit items through the runtime; per-tenant
                                token-bucket quotas and queue admission
                                control both answer 429 + ``Retry-After``
``GET /jobs`` / ``{id}``        job lifecycle and metrics
``GET /jobs/{id}/result``       the enactment's result document
``GET /deadletters``            jobs that exhausted their retry budget
``GET /datasets``               the server's named item catalogs
``GET /metrics`` / ``.json``    Prometheus text / joined JSON telemetry
``GET /healthz``                breaker states + queue depth + liveness
==============================  =============================================

Tenancy is declared per request (``X-Tenant`` header, default
``public``); tenants share compiled plans and the warm annotation
store but are rate-limited independently, so one tenant exhausting
its quota never blocks another (the end-to-end serving test pins
exactly this).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.observability import (
    PROMETHEUS_CONTENT_TYPE,
    get_event_log,
    get_registry,
    json_snapshot,
    render_prometheus,
)
from repro.rdf import URIRef
from repro.runtime.jobs import JobHandle, JobStatus
from repro.runtime.service import QueueFullError, RuntimeClosedError
from repro.serving import wire
from repro.serving.plans import PlanCache
from repro.serving.quotas import QuotaManager
from repro.serving.registry import (
    RegistrationError,
    UnknownViewError,
    ViewRegistry,
)
from repro.storage.errors import StorageError

if TYPE_CHECKING:
    from repro.core.framework import QuratorFramework
    from repro.runtime.service import ExecutionService

JSON_CONTENT_TYPE = "application/json"


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of one :class:`QualityViewServer`."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (``server.port`` reports it).
    port: int = 8099
    #: Per-tenant token-bucket refill rate (requests/second); ``None``
    #: disables quotas entirely.
    quota_rate: Optional[float] = 50.0
    #: Per-tenant burst capacity (tokens).
    quota_burst: float = 100.0
    #: LRU capacity of the shared compiled-plan cache.
    plan_cache_size: int = 128
    #: Tenant assumed when the request carries no ``X-Tenant`` header.
    default_tenant: str = "public"
    tenant_header: str = "X-Tenant"
    #: Largest accepted request body.
    max_body_bytes: int = 4 * 1024 * 1024
    #: Finished jobs kept inspectable through ``GET /jobs``.
    job_history: int = 1024
    #: Seconds a ``"wait": true`` enactment blocks before answering 504
    #: (a request ``"timeout"`` overrides, never exceeding this cap).
    wait_timeout: float = 60.0
    #: Durable state root (``repro serve --store-dir``).  When set, the
    #: view registry and the persistent annotation repositories open
    #: disk-backed stores under it: registered views and warm
    #: annotations survive restart.  ``None`` keeps everything
    #: in-memory.
    storage_dir: Optional[str] = None
    #: WAL sync policy of the serving stores (``always``/``batch``/
    #: ``none``); see ``repro.storage.wal``.
    storage_sync: str = "batch"

    def validated(self) -> "ServingConfig":
        """Range-check every field; returns self for chaining."""
        if self.port < 0:
            raise ValueError(f"port must be >= 0, got {self.port}")
        if self.quota_rate is not None and self.quota_rate <= 0:
            raise ValueError(
                f"quota_rate must be > 0 (or None to disable), "
                f"got {self.quota_rate}"
            )
        if self.quota_burst < 1:
            raise ValueError(
                f"quota_burst must be >= 1, got {self.quota_burst}"
            )
        if self.plan_cache_size < 1:
            raise ValueError(
                f"plan_cache_size must be >= 1, got {self.plan_cache_size}"
            )
        if self.job_history < 1:
            raise ValueError(
                f"job_history must be >= 1, got {self.job_history}"
            )
        if self.wait_timeout <= 0:
            raise ValueError(
                f"wait_timeout must be > 0 s, got {self.wait_timeout}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        from repro.storage import SYNC_MODES

        if self.storage_sync not in SYNC_MODES:
            raise ValueError(
                f"storage_sync must be one of {SYNC_MODES}, "
                f"got {self.storage_sync!r}"
            )
        return self

    def with_overrides(self, **overrides: Any) -> "ServingConfig":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides).validated()


@dataclass
class _JobRecord:
    """What the server remembers about one submitted enactment."""

    handle: JobHandle
    view: str
    tenant: str


class _Response(Exception):
    """An early-exit HTTP response raised from anywhere in a route."""

    def __init__(
        self,
        status: int,
        document: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(str(status))
        self.status = status
        self.document = document
        self.headers = headers or {}


class QualityViewServer:
    """One serving deployment: registry + quotas + runtime behind HTTP.

    The server owns its plan cache, view registry, quota manager, and
    job history; the framework and runtime are injected (the CLI builds
    them, tests may share them).  ``start()`` binds the listening
    socket; ``serve_forever()`` blocks; ``shutdown()`` stops the accept
    loop; ``close()`` also closes the socket and, when asked, drains
    the runtime.
    """

    def __init__(
        self,
        framework: "QuratorFramework",
        runtime: "ExecutionService",
        config: Optional[ServingConfig] = None,
        datasets: Optional[Mapping[str, Sequence[URIRef]]] = None,
    ) -> None:
        self.framework = framework
        self.runtime = runtime
        self.config = (config or ServingConfig()).validated()
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self._views_graph = None
        if self.config.storage_dir is not None:
            # Durable serving: registered views persist under
            # <store-dir>/views, persistent annotation repositories
            # under <store-dir>/annotations/<name>.  A restarted
            # server re-serves both without re-registration or
            # re-annotation.
            import pathlib

            from repro.storage import open_store

            root = pathlib.Path(self.config.storage_dir)
            self._views_graph = open_store(
                str(root / "views"), sync=self.config.storage_sync
            )
            framework.repositories.attach_storage(str(root / "annotations"))
        self.views = ViewRegistry(
            framework, self.plan_cache, durable_graph=self._views_graph
        )
        self.quotas = QuotaManager(
            self.config.quota_rate, self.config.quota_burst
        )
        self.datasets: Dict[str, List[URIRef]] = {
            name: list(items) for name, items in (datasets or {}).items()
        }
        self._jobs: "OrderedDict[int, _JobRecord]" = OrderedDict()
        self._jobs_lock = threading.Lock()
        # Incremental stream sessions: one enactor per registered view,
        # keyed by the registration fingerprint so re-registering a view
        # with new XML drops the stale memo state.
        self._streams: Dict[str, Tuple[str, Any]] = {}
        self._streams_lock = threading.Lock()
        self._started_at = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "QualityViewServer":
        """Bind the listening socket (idempotent); returns self."""
        if self._httpd is None:
            self._httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), self._handler_class()
            )
            self._httpd.daemon_threads = True
        return self

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("server is not started; call start() first")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The server's base URL."""
        return f"http://{self.config.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown`."""
        self.start()
        assert self._httpd is not None
        self._httpd.serve_forever()

    def serve_in_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns it."""
        self.start()
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serving",
            daemon=True,
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop the accept loop (safe from any thread, idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()

    def server_close(self) -> None:
        """Release the listening socket (``BaseServer`` lifecycle name,
        so :func:`repro.observability.serve_until_interrupt` drives
        this server like any stdlib one)."""
        if self._httpd is not None:
            self._httpd.server_close()
            self._httpd = None

    def close(self, shutdown_runtime: bool = False) -> None:
        """Shut down and release the socket; optionally drain the runtime.

        A durable server also flushes and closes its stores, so the
        next open replays nothing."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if shutdown_runtime:
            self.runtime.shutdown(drain=True)
        if self._views_graph is not None:
            self._views_graph.close()
            self._views_graph = None
            self.framework.repositories.close_all()

    def __enter__(self) -> "QualityViewServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- routing -----------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        """Serve one request; returns (status, content-type, body, headers).

        This is the whole HTTP surface minus socket handling, so tests
        can drive routes without a listening socket.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        started = time.perf_counter()
        route = "unknown"
        try:
            route, document, status, extra = self._route(
                method, path, body, headers
            )
            if route == "/metrics":
                payload: bytes = document  # pre-rendered Prometheus text
                content_type = PROMETHEUS_CONTENT_TYPE
            else:
                payload = wire.dumps(document)
                content_type = JSON_CONTENT_TYPE
        except _Response as response:
            status, extra = response.status, response.headers
            payload = wire.dumps(response.document)
            content_type = JSON_CONTENT_TYPE
        except wire.WireError as exc:
            status, extra = exc.status, {}
            payload = wire.dumps({"error": "bad_request", "message": str(exc)})
            content_type = JSON_CONTENT_TYPE
        except StorageError as exc:
            # Durable-store trouble answers with the same machine-
            # readable shape the storage layer raises (code + details).
            status, extra = 500, {}
            payload = wire.dumps({"error": exc.code, **exc.details()})
            content_type = JSON_CONTENT_TYPE
        except Exception as exc:  # noqa: BLE001 - request fault boundary
            status, extra = 500, {}
            payload = wire.dumps(
                {"error": type(exc).__name__, "message": str(exc)}
            )
            content_type = JSON_CONTENT_TYPE
        registry = get_registry()
        registry.counter(
            "repro_serving_http_requests_total",
            "HTTP requests served, by route template, method and status.",
            labels=("route", "method", "code"),
        ).labels(route=route, method=method, code=str(status)).inc()
        registry.histogram(
            "repro_serving_http_request_seconds",
            "Wall-clock seconds serving one HTTP request.",
            labels=("route",),
        ).labels(route=route).observe(time.perf_counter() - started)
        return status, content_type, payload, extra

    def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str],
    ) -> Tuple[str, Any, int, Dict[str, str]]:
        """(route template, document, status, headers) for one request."""
        path = path.split("?", 1)[0]
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"] and method == "GET":
            document, status = self._healthz()
            return "/healthz", document, status, {}
        if parts == ["metrics"] and method == "GET":
            return "/metrics", render_prometheus().encode("utf-8"), 200, {}
        if parts == ["metrics.json"] and method == "GET":
            return "/metrics.json", self._telemetry(), 200, {}
        if parts == ["datasets"] and method == "GET":
            return "/datasets", self._list_datasets(), 200, {}
        if parts == ["deadletters"] and method == "GET":
            return "/deadletters", self._deadletters(), 200, {}
        if parts and parts[0] == "views":
            if len(parts) == 1 and method == "GET":
                return "/views", {"views": self.views.describe_all()}, 200, {}
            if len(parts) == 2:
                name = parts[1]
                if method == "PUT":
                    document, status = self._register_view(
                        name, body, headers
                    )
                    return "/views/{name}", document, status, {}
                if method == "GET":
                    return (
                        "/views/{name}",
                        self._get_view(name).describe(),
                        200,
                        {},
                    )
                if method == "DELETE":
                    if not self.views.unregister(name):
                        raise _Response(404, self._unknown_view(name))
                    return "/views/{name}", {"deleted": name}, 200, {}
            if len(parts) == 3 and parts[2] == "enact" and method == "POST":
                document, status, extra = self._enact(
                    parts[1], body, headers
                )
                return "/views/{name}/enact", document, status, extra
            if len(parts) == 3 and parts[2] == "deltas" and method == "POST":
                document, status, extra = self._apply_delta(
                    parts[1], body, headers
                )
                return "/views/{name}/deltas", document, status, extra
        if parts and parts[0] == "jobs" and method == "GET":
            if len(parts) == 1:
                return "/jobs", self._list_jobs(), 200, {}
            if len(parts) == 2:
                record = self._get_job(parts[1])
                return (
                    "/jobs/{id}",
                    wire.encode_job(
                        record.handle, view=record.view, tenant=record.tenant
                    ),
                    200,
                    {},
                )
            if len(parts) == 3 and parts[2] == "result":
                return "/jobs/{id}/result", *self._job_result(parts[1]), {}
        raise _Response(
            404,
            {
                "error": "no_such_route",
                "message": f"{method} {path} is not served",
                "routes": [
                    "PUT /views/{name}", "GET /views", "GET /views/{name}",
                    "DELETE /views/{name}", "POST /views/{name}/enact",
                    "POST /views/{name}/deltas",
                    "GET /jobs", "GET /jobs/{id}", "GET /jobs/{id}/result",
                    "GET /deadletters", "GET /datasets", "GET /metrics",
                    "GET /metrics.json", "GET /healthz",
                ],
            },
        )

    # -- route implementations --------------------------------------------

    def _tenant(self, headers: Mapping[str, str]) -> str:
        return (
            headers.get(self.config.tenant_header.lower(), "").strip()
            or self.config.default_tenant
        )

    def _unknown_view(self, name: str) -> Dict[str, Any]:
        return {
            "error": "unknown_view",
            "message": f"no view registered as {name!r}",
            "views": self.views.names(),
        }

    def _get_view(self, name: str):
        try:
            return self.views.get(name)
        except UnknownViewError:
            raise _Response(404, self._unknown_view(name)) from None

    def _register_view(
        self, name: str, body: bytes, headers: Mapping[str, str]
    ) -> Tuple[Dict[str, Any], int]:
        tenant = self._tenant(headers)
        xml_text = wire.decode_view_registration(
            body, headers.get("content-type", "")
        )
        fresh = name not in self.views.names()
        try:
            record = self.views.register(name, xml_text, tenant)
        except RegistrationError as exc:
            raise _Response(
                422, {"error": "invalid_view", "message": str(exc)}
            ) from None
        document = record.describe()
        document["plan_cache_stats"] = self.plan_cache.stats()
        return document, 201 if fresh else 200

    def _enact(
        self, name: str, body: bytes, headers: Mapping[str, str]
    ) -> Tuple[Dict[str, Any], int, Dict[str, str]]:
        record = self._get_view(name)
        tenant = self._tenant(headers)
        items, wait, timeout = wire.decode_enact_request(
            wire.loads(body), self.datasets
        )
        decision = self.quotas.check(tenant)
        if not decision.allowed:
            self._count_enactment(tenant, "quota_rejected")
            raise _Response(
                429,
                {
                    "error": "quota_exhausted",
                    "tenant": tenant,
                    "retry_after": round(decision.retry_after, 3),
                },
                headers={"Retry-After": decision.retry_after_header()},
            )
        try:
            handle = self.runtime.submit(
                record.view,
                items,
                clear_cache=False,
                name=f"serve:{name}:{tenant}",
            )
        except QueueFullError as exc:
            self._count_enactment(tenant, "queue_rejected")
            raise _Response(
                429,
                {"error": "queue_full", "tenant": tenant, **exc.details()},
                headers={"Retry-After": "1"},
            ) from None
        except RuntimeClosedError as exc:
            raise _Response(
                503, {"error": "shutting_down", "message": str(exc)}
            ) from None
        self._count_enactment(tenant, "accepted")
        self.views.count_enactment(name)
        with self._jobs_lock:
            self._jobs[handle.job_id] = _JobRecord(handle, name, tenant)
            while len(self._jobs) > self.config.job_history:
                evicted_id, evicted = self._jobs.popitem(last=False)
                if not evicted.handle.done():
                    # Never forget a live job; re-insert and stop evicting.
                    self._jobs[evicted_id] = evicted
                    self._jobs.move_to_end(evicted_id, last=False)
                    break
        get_event_log().emit(
            "serving.enactment.accepted",
            view=name,
            tenant=tenant,
            job=handle.name,
            items=len(items),
        )
        job_document = wire.encode_job(handle, view=name, tenant=tenant)
        links = {
            "status": f"/jobs/{handle.job_id}",
            "result": f"/jobs/{handle.job_id}/result",
        }
        if not wait:
            return {"job": job_document, "links": links}, 202, {}
        deadline = min(
            timeout if timeout is not None else self.config.wait_timeout,
            self.config.wait_timeout,
        )
        if not handle.wait(deadline):
            return (
                {
                    "error": "timeout",
                    "message": f"job still {handle.status.value} "
                               f"after {deadline}s",
                    "job": wire.encode_job(handle, view=name, tenant=tenant),
                    "links": links,
                },
                504,
                {},
            )
        return self._finished_job_document(handle, name, tenant) + ({},)

    def _finished_job_document(
        self, handle: JobHandle, view: str, tenant: str
    ) -> Tuple[Dict[str, Any], int]:
        job_document = wire.encode_job(handle, view=view, tenant=tenant)
        if handle.status is JobStatus.SUCCEEDED:
            return (
                {
                    "job": job_document,
                    "result": wire.encode_result(handle.result()),
                },
                200,
            )
        status = 410 if handle.status is JobStatus.CANCELLED else 500
        return {"error": "job_failed", "job": job_document}, status

    def _apply_delta(
        self, name: str, body: bytes, headers: Mapping[str, str]
    ) -> Tuple[Dict[str, Any], int, Dict[str, str]]:
        """POST /views/{name}/deltas — incremental re-enactment.

        The body is ``{"delta": {...}}`` (see
        :func:`repro.stream.delta.delta_from_document`).  Admission
        reuses the tenant quota path of ``/enact``; the delta is then
        absorbed synchronously by the view's stream session — a
        per-view :class:`repro.stream.IncrementalEnactor` whose memo
        state lives as long as the registration (re-registering the
        view with different XML drops it).  Upsert values act as
        invalidation hints here: the view's annotators re-read their
        own evidence sources for the touched items.
        """
        from repro.stream.delta import delta_from_document
        from repro.stream.incremental import IncrementalEnactor, StreamError

        record = self._get_view(name)
        tenant = self._tenant(headers)
        document = wire.loads(body)
        if not isinstance(document, dict) or "delta" not in document:
            raise _Response(
                422,
                {
                    "error": "invalid_delta",
                    "message": "body must be a JSON object with a 'delta' key",
                },
            )
        try:
            delta = delta_from_document(document["delta"])
        except ValueError as exc:
            raise _Response(
                422, {"error": "invalid_delta", "message": str(exc)}
            ) from None
        decision = self.quotas.check(tenant)
        if not decision.allowed:
            self._count_enactment(tenant, "quota_rejected")
            raise _Response(
                429,
                {
                    "error": "quota_exhausted",
                    "tenant": tenant,
                    "retry_after": round(decision.retry_after, 3),
                },
                headers={"Retry-After": decision.retry_after_header()},
            )
        with self._streams_lock:
            session = self._streams.get(name)
            if session is None or session[0] != record.fingerprint:
                session = (record.fingerprint, IncrementalEnactor(record.view))
                self._streams[name] = session
        _fingerprint, enactor = session
        try:
            outcome = enactor.apply(delta)
        except StreamError as exc:
            raise _Response(
                422, {"error": "invalid_delta", "message": str(exc)}
            ) from None
        self._count_enactment(tenant, "accepted")
        self.views.count_enactment(name)
        get_event_log().emit(
            "serving.delta.accepted",
            view=name,
            tenant=tenant,
            fingerprint=outcome.report.delta_fingerprint,
            size=outcome.report.delta_size,
            items=outcome.report.items_total,
        )
        return (
            {
                "view": name,
                "tenant": tenant,
                "delta": {
                    "fingerprint": outcome.report.delta_fingerprint,
                    "size": outcome.report.delta_size,
                },
                "report": outcome.report.to_document(),
                "result": wire.encode_result(outcome.result),
            },
            200,
            {},
        )

    def _count_enactment(self, tenant: str, outcome: str) -> None:
        get_registry().counter(
            "repro_serving_enactments_total",
            "Enactment submissions by tenant and admission outcome "
            "(accepted/quota_rejected/queue_rejected).",
            labels=("tenant", "outcome"),
        ).labels(tenant=tenant, outcome=outcome).inc()

    def _get_job(self, job_id: str) -> _JobRecord:
        try:
            key = int(job_id)
        except ValueError:
            raise _Response(
                404,
                {"error": "unknown_job", "message": f"bad job id {job_id!r}"},
            ) from None
        with self._jobs_lock:
            record = self._jobs.get(key)
        if record is None:
            raise _Response(
                404,
                {"error": "unknown_job", "message": f"no job {key}"},
            )
        return record

    def _job_result(self, job_id: str) -> Tuple[Dict[str, Any], int]:
        record = self._get_job(job_id)
        handle = record.handle
        if not handle.done():
            return (
                {
                    "error": "not_finished",
                    "job": wire.encode_job(
                        handle, view=record.view, tenant=record.tenant
                    ),
                },
                409,
            )
        return self._finished_job_document(
            handle, record.view, record.tenant
        )

    def _list_jobs(self) -> Dict[str, Any]:
        with self._jobs_lock:
            records = list(self._jobs.values())
        return {
            "jobs": [
                wire.encode_job(r.handle, view=r.view, tenant=r.tenant)
                for r in records
            ]
        }

    def _deadletters(self) -> Dict[str, Any]:
        with self._jobs_lock:
            by_id = {
                record.handle.job_id: record
                for record in self._jobs.values()
            }
        letters = []
        for handle in list(self.runtime.dead_letters):
            record = by_id.get(handle.job_id)
            letters.append(
                wire.encode_job(
                    handle,
                    view=record.view if record else "",
                    tenant=record.tenant if record else "",
                )
            )
        return {"deadletters": letters}

    def _list_datasets(self) -> Dict[str, Any]:
        return {
            "datasets": {
                name: {"items": len(items)}
                for name, items in sorted(self.datasets.items())
            }
        }

    def _healthz(self) -> Tuple[Dict[str, Any], int]:
        health = self.framework.services.health()
        breakers = {
            endpoint: snap.state.value
            for endpoint, snap in sorted(health.items())
        }
        open_endpoints = sum(
            1 for state in breakers.values() if state == "open"
        )
        closed = self.runtime.closed
        status = "closed" if closed else (
            "degraded" if open_endpoints else "ok"
        )
        document = {
            "status": status,
            "uptime_s": round(time.time() - self._started_at, 3),
            "queue_depth": self.runtime.queue_depth(),
            "outstanding_jobs": self.runtime.outstanding,
            "workers": self.runtime.config.workers,
            "queue_capacity": self.runtime.config.queue_size,
            "views": len(self.views),
            "breakers": breakers,
            "open_endpoints": open_endpoints,
            "plan_cache": self.plan_cache.stats(),
            "storage": self._storage_health(),
        }
        get_registry().gauge(
            "repro_serving_uptime_seconds",
            "Seconds since the serving process started.",
        ).set(document["uptime_s"])
        return document, 503 if closed else 200

    def _storage_health(self) -> Dict[str, Any]:
        """The durable-store section of ``/healthz``."""
        if self._views_graph is None:
            return {"durable": False}
        stores: Dict[str, Any] = {
            "views": self._views_graph.backend.describe()
        }
        for store in self.framework.repositories:
            if store.durable:
                stores[f"annotations/{store.name}"] = (
                    store.graph.backend.describe()
                )
        return {
            "durable": True,
            "directory": self.config.storage_dir,
            "sync": self.config.storage_sync,
            "stores": stores,
        }

    def _telemetry(self) -> Dict[str, Any]:
        document = json_snapshot(
            services=self.framework.services, runtime=self.runtime
        )
        document["serving"] = {
            "views": self.views.describe_all(),
            "plan_cache": self.plan_cache.stats(),
            "tenants": self.quotas.tenants(),
            "queue_depth": self.runtime.queue_depth(),
            "outstanding_jobs": self.runtime.outstanding,
        }
        return document

    # -- stdlib handler ----------------------------------------------------

    def _handler_class(self):
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _serve(self) -> None:
                length = int(self.headers.get("Content-Length") or 0)
                if length > outer.config.max_body_bytes:
                    payload = wire.dumps(
                        {
                            "error": "body_too_large",
                            "limit": outer.config.max_body_bytes,
                        }
                    )
                    self._reply(413, JSON_CONTENT_TYPE, payload, {})
                    return
                body = self.rfile.read(length) if length else b""
                status, content_type, payload, extra = outer.dispatch(
                    self.command,
                    self.path,
                    body,
                    dict(self.headers.items()),
                )
                self._reply(status, content_type, payload, extra)

            def _reply(
                self,
                status: int,
                content_type: str,
                payload: bytes,
                extra: Dict[str, str],
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                for header, value in extra.items():
                    self.send_header(header, value)
                self.end_headers()
                self.wfile.write(payload)

            do_GET = _serve  # noqa: N815 - http.server API
            do_PUT = _serve  # noqa: N815
            do_POST = _serve  # noqa: N815
            do_DELETE = _serve  # noqa: N815

            def log_message(self, format: str, *args: Any) -> None:
                pass  # request accounting lives in the metric registry

        return _Handler


def build_server(
    framework: "QuratorFramework",
    runtime: "ExecutionService",
    config: Optional[ServingConfig] = None,
    datasets: Optional[Mapping[str, Sequence[URIRef]]] = None,
) -> QualityViewServer:
    """Construct (without binding) a :class:`QualityViewServer`."""
    return QualityViewServer(
        framework, runtime, config=config, datasets=datasets
    )
