"""Wire-format codecs: the serving layer's JSON documents.

Encoding is deterministic — sorted keys, insertion-ordered lists, and
plain (unwrapped) literal values — so two enactments that computed the
same result serialize to byte-identical documents.  That property is
load-bearing: the end-to-end serving test compares a served enactment
byte-for-byte against a direct :class:`ExecutionService` run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.annotation.map import AnnotationMap
from repro.core.results import QualityViewResult
from repro.rdf import Literal, URIRef
from repro.runtime.jobs import JobHandle


class WireError(ValueError):
    """A request document the server cannot decode."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def dumps(document: Any) -> bytes:
    """Serialize one response document deterministically."""
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":"),
                   default=_jsonable)
        + "\n"
    ).encode("utf-8")


def loads(body: bytes) -> Any:
    """Parse one request body; :class:`WireError` on malformed JSON."""
    if not body:
        raise WireError("empty request body; expected a JSON document")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed JSON request body: {exc}") from exc


def _jsonable(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


# -- results ---------------------------------------------------------------


def encode_annotation_map(amap: AnnotationMap) -> Dict[str, Any]:
    """One item-keyed document of evidence values and QA tags."""
    encoded: Dict[str, Any] = {}
    for item in amap.items():
        tags = {
            name: {
                "value": tag.plain(),
                "syn_type": str(tag.syn_type) if tag.syn_type else None,
                "sem_type": str(tag.sem_type) if tag.sem_type else None,
            }
            for name, tag in amap.tags_for(item).items()
        }
        evidence = {
            str(evidence_type): _plain_value(value)
            for evidence_type, value in amap.evidence_for(item).items()
        }
        encoded[str(item)] = {"evidence": evidence, "tags": tags}
    return encoded


def _plain_value(value: Any) -> Any:
    plain = value.value if hasattr(value, "value") else value
    if isinstance(plain, (str, int, float, bool)) or plain is None:
        return plain
    return str(plain)


def encode_result(result: QualityViewResult) -> Dict[str, Any]:
    """A :class:`QualityViewResult` as one JSON-ready document."""
    return {
        "view": result.view_name,
        "items": [str(item) for item in result.items],
        "groups": {
            action: {
                group: [str(item) for item in members]
                for group, members in by_group.items()
            }
            for action, by_group in result.groups.items()
        },
        "surviving": [str(item) for item in result.surviving()],
        "annotation_map": encode_annotation_map(result.annotation_map),
    }


# -- jobs ------------------------------------------------------------------


def encode_job(
    handle: JobHandle,
    view: str = "",
    tenant: str = "",
) -> Dict[str, Any]:
    """One job's lifecycle document (no result payload)."""
    metrics = handle.metrics
    document: Dict[str, Any] = {
        "job_id": handle.job_id,
        "name": handle.name,
        "status": handle.status.value,
        "view": view,
        "tenant": tenant,
        "retries": metrics.retries,
    }
    queue_wait = metrics.queue_wait
    if queue_wait is not None:
        document["queue_wait_ms"] = round(1000 * queue_wait, 3)
    run_seconds = metrics.run_seconds
    if run_seconds is not None:
        document["run_ms"] = round(1000 * run_seconds, 3)
        document["cache_lookups"] = metrics.cache_lookups
        document["cache_hits"] = metrics.cache_hits
    if handle.done():
        error = handle.exception()
        if error is not None:
            document["error"] = {
                "type": type(error).__name__,
                "message": str(error),
            }
    return document


# -- requests --------------------------------------------------------------


def decode_enact_request(
    document: Any,
    datasets: Optional[Mapping[str, Sequence[URIRef]]] = None,
) -> "tuple[List[URIRef], bool, Optional[float]]":
    """(items, wait, timeout) from one ``POST .../enact`` body.

    The body names its data either inline (``{"items": [...]}``) or by
    reference into the server's dataset catalog (``{"dataset": "r1"}``);
    ``"wait": true`` (with optional ``"timeout"`` seconds) asks for the
    result inline instead of a 202 + job handle.
    """
    if not isinstance(document, dict):
        raise WireError("enact body must be a JSON object")
    has_items = "items" in document
    has_dataset = "dataset" in document
    if has_items == has_dataset:
        raise WireError('enact body needs exactly one of "items", "dataset"')
    if has_items:
        raw = document["items"]
        if not isinstance(raw, list) or not all(
            isinstance(item, str) for item in raw
        ):
            raise WireError('"items" must be a list of URI strings')
        items = [URIRef(item) for item in raw]
    else:
        name = document["dataset"]
        catalog = datasets or {}
        if name not in catalog:
            raise WireError(
                f"unknown dataset {name!r}; "
                f"server has {sorted(catalog)}", status=404
            )
        items = list(catalog[name])
    wait = bool(document.get("wait", False))
    timeout = document.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise WireError('"timeout" must be a number of seconds') from None
        if timeout <= 0:
            raise WireError('"timeout" must be > 0 seconds')
    return items, wait, timeout


# -- inter-process messages (process execution backend) --------------------
#
# Every payload crossing a process boundary — job chunks, control
# messages, partial results, stats records, errors — is one of these
# message kinds, serialized with :func:`encode_message` and parsed with
# :func:`decode_message`.  The encoder is deliberately strict: only
# exact JSON types survive a round trip unchanged, so anything else
# (a ``URIRef``, a ``Literal``, a set, a custom object) is rejected
# *by name* at send time instead of arriving subtly transformed.
# Rich values (annotation maps, item lists, typed terms) must go
# through the explicit value codecs below.

#: Message kinds of the process backend's two queues.
#: parent -> worker: view (compile request), chunk (items to process),
#: clear (reset transient repositories), stop (drain and exit);
#: worker -> parent: ready (startup handshake), part (one chunk's
#: frontier values), stat (telemetry record), error (one chunk or
#: view failed).
MESSAGE_KINDS = frozenset(
    {"view", "chunk", "clear", "stop", "ready", "part", "stat", "error"}
)

_WIRE_SCALARS = (str, int, float, bool, type(None))


def _check_wire_safe(value: Any, path: str) -> None:
    """Reject anything that would not survive a JSON round trip.

    Checks *exact* types: a ``str`` subclass like ``URIRef`` or an
    ``int``-like enum would serialize fine but decode as its plain base
    type, which is precisely the silent corruption this guard exists to
    catch.  The error names the offending type and its path.
    """
    kind = type(value)
    if kind in _WIRE_SCALARS:
        return
    if kind is dict:
        for key, entry in value.items():
            if type(key) is not str:
                raise WireError(
                    f"non-serializable message: key {key!r} at {path} is "
                    f"{type(key).__name__}; wire keys must be plain str"
                )
            _check_wire_safe(entry, f"{path}.{key}")
        return
    if kind is list:
        for index, entry in enumerate(value):
            _check_wire_safe(entry, f"{path}[{index}]")
        return
    raise WireError(
        f"non-serializable message: value at {path} is "
        f"{kind.__name__}; encode it with a wire value codec first"
    )


def encode_message(document: Mapping[str, Any]) -> bytes:
    """Serialize one inter-process message after strict validation."""
    if not isinstance(document, dict):
        raise WireError(
            f"message must be a dict, got {type(document).__name__}"
        )
    kind = document.get("kind")
    if kind not in MESSAGE_KINDS:
        raise WireError(
            f"unknown message kind {kind!r}; valid: {sorted(MESSAGE_KINDS)}"
        )
    _check_wire_safe(document, "message")
    return dumps(document)


def decode_message(payload: bytes) -> Dict[str, Any]:
    """Parse one inter-process message; checks the kind tag."""
    document = loads(payload)
    if not isinstance(document, dict) or document.get("kind") not in MESSAGE_KINDS:
        raise WireError(
            f"malformed inter-process message: {document!r:.120}"
        )
    return document


def _encode_term(value: Any) -> Any:
    """One evidence/tag value, losslessly typed for the wire."""
    if value is None:
        return None
    if isinstance(value, Literal):
        return {
            "t": "lit",
            "l": value.lexical,
            "d": str(value.datatype) if value.datatype else None,
            "g": value.lang,
        }
    if isinstance(value, URIRef):
        return {"t": "uri", "v": str(value)}
    if type(value) in (str, int, float, bool):
        return {"t": "py", "v": value}
    raise WireError(
        f"cannot encode annotation value of type {type(value).__name__}"
    )


def _decode_term(document: Any) -> Any:
    if document is None:
        return None
    tag = document.get("t")
    if tag == "lit":
        return Literal(
            document["l"], datatype=document["d"], lang=document["g"]
        )
    if tag == "uri":
        return URIRef(document["v"])
    if tag == "py":
        return document["v"]
    raise WireError(f"unknown wire term tag {tag!r}")


def encode_typed_map(amap: AnnotationMap) -> Dict[str, Any]:
    """A lossless annotation-map codec for process hand-off.

    Unlike :func:`encode_annotation_map` (the human-facing result
    document, which flattens terms to plain JSON), this preserves term
    types and per-item insertion order, so a decoded map is ``==`` the
    original and downstream stages behave identically.
    """
    items = [str(item) for item in amap.items()]
    evidence = [
        [
            [str(etype), _encode_term(value)]
            for etype, value in amap.evidence_for(item).items()
        ]
        for item in amap.items()
    ]
    tags = [
        [
            [
                name,
                _encode_term(tag.value),
                str(tag.syn_type) if tag.syn_type else None,
                str(tag.sem_type) if tag.sem_type else None,
            ]
            for name, tag in amap.tags_for(item).items()
        ]
        for item in amap.items()
    ]
    return {"items": items, "evidence": evidence, "tags": tags}


def decode_typed_map(document: Mapping[str, Any]) -> AnnotationMap:
    """Rebuild an :class:`AnnotationMap` from :func:`encode_typed_map`."""
    try:
        items = [URIRef(item) for item in document["items"]]
        amap = AnnotationMap(items)
        for item, entries in zip(items, document["evidence"]):
            for etype, value in entries:
                amap.set_evidence(item, URIRef(etype), _decode_term(value))
        for item, entries in zip(items, document["tags"]):
            for name, value, syn_type, sem_type in entries:
                amap.set_tag(
                    item,
                    name,
                    _decode_term(value),
                    syn_type=URIRef(syn_type) if syn_type else None,
                    sem_type=URIRef(sem_type) if sem_type else None,
                )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed annotation-map document: {exc}") from exc
    return amap


def encode_stage_value(value: Any) -> Dict[str, Any]:
    """One frontier value (a shardable stage output) for the wire.

    Frontier values are what workers ship back to the parent: either an
    annotation map or a data-set (item list).  Anything else is a
    planner bug and fails loudly with the offending type's name.
    """
    if value is None:
        return {"kind": "null"}
    if isinstance(value, AnnotationMap):
        return {"kind": "annotationMap", "map": encode_typed_map(value)}
    if isinstance(value, (list, tuple)):
        bad = next(
            (entry for entry in value if not isinstance(entry, str)), None
        )
        if bad is not None:
            raise WireError(
                f"cannot encode data-set entry of type {type(bad).__name__}"
            )
        return {"kind": "dataSet", "items": [str(entry) for entry in value]}
    raise WireError(
        f"cannot encode inter-process stage value of type "
        f"{type(value).__name__}"
    )


def decode_stage_value(document: Mapping[str, Any]) -> Any:
    """Rebuild one frontier value from :func:`encode_stage_value`."""
    kind = document.get("kind")
    if kind == "null":
        return None
    if kind == "annotationMap":
        return decode_typed_map(document["map"])
    if kind == "dataSet":
        return [URIRef(item) for item in document["items"]]
    raise WireError(f"unknown stage-value kind {kind!r}")


def decode_view_registration(document: Any, content_type: str) -> str:
    """The view XML out of one ``PUT /views/{name}`` body.

    Accepts raw XML (``Content-Type: application/xml`` or a body that
    starts with ``<``) or a JSON wrapper ``{"xml": "<QualityView..."}``.
    """
    if isinstance(document, bytes):
        text = document.decode("utf-8", errors="replace")
    else:
        text = str(document)
    stripped = text.lstrip()
    if "xml" in content_type or stripped.startswith("<"):
        if not stripped:
            raise WireError("empty view registration body")
        return text
    parsed = loads(text.encode("utf-8"))
    if not isinstance(parsed, dict) or not isinstance(
        parsed.get("xml"), str
    ):
        raise WireError(
            'view registration must be XML or a JSON object {"xml": "..."}'
        )
    return parsed["xml"]
