"""Wire-format codecs: the serving layer's JSON documents.

Encoding is deterministic — sorted keys, insertion-ordered lists, and
plain (unwrapped) literal values — so two enactments that computed the
same result serialize to byte-identical documents.  That property is
load-bearing: the end-to-end serving test compares a served enactment
byte-for-byte against a direct :class:`ExecutionService` run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.annotation.map import AnnotationMap
from repro.core.results import QualityViewResult
from repro.rdf import URIRef
from repro.runtime.jobs import JobHandle


class WireError(ValueError):
    """A request document the server cannot decode."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def dumps(document: Any) -> bytes:
    """Serialize one response document deterministically."""
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":"),
                   default=_jsonable)
        + "\n"
    ).encode("utf-8")


def loads(body: bytes) -> Any:
    """Parse one request body; :class:`WireError` on malformed JSON."""
    if not body:
        raise WireError("empty request body; expected a JSON document")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed JSON request body: {exc}") from exc


def _jsonable(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


# -- results ---------------------------------------------------------------


def encode_annotation_map(amap: AnnotationMap) -> Dict[str, Any]:
    """One item-keyed document of evidence values and QA tags."""
    encoded: Dict[str, Any] = {}
    for item in amap.items():
        tags = {
            name: {
                "value": tag.plain(),
                "syn_type": str(tag.syn_type) if tag.syn_type else None,
                "sem_type": str(tag.sem_type) if tag.sem_type else None,
            }
            for name, tag in amap.tags_for(item).items()
        }
        evidence = {
            str(evidence_type): _plain_value(value)
            for evidence_type, value in amap.evidence_for(item).items()
        }
        encoded[str(item)] = {"evidence": evidence, "tags": tags}
    return encoded


def _plain_value(value: Any) -> Any:
    plain = value.value if hasattr(value, "value") else value
    if isinstance(plain, (str, int, float, bool)) or plain is None:
        return plain
    return str(plain)


def encode_result(result: QualityViewResult) -> Dict[str, Any]:
    """A :class:`QualityViewResult` as one JSON-ready document."""
    return {
        "view": result.view_name,
        "items": [str(item) for item in result.items],
        "groups": {
            action: {
                group: [str(item) for item in members]
                for group, members in by_group.items()
            }
            for action, by_group in result.groups.items()
        },
        "surviving": [str(item) for item in result.surviving()],
        "annotation_map": encode_annotation_map(result.annotation_map),
    }


# -- jobs ------------------------------------------------------------------


def encode_job(
    handle: JobHandle,
    view: str = "",
    tenant: str = "",
) -> Dict[str, Any]:
    """One job's lifecycle document (no result payload)."""
    metrics = handle.metrics
    document: Dict[str, Any] = {
        "job_id": handle.job_id,
        "name": handle.name,
        "status": handle.status.value,
        "view": view,
        "tenant": tenant,
        "retries": metrics.retries,
    }
    queue_wait = metrics.queue_wait
    if queue_wait is not None:
        document["queue_wait_ms"] = round(1000 * queue_wait, 3)
    run_seconds = metrics.run_seconds
    if run_seconds is not None:
        document["run_ms"] = round(1000 * run_seconds, 3)
        document["cache_lookups"] = metrics.cache_lookups
        document["cache_hits"] = metrics.cache_hits
    if handle.done():
        error = handle.exception()
        if error is not None:
            document["error"] = {
                "type": type(error).__name__,
                "message": str(error),
            }
    return document


# -- requests --------------------------------------------------------------


def decode_enact_request(
    document: Any,
    datasets: Optional[Mapping[str, Sequence[URIRef]]] = None,
) -> "tuple[List[URIRef], bool, Optional[float]]":
    """(items, wait, timeout) from one ``POST .../enact`` body.

    The body names its data either inline (``{"items": [...]}``) or by
    reference into the server's dataset catalog (``{"dataset": "r1"}``);
    ``"wait": true`` (with optional ``"timeout"`` seconds) asks for the
    result inline instead of a 202 + job handle.
    """
    if not isinstance(document, dict):
        raise WireError("enact body must be a JSON object")
    has_items = "items" in document
    has_dataset = "dataset" in document
    if has_items == has_dataset:
        raise WireError('enact body needs exactly one of "items", "dataset"')
    if has_items:
        raw = document["items"]
        if not isinstance(raw, list) or not all(
            isinstance(item, str) for item in raw
        ):
            raise WireError('"items" must be a list of URI strings')
        items = [URIRef(item) for item in raw]
    else:
        name = document["dataset"]
        catalog = datasets or {}
        if name not in catalog:
            raise WireError(
                f"unknown dataset {name!r}; "
                f"server has {sorted(catalog)}", status=404
            )
        items = list(catalog[name])
    wait = bool(document.get("wait", False))
    timeout = document.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise WireError('"timeout" must be a number of seconds') from None
        if timeout <= 0:
            raise WireError('"timeout" must be > 0 seconds')
    return items, wait, timeout


def decode_view_registration(document: Any, content_type: str) -> str:
    """The view XML out of one ``PUT /views/{name}`` body.

    Accepts raw XML (``Content-Type: application/xml`` or a body that
    starts with ``<``) or a JSON wrapper ``{"xml": "<QualityView..."}``.
    """
    if isinstance(document, bytes):
        text = document.decode("utf-8", errors="replace")
    else:
        text = str(document)
    stripped = text.lstrip()
    if "xml" in content_type or stripped.startswith("<"):
        if not stripped:
            raise WireError("empty view registration body")
        return text
    parsed = loads(text.encode("utf-8"))
    if not isinstance(parsed, dict) or not isinstance(
        parsed.get("xml"), str
    ):
        raise WireError(
            'view registration must be XML or a JSON object {"xml": "..."}'
        )
    return parsed["xml"]
