"""repro.storage — persistent, pluggable triple-store backends.

The package splits the dictionary-encoded triple store (PR 4) into a
front end (:class:`repro.rdf.graph.Graph`, unchanged API) and a
*storage backend* owning the term dictionary, the SPO/POS/OSP indices
and the per-predicate statistics:

* :class:`MemoryBackend` — the in-memory structures, verbatim;
* :class:`DiskBackend` — the same structures plus a write-ahead log
  with group-commit fsync batching, snapshot segments, crash-recovery
  replay, compaction and snapshot/restore (:mod:`repro.storage.disk`);
* :class:`PagedBackend` — immutable mmap'd sorted-run segments with a
  block cache, LSM-style size-tiered compaction and the WAL as the
  mutable L0, answering index probes from the files instead of RAM
  (:mod:`repro.storage.paged`, :mod:`repro.storage.pages`);
* :func:`bulk_load_ntriples` — a streaming loader that builds a store
  directory without per-triple WAL traffic (:mod:`repro.storage.bulk`).

``REPRO_STORAGE_BACKEND`` selects what a plain ``Graph()`` runs on:

* ``memory`` (default) — :class:`MemoryBackend`;
* ``disk-scratch`` / ``paged-scratch`` — a :class:`DiskBackend` /
  :class:`PagedBackend` in a per-process scratch directory with
  ``sync="none"``, removed at interpreter exit.  CI uses these to run
  the whole rdf/sparql/annotation/stream test tier against the durable
  backends without touching a single test.

Store directories are self-describing: the manifest's ``format`` (1 =
disk, 2 = paged) tells :func:`open_store` and every CLI subcommand
which engine to use, so consumers never hard-code one.
"""

from __future__ import annotations

import atexit
import itertools
import os
import shutil
import tempfile
import threading
from typing import Optional

from repro.storage.backend import (
    EncodedTriple,
    MemoryBackend,
    PredicateStats,
    StorageBackend,
    copy_state,
)
from repro.storage.bulk import bulk_load_ntriples, bulk_load_triples
from repro.storage.cursors import CURSOR_SUFFIX, CursorFile, cursor_files
from repro.storage.disk import DiskBackend
from repro.storage.errors import SnapshotMismatch, StorageError, WALCorruption
from repro.storage.paged import PagedBackend
from repro.storage.probe import DictIndexProbe, IndexProbe
from repro.storage.wal import SYNC_MODES, WALWriter

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "DiskBackend",
    "PagedBackend",
    "IndexProbe",
    "DictIndexProbe",
    "PredicateStats",
    "EncodedTriple",
    "copy_state",
    "StorageError",
    "WALCorruption",
    "SnapshotMismatch",
    "WALWriter",
    "SYNC_MODES",
    "bulk_load_ntriples",
    "bulk_load_triples",
    "CursorFile",
    "cursor_files",
    "CURSOR_SUFFIX",
    "backend_from_env",
    "detect_engine",
    "default_engine",
    "open_backend",
    "open_store",
    "scratch_directory",
    "BACKEND_ENV_VAR",
    "STORE_ENGINES",
]

#: Durable store engines a directory can hold (manifest ``format``).
STORE_ENGINES = ("disk", "paged")

#: Environment variable selecting the default ``Graph()`` backend.
BACKEND_ENV_VAR = "REPRO_STORAGE_BACKEND"

_scratch_lock = threading.Lock()
_scratch_root: Optional[str] = None
_scratch_counter = itertools.count(1)


def _cleanup_scratch() -> None:
    global _scratch_root
    if _scratch_root is not None:
        shutil.rmtree(_scratch_root, ignore_errors=True)
        _scratch_root = None


def scratch_directory() -> str:
    """A fresh store directory under the per-process scratch root.

    The root is created lazily and removed at interpreter exit; each
    call returns a distinct subdirectory.
    """
    global _scratch_root
    with _scratch_lock:
        if _scratch_root is None:
            _scratch_root = tempfile.mkdtemp(prefix="repro-store-")
            atexit.register(_cleanup_scratch)
        return os.path.join(
            _scratch_root, f"scratch-{next(_scratch_counter):06d}"
        )


def backend_from_env() -> StorageBackend:
    """The backend a bare ``Graph()`` should run on (env-selected)."""
    mode = os.environ.get(BACKEND_ENV_VAR, "memory").strip() or "memory"
    if mode == "memory" or mode in STORE_ENGINES:
        # A bare engine name ('disk', 'paged') steers *new durable
        # stores* via default_engine(); transient graphs stay in RAM.
        return MemoryBackend()
    if mode == "disk-scratch":
        return DiskBackend(scratch_directory(), sync="none")
    if mode == "paged-scratch":
        return PagedBackend(scratch_directory(), sync="none")
    raise StorageError(
        f"{BACKEND_ENV_VAR}={mode!r} is not a known backend "
        "(expected 'memory', 'disk', 'paged', 'disk-scratch' or "
        "'paged-scratch')"
    )


def default_engine() -> str:
    """The engine a *new* store directory should use.

    Follows ``REPRO_STORAGE_BACKEND`` so the ``paged-scratch`` CI tier
    exercises the paged engine in every consumer that creates stores
    (annotations, serving); plain environments keep creating disk
    stores.
    """
    mode = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return "paged" if mode.startswith("paged") else "disk"


def detect_engine(directory: str) -> Optional[str]:
    """The engine of an existing store directory, or ``None`` if empty.

    Reads only the manifest's ``format`` field: 1 is the disk engine,
    2 the paged engine.  An unreadable or unknown manifest raises
    :class:`SnapshotMismatch` — opening it could only fail later with
    a worse message.
    """
    import json

    from repro.storage.disk import MANIFEST_NAME

    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotMismatch(
            f"unreadable manifest {path}: {exc}", directory=str(directory)
        ) from exc
    version = manifest.get("format")
    if version == 1:
        return "disk"
    if version == 2:
        return "paged"
    raise SnapshotMismatch(
        f"manifest {path} has unknown format {version!r}",
        directory=str(directory),
    )


def open_backend(
    directory: str,
    *,
    engine: Optional[str] = None,
    sync: str = "batch",
    fsync_batch: int = 64,
    create: bool = True,
) -> StorageBackend:
    """Open (or create) a durable backend, auto-detecting the engine.

    An existing directory dictates its own engine from the manifest;
    ``engine`` (or, failing that, :func:`default_engine`) only decides
    what a *new* store becomes.  Passing an ``engine`` that contradicts
    an existing store raises :class:`StorageError` rather than
    silently opening it as something else.
    """
    existing = detect_engine(directory)
    if existing is not None:
        if engine is not None and engine != existing:
            raise StorageError(
                f"store at {directory} uses the {existing!r} engine; "
                f"cannot open it as {engine!r}",
                directory=str(directory),
            )
        engine = existing
    elif engine is None:
        engine = default_engine()
    if engine not in STORE_ENGINES:
        raise StorageError(
            f"unknown store engine {engine!r} "
            f"(expected one of {STORE_ENGINES})",
            directory=str(directory),
        )
    cls = PagedBackend if engine == "paged" else DiskBackend
    return cls(
        directory, sync=sync, fsync_batch=fsync_batch, create=create
    )


def open_store(
    directory: str,
    *,
    engine: Optional[str] = None,
    sync: str = "batch",
    fsync_batch: int = 64,
    create: bool = True,
):
    """Open (or create) a durable store as a ready-to-use ``Graph``."""
    from repro.rdf.graph import Graph

    return Graph(
        backend=open_backend(
            directory,
            engine=engine,
            sync=sync,
            fsync_batch=fsync_batch,
            create=create,
        )
    )
