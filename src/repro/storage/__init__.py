"""repro.storage — persistent, pluggable triple-store backends.

The package splits the dictionary-encoded triple store (PR 4) into a
front end (:class:`repro.rdf.graph.Graph`, unchanged API) and a
*storage backend* owning the term dictionary, the SPO/POS/OSP indices
and the per-predicate statistics:

* :class:`MemoryBackend` — the in-memory structures, verbatim;
* :class:`DiskBackend` — the same structures plus a write-ahead log
  with group-commit fsync batching, snapshot segments, crash-recovery
  replay, compaction and snapshot/restore (:mod:`repro.storage.disk`);
* :func:`bulk_load_ntriples` — a streaming loader that builds a store
  directory without per-triple WAL traffic (:mod:`repro.storage.bulk`).

``REPRO_STORAGE_BACKEND`` selects what a plain ``Graph()`` runs on:

* ``memory`` (default) — :class:`MemoryBackend`;
* ``disk-scratch`` — a :class:`DiskBackend` in a per-process scratch
  directory with ``sync="none"``, removed at interpreter exit.  CI
  uses this to run the whole rdf/sparql/annotation test tier against
  the durable backend without touching a single test.
"""

from __future__ import annotations

import atexit
import itertools
import os
import shutil
import tempfile
import threading
from typing import Optional

from repro.storage.backend import (
    EncodedTriple,
    MemoryBackend,
    PredicateStats,
    StorageBackend,
    copy_state,
)
from repro.storage.bulk import bulk_load_ntriples, bulk_load_triples
from repro.storage.cursors import CURSOR_SUFFIX, CursorFile, cursor_files
from repro.storage.disk import DiskBackend
from repro.storage.errors import SnapshotMismatch, StorageError, WALCorruption
from repro.storage.wal import SYNC_MODES, WALWriter

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "DiskBackend",
    "PredicateStats",
    "EncodedTriple",
    "copy_state",
    "StorageError",
    "WALCorruption",
    "SnapshotMismatch",
    "WALWriter",
    "SYNC_MODES",
    "bulk_load_ntriples",
    "bulk_load_triples",
    "CursorFile",
    "cursor_files",
    "CURSOR_SUFFIX",
    "backend_from_env",
    "open_store",
    "scratch_directory",
    "BACKEND_ENV_VAR",
]

#: Environment variable selecting the default ``Graph()`` backend.
BACKEND_ENV_VAR = "REPRO_STORAGE_BACKEND"

_scratch_lock = threading.Lock()
_scratch_root: Optional[str] = None
_scratch_counter = itertools.count(1)


def _cleanup_scratch() -> None:
    global _scratch_root
    if _scratch_root is not None:
        shutil.rmtree(_scratch_root, ignore_errors=True)
        _scratch_root = None


def scratch_directory() -> str:
    """A fresh store directory under the per-process scratch root.

    The root is created lazily and removed at interpreter exit; each
    call returns a distinct subdirectory.
    """
    global _scratch_root
    with _scratch_lock:
        if _scratch_root is None:
            _scratch_root = tempfile.mkdtemp(prefix="repro-store-")
            atexit.register(_cleanup_scratch)
        return os.path.join(
            _scratch_root, f"scratch-{next(_scratch_counter):06d}"
        )


def backend_from_env() -> StorageBackend:
    """The backend a bare ``Graph()`` should run on (env-selected)."""
    mode = os.environ.get(BACKEND_ENV_VAR, "memory").strip() or "memory"
    if mode == "memory":
        return MemoryBackend()
    if mode == "disk-scratch":
        return DiskBackend(scratch_directory(), sync="none")
    raise StorageError(
        f"{BACKEND_ENV_VAR}={mode!r} is not a known backend "
        "(expected 'memory' or 'disk-scratch')"
    )


def open_store(
    directory: str,
    *,
    sync: str = "batch",
    fsync_batch: int = 64,
    create: bool = True,
):
    """Open (or create) a durable store as a ready-to-use ``Graph``."""
    from repro.rdf.graph import Graph

    return Graph(
        backend=DiskBackend(
            directory, sync=sync, fsync_batch=fsync_batch, create=create
        )
    )
