"""The storage-backend contract behind :class:`repro.rdf.graph.Graph`.

A backend owns exactly the state the dictionary-encoded graph used to
keep inline (PR 4): the term dictionary (``Node`` → dense integer id,
ids never recycled), the three permutation indices (SPO, POS, OSP)
over those ids, the per-predicate cardinality statistics the SPARQL
planner reads, and the triple count.  The graph front end keeps direct
references to these structures — backends mutate them strictly *in
place* (never rebinding the dicts), which is what lets
``repro.rdf.sparql.plan`` snapshot ``graph._spo`` et al. once per
execution regardless of the backend behind them.

Concurrency: backends are *externally synchronized*.  The owning
``Graph`` serializes every mutation and read-materialisation under its
per-graph lock; a backend used directly (the bulk loader) is
single-threaded by construction.

Two implementations ship: :class:`MemoryBackend` (this module) — the
PR 4 structures verbatim — and :class:`repro.storage.disk.DiskBackend`,
which layers an append-only write-ahead log and segment snapshots on
the same in-memory indices so a store survives restart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Set, Tuple

if TYPE_CHECKING:
    from repro.rdf.term import Node

#: An index level: first-position id -> second-position id -> third ids.
Index = Dict[int, Dict[int, Set[int]]]

#: One dictionary-encoded triple.
EncodedTriple = Tuple[int, int, int]


class PredicateStats:
    """Incremental cardinalities of one predicate (planner input)."""

    __slots__ = ("triples", "subjects", "objects")

    def __init__(self, triples: int = 0, subjects: int = 0, objects: int = 0):
        self.triples = triples
        self.subjects = subjects
        self.objects = objects

    def copy(self) -> "PredicateStats":
        return PredicateStats(self.triples, self.subjects, self.objects)

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.triples, self.subjects, self.objects)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PredicateStats):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __repr__(self) -> str:
        return (
            f"PredicateStats(triples={self.triples}, "
            f"subjects={self.subjects}, objects={self.objects})"
        )


class StorageBackend:
    """Interface + shared in-memory index machinery of every backend.

    Subclasses override the mutation hooks (``intern``/``insert``/
    ``delete``/``insert_batch``/``clear``) to add durability, and the
    lifecycle hooks (``commit``/``flush``/``close``) to manage files.
    The index-maintenance logic itself lives here exactly once so both
    backends produce bit-identical indices and statistics for the same
    operation sequence — the property the reopen-parity tests pin.
    """

    #: Discriminator used in ``describe()`` and the CLI
    #: (``memory``/``disk``/``paged``).
    kind = "memory"
    #: True when the backend outlives the process.
    durable = False
    #: True when ``spo``/``pos``/``osp`` hold the *complete* index set
    #: as nested dicts (memory, disk).  Paged backends keep only a
    #: write overlay there and set this False; generic consumers
    #: (``copy_state``) must then go through the probe protocol.
    dict_indexed = True

    def __init__(self) -> None:
        self.term_ids: Dict["Node", int] = {}
        self.term_list: List["Node"] = []
        self.spo: Index = {}
        self.pos: Index = {}
        self.osp: Index = {}
        self.pred_stats: Dict[int, PredicateStats] = {}
        self.size = 0

    def probe(self):
        """The read-side :class:`repro.storage.probe.IndexProbe`.

        The default covers every dict-indexed backend; the returned
        probe aliases the live index structures, so one instance stays
        valid for the backend's lifetime.
        """
        from repro.storage.probe import DictIndexProbe

        return DictIndexProbe(self.spo, self.pos, self.osp, self.pred_stats)

    # -- term dictionary ---------------------------------------------------

    def intern(self, term: "Node") -> int:
        """Id of a term, creating one if it was never seen."""
        tid = self.term_ids.get(term)
        if tid is None:
            tid = len(self.term_list)
            self.term_ids[term] = tid
            self.term_list.append(term)
        return tid

    def encode(self, term: "Node") -> Optional[int]:
        """Id of a term if it has ever been interned, else ``None``."""
        return self.term_ids.get(term)

    # -- mutation ----------------------------------------------------------

    def insert(self, sid: int, pid: int, oid: int) -> bool:
        """Insert one encoded triple; returns True if it was new.

        Maintains the per-predicate cardinality statistics
        incrementally.
        """
        by_p = self.spo.get(sid)
        if by_p is not None:
            objects = by_p.get(pid)
            if objects is not None and oid in objects:
                return False
        stats = self.pred_stats.get(pid)
        if stats is None:
            stats = self.pred_stats[pid] = PredicateStats()
        if by_p is None or pid not in by_p:
            stats.subjects += 1
        by_o = self.pos.get(pid)
        if by_o is None:
            self.pos[pid] = by_o = {}
        if oid not in by_o:
            stats.objects += 1
        stats.triples += 1
        if by_p is None:
            self.spo[sid] = by_p = {}
        by_p.setdefault(pid, set()).add(oid)
        by_o.setdefault(oid, set()).add(sid)
        self.osp.setdefault(oid, {}).setdefault(sid, set()).add(pid)
        self.size += 1
        return True

    def insert_batch(self, batch: Iterable[EncodedTriple]) -> int:
        """Insert many encoded triples; returns how many were new.

        The statistics deltas are merged once per batch rather than
        updated per triple — the arithmetic is identical to repeated
        :meth:`insert`, only cheaper (pinned by the stats-equivalence
        regression tests).
        """
        spo, pos, osp = self.spo, self.pos, self.osp
        added: Dict[int, List[int]] = {}  # pid -> [triples, subj, obj]
        count = 0
        for sid, pid, oid in batch:
            by_p = spo.get(sid)
            if by_p is None:
                spo[sid] = by_p = {}
            objects = by_p.get(pid)
            if objects is None:
                by_p[pid] = objects = set()
                new_subject = True
            else:
                if oid in objects:
                    continue
                new_subject = False
            by_o = pos.get(pid)
            if by_o is None:
                pos[pid] = by_o = {}
            new_object = oid not in by_o
            objects.add(oid)
            by_o.setdefault(oid, set()).add(sid)
            osp.setdefault(oid, {}).setdefault(sid, set()).add(pid)
            delta = added.get(pid)
            if delta is None:
                delta = added[pid] = [0, 0, 0]
            delta[0] += 1
            if new_subject:
                delta[1] += 1
            if new_object:
                delta[2] += 1
            count += 1
        for pid, (n_triples, n_subjects, n_objects) in added.items():
            stats = self.pred_stats.get(pid)
            if stats is None:
                stats = self.pred_stats[pid] = PredicateStats()
            stats.triples += n_triples
            stats.subjects += n_subjects
            stats.objects += n_objects
        self.size += count
        return count

    def delete(self, sid: int, pid: int, oid: int) -> None:
        """Remove one present encoded triple."""
        by_p = self.spo[sid]
        objects = by_p[pid]
        objects.discard(oid)
        stats = self.pred_stats[pid]
        stats.triples -= 1
        if not objects:
            del by_p[pid]
            stats.subjects -= 1
            if not by_p:
                del self.spo[sid]
        by_o = self.pos[pid]
        subjects = by_o[oid]
        subjects.discard(sid)
        if not subjects:
            del by_o[oid]
            stats.objects -= 1
            if not by_o:
                del self.pos[pid]
        if stats.triples == 0:
            del self.pred_stats[pid]
        by_s = self.osp[oid]
        preds = by_s[sid]
        preds.discard(pid)
        if not preds:
            del by_s[sid]
            if not by_s:
                del self.osp[oid]
        self.size -= 1

    def contains(self, sid: int, pid: int, oid: int) -> bool:
        """Point membership probe on the SPO index."""
        return oid in self.spo.get(sid, {}).get(pid, ())

    def clear(self) -> None:
        """Drop every triple; the term dictionary is kept (in place)."""
        self.spo.clear()
        self.pos.clear()
        self.osp.clear()
        self.pred_stats.clear()
        self.size = 0

    # -- encoded iteration -------------------------------------------------

    def encoded_triples(self) -> Iterable[EncodedTriple]:
        """Every stored triple as encoded ids (no particular order)."""
        for sid, by_p in self.spo.items():
            for pid, objects in by_p.items():
                for oid in objects:
                    yield (sid, pid, oid)

    # -- lifecycle ---------------------------------------------------------

    def commit(self) -> None:
        """Make buffered mutations durable per the sync policy (no-op)."""

    def flush(self) -> None:
        """Force buffered mutations to stable storage (no-op)."""

    def close(self) -> None:
        """Release any resources (no-op; idempotent)."""

    def describe(self) -> Dict[str, Any]:
        """One JSON-ready summary of the backend (healthz/CLI feed)."""
        return {
            "kind": self.kind,
            "durable": self.durable,
            "triples": self.size,
            "terms": len(self.term_list),
            "predicates": len(self.pred_stats),
        }


class MemoryBackend(StorageBackend):
    """The PR 4 in-memory store, now behind the backend contract."""

    kind = "memory"
    durable = False

    def clone(self) -> "MemoryBackend":
        """A structurally-copied independent backend (bulk index copy)."""
        other = MemoryBackend()
        copy_state(self, other)
        return other


def copy_state(source: StorageBackend, target: StorageBackend) -> None:
    """Structurally copy one backend's state into a fresh target.

    The per-predicate statistics are copied explicitly — never
    recounted from the indices — so a copy is O(index size) and its
    ``predicate_stats()`` are identical to the source's by
    construction.  A non-dict-indexed source (paged) is drained
    through its probe-backed ``encoded_triples`` instead; its exact
    statistics are still copied, not recounted.  A non-dict-indexed
    *target* is filled through its public mutation API (``intern`` +
    ``insert_batch``) so durability hooks such as the WAL still fire.
    """
    if not target.dict_indexed:
        for term in source.term_list:
            target.intern(term)
        target.insert_batch(source.encoded_triples())
        target.commit()
        return
    if not source.dict_indexed:
        for tid in range(len(source.term_list)):
            target.term_ids[source.term_list[tid]] = tid
            target.term_list.append(source.term_list[tid])
        target.insert_batch(source.encoded_triples())
        target.pred_stats.clear()
        for pid, stats in source.pred_stats.items():
            target.pred_stats[pid] = stats.copy()
        target.size = source.size
        return
    target.term_ids.update(source.term_ids)
    target.term_list.extend(source.term_list)
    for a, by_b in source.spo.items():
        target.spo[a] = {b: set(c) for b, c in by_b.items()}
    for a, by_b in source.pos.items():
        target.pos[a] = {b: set(c) for b, c in by_b.items()}
    for a, by_b in source.osp.items():
        target.osp[a] = {b: set(c) for b, c in by_b.items()}
    for pid, stats in source.pred_stats.items():
        target.pred_stats[pid] = stats.copy()
    target.size = source.size
