"""Streaming bulk loader: N-Triples file -> fresh store directory.

Loading a large dataset through the WAL would write every triple twice
(once to the log, once again at the next compaction) and pay a framing
record per triple.  The bulk loader skips the WAL entirely: it streams
the source file through the N-Triples parser, builds the in-memory
indices with the merged-stats batch path, then writes the store files
directly — one snapshot segment for the disk engine, or one sorted
run plus one term bank for the paged engine (``engine="paged"``) —
plus a fresh manifest and an empty WAL.  The resulting directory is a
complete store; opening it replays nothing, and for the paged engine
the open is O(segments) regardless of triple count.

Benchmark E19 (``benchmarks/bench_storage.py``) reports the loader's
triples/second against the per-triple WAL path.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, Iterable, Optional

from repro.observability import get_registry
from repro.rdf.serializer import parse_ntriples_lines
from repro.rdf.triple import Triple
from repro.storage import disk as disk_module
from repro.storage.backend import MemoryBackend
from repro.storage.errors import StorageError

#: Encoded triples buffered between ``insert_batch`` calls.
DEFAULT_BATCH_SIZE = 50_000

_BULK_SECONDS_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                         60.0, 120.0, 300.0, 600.0)


def bulk_load_triples(
    triples: Iterable[Triple],
    directory: str,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Build a fresh store at ``directory`` from an iterable of triples.

    The destination must not already hold a store.  ``engine`` picks
    the store layout (``disk``/``paged``; defaults to the environment
    via :func:`repro.storage.default_engine`).  Returns a summary dict
    (triples read/loaded, terms, elapsed seconds, triples/sec, segment
    bytes).
    """
    from repro import storage as storage_package

    if engine is None:
        engine = storage_package.default_engine()
    if engine not in storage_package.STORE_ENGINES:
        raise StorageError(
            f"unknown store engine {engine!r} "
            f"(expected one of {storage_package.STORE_ENGINES})",
            directory=str(directory),
        )
    dest = pathlib.Path(directory)
    if (dest / disk_module.MANIFEST_NAME).exists():
        raise StorageError(
            f"bulk load destination {dest} already holds a store",
            directory=str(dest),
        )
    dest.mkdir(parents=True, exist_ok=True)
    started = time.perf_counter()
    backend = MemoryBackend()
    intern = backend.intern
    batch = []
    read = 0
    loaded = 0
    for triple in triples:
        read += 1
        subject, predicate, obj = triple
        batch.append((intern(subject), intern(predicate), intern(obj)))
        if len(batch) >= batch_size:
            loaded += backend.insert_batch(batch)
            batch.clear()
    if batch:
        loaded += backend.insert_batch(batch)
    if engine == "paged":
        from repro.storage.paged import build_paged_store

        manifest = build_paged_store(dest, backend)
        entry = manifest["runs"][0]
    else:
        entry = disk_module.write_segment(dest / "seg-000001.seg", backend)
        manifest = disk_module._fresh_manifest()
        manifest["segments"] = [entry]
        manifest["next_segment"] = 2
        (dest / disk_module.WAL_NAME).touch()
    tmp = dest / (disk_module.MANIFEST_NAME + ".tmp")
    tmp.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", "utf-8"
    )
    os.replace(tmp, dest / disk_module.MANIFEST_NAME)
    elapsed = time.perf_counter() - started
    registry = get_registry()
    registry.counter(
        "repro_storage_bulk_load_triples_total",
        "Triples ingested by the bulk loader.",
    ).inc(read)
    registry.histogram(
        "repro_storage_bulk_load_seconds",
        "Wall-clock seconds of one bulk load.",
        buckets=_BULK_SECONDS_BUCKETS,
    ).observe(elapsed)
    return {
        "directory": str(dest),
        "engine": engine,
        "triples_read": read,
        "triples_loaded": loaded,
        "terms": len(backend.term_list),
        "seconds": elapsed,
        "triples_per_second": (read / elapsed) if elapsed > 0 else 0.0,
        "segment_bytes": entry["bytes"],
    }


def bulk_load_ntriples(
    source: str,
    directory: str,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Stream an N-Triples file into a fresh store at ``directory``."""
    source_path = pathlib.Path(source)
    with open(source_path, "r", encoding="utf-8") as handle:
        summary = bulk_load_triples(
            parse_ntriples_lines(line.rstrip("\n") for line in handle),
            directory,
            batch_size=batch_size,
            engine=engine,
        )
    summary["source"] = str(source_path)
    return summary
