"""Stream cursors: durable watermarks next to the store artefacts.

A cursor file records how far a stream has been consumed (its highest
processed sequence number plus bookkeeping counters) so a restarted
stream resumes instead of reprocessing.  Cursors use the same
durability idiom as the store manifest: the document is written to a
temporary sibling, fsynced, and atomically renamed into place, with a
CRC32 over the canonical payload so a torn write is detected and
treated as "no cursor" rather than a crash.

Cursor files (``stream-<name>.cursor``) deliberately live *alongside*
store artefacts: :class:`repro.storage.disk.DiskBackend` is
manifest-driven and ignores unknown files, and ``repro store info``
lists them so operators see which streams checkpoint into a store
directory.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

CURSOR_SUFFIX = ".cursor"
_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def _checksum(payload: str) -> int:
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


def cursor_files(directory: Union[str, Path]) -> List[Path]:
    """The stream cursor files in a directory, sorted by name."""

    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"stream-*{CURSOR_SUFFIX}"))


class CursorFile:
    """One named, atomically updated stream cursor."""

    def __init__(self, directory: Union[str, Path], name: str = "stream") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"cursor name {name!r} must match {_NAME_RE.pattern}"
            )
        self.directory = Path(directory)
        self.name = name
        self.path = self.directory / f"stream-{name}{CURSOR_SUFFIX}"

    def load(self) -> Optional[Dict[str, Any]]:
        """The persisted cursor document, or ``None``.

        Missing, truncated, or checksum-failing files all read as
        ``None``: a damaged cursor means "start over", never a crash.
        """

        try:
            raw = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            envelope = json.loads(raw)
            payload = envelope["cursor"]
            recorded = int(envelope["crc"])
        except (ValueError, TypeError, KeyError):
            return None
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if _checksum(canonical) != recorded:
            return None
        return payload if isinstance(payload, dict) else None

    def save(self, document: Dict[str, Any]) -> None:
        """Atomically persist a cursor document (tmp + fsync + rename)."""

        self.directory.mkdir(parents=True, exist_ok=True)
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        envelope = json.dumps(
            {"cursor": document, "crc": _checksum(canonical)}, sort_keys=True
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(envelope + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Forget the persisted cursor, if any."""

        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
