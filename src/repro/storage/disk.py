"""The durable backend: in-memory indices + WAL + segment snapshots.

A store is a directory::

    MANIFEST.json     store identity, segment list, open/compaction counts
    seg-000001.seg    immutable snapshot segments (oldest first)
    store.wal         append-only write-ahead log since the last segment

Reads and queries run on exactly the same in-memory structures as
:class:`~repro.storage.backend.MemoryBackend` — opening a store
rebuilds them by bulk-loading the segments and replaying the WAL — so
the SPARQL planner, its ``predicate_stats()``-driven join ordering,
and every index probe behave byte-identically across backends.  What
the disk backend adds is durability:

* every mutation appends dictionary-encoded records to the WAL
  (``TERM`` records make the term dictionary itself durable; ids are
  deterministic, so records reference plain integers);
* recovery replays the WAL on top of the segments, silently
  truncating a torn final record (a crash mid-append) while flagging
  in-place damage as :class:`~repro.storage.errors.WALCorruption`;
* ``compact()`` folds segments + WAL into one fresh segment and empty
  WAL; ``snapshot(dest)`` writes a consistent, independently-openable
  copy of the current state;
* segment footers persist the per-predicate cardinality statistics and
  counts; a fresh open cross-checks them against what loading actually
  rebuilt and raises :class:`~repro.storage.errors.SnapshotMismatch`
  on divergence.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import uuid
import weakref
from typing import Any, Dict, Iterable, List, Optional

from repro.observability import get_registry
from repro.storage import records
from repro.storage.backend import (
    EncodedTriple,
    MemoryBackend,
    StorageBackend,
)
from repro.storage.errors import SnapshotMismatch, StorageError, WALCorruption
from repro.storage.wal import WALWriter

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "store.wal"
FORMAT_VERSION = 1


def _fresh_manifest() -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "store_id": uuid.uuid4().hex,
        "segments": [],
        "next_segment": 1,
        "opens": 0,
        "compactions": 0,
    }


def write_segment(
    path: pathlib.Path, backend: StorageBackend
) -> Dict[str, Any]:
    """Write one segment holding the backend's full current state.

    Terms are written in dictionary order (file-local ids equal
    backend ids), triples in sorted encoded order for determinism, and
    the footer persists the counts and per-predicate statistics that
    loading will verify.  The write is atomic (tmp + rename + fsync).

    Returns the manifest entry describing the segment.
    """
    started = time.perf_counter()
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(records.SEGMENT_MAGIC)
        for tid, term in enumerate(backend.term_list):
            handle.write(
                records.encode_record(records.term_payload(tid, term))
            )
        for sid, pid, oid in sorted(backend.encoded_triples()):
            handle.write(
                records.encode_record(records.add_payload(sid, pid, oid))
            )
        footer = {
            "terms": len(backend.term_list),
            "triples": backend.size,
            "pred_stats": {
                str(pid): list(stats.as_tuple())
                for pid, stats in sorted(backend.pred_stats.items())
            },
        }
        handle.write(
            records.encode_record(
                records.footer_payload(
                    json.dumps(footer, sort_keys=True).encode("utf-8")
                )
            )
        )
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    get_registry().histogram(
        "repro_storage_segment_write_seconds",
        "Wall-clock seconds writing one snapshot segment.",
    ).observe(time.perf_counter() - started)
    return {
        "name": path.name,
        "triples": backend.size,
        "terms": len(backend.term_list),
        "bytes": path.stat().st_size,
        "created": time.time(),
    }


class DiskBackend(MemoryBackend):
    """A durable store directory behind the backend contract."""

    kind = "disk"
    durable = True

    def __init__(
        self,
        directory: str,
        *,
        sync: str = "batch",
        fsync_batch: int = 64,
        create: bool = True,
    ) -> None:
        super().__init__()
        started = time.perf_counter()
        self.directory = pathlib.Path(directory)
        self._wal: Optional[WALWriter] = None
        self._closed = False
        self.recovery: Dict[str, Any] = {
            "segments_loaded": 0,
            "wal_records_replayed": 0,
            "wal_truncated_bytes": 0,
            "outcome": "clean",
        }
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            self.manifest = self._read_manifest(manifest_path)
        elif create:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.manifest = _fresh_manifest()
        else:
            raise StorageError(
                f"no store at {self.directory} (missing {MANIFEST_NAME})",
                directory=str(self.directory),
            )
        for entry in self.manifest["segments"]:
            self._load_segment(entry)
        self._replay_wal(self.directory / WAL_NAME)
        self.manifest["opens"] = int(self.manifest.get("opens", 0)) + 1
        self._write_manifest()
        self._wal = WALWriter(
            str(self.directory / WAL_NAME),
            sync=sync,
            fsync_batch=fsync_batch,
        )
        # Close files even if the owning Graph is dropped without
        # close(); keeps long test sessions from leaking descriptors.
        self._finalizer = weakref.finalize(self, WALWriter.close, self._wal)
        registry = get_registry()
        registry.gauge(
            "repro_storage_open_backends",
            "Disk backends currently open in this process.",
        ).inc()
        registry.histogram(
            "repro_storage_open_seconds",
            "Wall-clock seconds opening one store "
            "(segment load + WAL replay).",
        ).observe(time.perf_counter() - started)
        registry.counter(
            "repro_storage_recoveries_total",
            "Store opens by recovery outcome (clean/torn_tail).",
            labels=("outcome",),
        ).labels(outcome=self.recovery["outcome"]).inc()

    # -- opening -----------------------------------------------------------

    def _read_manifest(self, path: pathlib.Path) -> Dict[str, Any]:
        try:
            manifest = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError) as exc:
            raise SnapshotMismatch(
                f"unreadable manifest {path}: {exc}",
                directory=str(self.directory),
            ) from exc
        if manifest.get("format") != FORMAT_VERSION:
            raise SnapshotMismatch(
                f"manifest {path} has format {manifest.get('format')!r}; "
                f"this build reads format {FORMAT_VERSION}",
                directory=str(self.directory),
            )
        return manifest

    def _write_manifest(self) -> None:
        path = self.directory / MANIFEST_NAME
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True) + "\n",
            "utf-8",
        )
        os.replace(tmp, path)

    def _load_segment(self, entry: Dict[str, Any]) -> None:
        name = entry.get("name", "?")
        path = self.directory / name
        fresh = self.size == 0 and not self.term_list
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise SnapshotMismatch(
                f"manifest references missing segment {name}: {exc}",
                directory=str(self.directory),
                segment=name,
            ) from exc
        if not data.startswith(records.SEGMENT_MAGIC):
            raise SnapshotMismatch(
                f"segment {name} lacks the segment magic",
                directory=str(self.directory),
                segment=name,
            )
        scanner = records.RecordScanner(data, len(records.SEGMENT_MAGIC))
        remap: List[int] = []
        loaded_triples = 0
        footer: Optional[Dict[str, Any]] = None
        intern = StorageBackend.intern
        insert = StorageBackend.insert
        try:
            for payload in scanner:
                op = payload[0]
                if op == records.OP_TERM:
                    tid, term = records.decode_term_payload(payload)
                    if tid != len(remap):
                        raise records.RecordFormatError(
                            f"term id {tid} out of order "
                            f"(expected {len(remap)})"
                        )
                    remap.append(intern(self, term))
                elif op == records.OP_ADD:
                    sid, pid, oid = records.decode_ids_payload(payload)
                    insert(self, remap[sid], remap[pid], remap[oid])
                    loaded_triples += 1
                elif op == records.OP_FOOTER:
                    footer = json.loads(payload[1:].decode("utf-8"))
                else:
                    raise records.RecordFormatError(
                        f"unexpected opcode 0x{op:02x} in a segment"
                    )
        except (records.RecordFormatError, IndexError, ValueError) as exc:
            raise SnapshotMismatch(
                f"segment {name} is damaged: {exc}",
                directory=str(self.directory),
                segment=name,
            ) from exc
        if scanner.status != "clean":
            raise SnapshotMismatch(
                f"segment {name} is damaged: "
                f"{scanner.error or 'truncated record stream'}",
                directory=str(self.directory),
                segment=name,
            )
        if footer is None:
            raise SnapshotMismatch(
                f"segment {name} has no footer record",
                directory=str(self.directory),
                segment=name,
            )
        if footer["terms"] != len(remap) or footer["triples"] != loaded_triples:
            raise SnapshotMismatch(
                f"segment {name} footer claims {footer['terms']} terms / "
                f"{footer['triples']} triples but the file holds "
                f"{len(remap)} / {loaded_triples}",
                directory=str(self.directory),
                segment=name,
            )
        if fresh:
            # Loading into an empty backend: the persisted statistics
            # must equal what the rebuild produced, id for id.
            for pid_text, expected in footer.get("pred_stats", {}).items():
                rebuilt = self.pred_stats.get(remap[int(pid_text)])
                got = list(rebuilt.as_tuple()) if rebuilt else [0, 0, 0]
                if got != list(expected):
                    raise SnapshotMismatch(
                        f"segment {name} persisted predicate statistics "
                        f"{expected} for predicate id {pid_text} but the "
                        f"rebuilt index holds {got}",
                        directory=str(self.directory),
                        segment=name,
                    )
        self.recovery["segments_loaded"] += 1
        get_registry().counter(
            "repro_storage_segments_loaded_total",
            "Snapshot segments loaded at store open.",
        ).inc()

    def _replay_wal(self, path: pathlib.Path) -> None:
        if not path.exists():
            path.touch()
            return
        data = path.read_bytes()
        scanner = records.RecordScanner(data)
        replayed = 0
        intern = StorageBackend.intern
        insert = StorageBackend.insert
        delete = StorageBackend.delete
        try:
            for payload in scanner:
                op = payload[0]
                if op == records.OP_TERM:
                    tid, term = records.decode_term_payload(payload)
                    if tid < len(self.term_list):
                        if self.term_list[tid] != term:
                            raise records.RecordFormatError(
                                f"term record rebinds id {tid}"
                            )
                    elif tid == len(self.term_list):
                        intern(self, term)
                    else:
                        raise records.RecordFormatError(
                            f"term id {tid} skips ahead of the dictionary "
                            f"({len(self.term_list)} terms)"
                        )
                elif op == records.OP_ADD:
                    sid, pid, oid = records.decode_ids_payload(payload)
                    if max(sid, pid, oid) >= len(self.term_list):
                        raise records.RecordFormatError(
                            "triple record references unknown term ids"
                        )
                    insert(self, sid, pid, oid)
                elif op == records.OP_DELETE:
                    sid, pid, oid = records.decode_ids_payload(payload)
                    if max(sid, pid, oid) >= len(self.term_list):
                        raise records.RecordFormatError(
                            "triple record references unknown term ids"
                        )
                    # Tolerate an absent triple: a crash between a
                    # compaction's manifest swap and its WAL reset can
                    # legitimately replay stale deletes.
                    if self.contains(sid, pid, oid):
                        delete(self, sid, pid, oid)
                elif op == records.OP_CLEAR:
                    StorageBackend.clear(self)
                else:
                    raise records.RecordFormatError(
                        f"unexpected opcode 0x{op:02x} in the WAL"
                    )
                replayed += 1
        except records.RecordFormatError as exc:
            raise WALCorruption(
                f"WAL {path} record at offset {scanner.end} is invalid: "
                f"{exc}",
                directory=str(self.directory),
                offset=scanner.end,
            ) from exc
        if scanner.status == "corrupt":
            raise WALCorruption(
                f"WAL {path}: {scanner.error}",
                directory=str(self.directory),
                offset=scanner.end,
            )
        if scanner.status == "torn":
            torn = len(data) - scanner.end
            with open(path, "r+b") as handle:
                handle.truncate(scanner.end)
            self.recovery["outcome"] = "torn_tail"
            self.recovery["wal_truncated_bytes"] = torn
        self.recovery["wal_records_replayed"] = replayed

    # -- mutation hooks (append to the WAL, then defer to memory) ---------

    def intern(self, term) -> int:
        tid = self.term_ids.get(term)
        if tid is None:
            tid = StorageBackend.intern(self, term)
            if self._wal is not None:
                self._wal.append(records.term_payload(tid, term))
        return tid

    def insert(self, sid: int, pid: int, oid: int) -> bool:
        inserted = StorageBackend.insert(self, sid, pid, oid)
        if inserted and self._wal is not None:
            self._wal.append(records.add_payload(sid, pid, oid))
        return inserted

    def insert_batch(self, batch: Iterable[EncodedTriple]) -> int:
        # Per-triple inserts (not the merged-stats fast path) so each
        # actually-new triple logs exactly one ADD record; the
        # resulting statistics are identical either way.
        insert = StorageBackend.insert
        wal = self._wal
        count = 0
        for sid, pid, oid in batch:
            if insert(self, sid, pid, oid):
                if wal is not None:
                    wal.append(records.add_payload(sid, pid, oid))
                count += 1
        return count

    def delete(self, sid: int, pid: int, oid: int) -> None:
        StorageBackend.delete(self, sid, pid, oid)
        if self._wal is not None:
            self._wal.append(records.delete_payload(sid, pid, oid))

    def clear(self) -> None:
        StorageBackend.clear(self)
        if self._wal is not None:
            self._wal.append(records.clear_payload())

    # -- lifecycle ---------------------------------------------------------

    def commit(self) -> None:
        """Group-commit boundary: one graph-level mutation finished."""
        if self._wal is not None and self._wal.has_pending:
            self._wal.commit()

    def flush(self) -> None:
        if self._wal is not None:
            self._wal.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()
        self._finalizer.detach()
        get_registry().gauge(
            "repro_storage_open_backends",
            "Disk backends currently open in this process.",
        ).dec()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def generation(self) -> int:
        """How many times this store has been opened (monotonic).

        Durable consumers (the annotation store) use this to mint
        identifiers that can never collide with those of a previous
        process lifetime.
        """
        return int(self.manifest.get("opens", 0))

    def wal_size(self) -> int:
        return self._wal.size() if self._wal is not None else 0

    # -- maintenance -------------------------------------------------------

    def compact(self) -> pathlib.Path:
        """Fold segments + WAL into one fresh segment; reset the WAL.

        Crash-safe ordering: the new segment is fsynced before the
        manifest swap, and a stale WAL surviving a crash between the
        swap and the reset replays as no-ops (duplicate adds, absent
        deletes) on the compacted image.
        """
        if self._wal is None or self._closed:
            raise StorageError(
                "cannot compact a closed store",
                directory=str(self.directory),
            )
        self._wal.flush()
        sequence = int(self.manifest.get("next_segment", 1))
        path = self.directory / f"seg-{sequence:06d}.seg"
        entry = write_segment(path, self)
        stale = [
            segment["name"]
            for segment in self.manifest["segments"]
            if segment["name"] != entry["name"]
        ]
        self.manifest["segments"] = [entry]
        self.manifest["next_segment"] = sequence + 1
        self.manifest["compactions"] = (
            int(self.manifest.get("compactions", 0)) + 1
        )
        self._write_manifest()
        self._wal.reset()
        for name in stale:
            try:
                (self.directory / name).unlink()
            except OSError:
                pass  # stray segments are ignored by the manifest anyway
        get_registry().counter(
            "repro_storage_compactions_total",
            "Completed store compactions.",
        ).inc()
        return path

    def snapshot(self, destination: str) -> pathlib.Path:
        """Write a consistent copy of the current state to a new store.

        The destination becomes a complete, independently-openable
        store directory (one segment, empty WAL).  Restoring is simply
        opening it.
        """
        if self._closed:
            raise StorageError(
                "cannot snapshot a closed store",
                directory=str(self.directory),
            )
        if self._wal is not None:
            self._wal.flush()
        dest = pathlib.Path(destination)
        if (dest / MANIFEST_NAME).exists():
            raise StorageError(
                f"snapshot destination {dest} already holds a store",
                directory=str(dest),
            )
        dest.mkdir(parents=True, exist_ok=True)
        entry = write_segment(dest / "seg-000001.seg", self)
        manifest = _fresh_manifest()
        manifest["store_id"] = self.manifest["store_id"]
        manifest["segments"] = [entry]
        manifest["next_segment"] = 2
        tmp = dest / (MANIFEST_NAME + ".tmp")
        tmp.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", "utf-8"
        )
        os.replace(tmp, dest / MANIFEST_NAME)
        (dest / WAL_NAME).touch()
        get_registry().counter(
            "repro_storage_snapshots_total",
            "Completed store snapshots.",
        ).inc()
        return dest

    # -- introspection -----------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        document = super().describe()
        segments = self.manifest.get("segments", [])
        now = time.time()
        details = []
        for segment in segments:
            created = segment.get("created")
            details.append(
                {
                    "file": segment.get("name"),
                    "level": 0,
                    "triples": int(segment.get("triples", 0)),
                    "terms": int(segment.get("terms", 0)),
                    "bytes": int(segment.get("bytes", 0)),
                    "age_seconds": (
                        round(now - created, 3) if created else None
                    ),
                }
            )
        document.update(
            directory=str(self.directory),
            store_id=self.manifest.get("store_id"),
            segments=len(segments),
            segment_bytes=sum(int(s.get("bytes", 0)) for s in segments),
            segments_detail=details,
            wal_bytes=self.wal_size(),
            opens=self.generation,
            compactions=int(self.manifest.get("compactions", 0)),
            recovery=dict(self.recovery),
            closed=self._closed,
        )
        return document
