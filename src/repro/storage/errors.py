"""Machine-readable storage failures.

Mirrors the contract of :class:`repro.runtime.service.QueueFullError`:
every error carries a stable ``code`` plus structured fields and a
``details()`` dict, so callers — the serving tier's ``/healthz`` and
error responses, the CLI's exit paths — can surface storage trouble
without parsing prose.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class StorageError(RuntimeError):
    """Base of every storage-backend failure.

    ``code`` is the stable machine-readable discriminator
    (``wal_corruption``, ``snapshot_mismatch``, ``storage_error``);
    ``directory`` names the store the failure belongs to.
    """

    code = "storage_error"

    def __init__(
        self, message: str, *, directory: Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.directory = directory

    def details(self) -> Dict[str, Any]:
        """The failure as one JSON-ready dict."""
        return {
            "code": self.code,
            "message": str(self),
            "directory": self.directory,
        }


class WALCorruption(StorageError):
    """The write-ahead log contains a structurally invalid record.

    A *torn tail* (an append cut short by a crash) is not corruption —
    recovery silently truncates it.  This error means a fully-present
    record failed its CRC or referenced impossible state, i.e. the log
    was damaged after it was written.
    """

    code = "wal_corruption"

    def __init__(
        self,
        message: str,
        *,
        directory: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> None:
        super().__init__(message, directory=directory)
        self.offset = offset

    def details(self) -> Dict[str, Any]:
        document = super().details()
        document["offset"] = self.offset
        return document


class SnapshotMismatch(StorageError):
    """A segment or manifest disagrees with what it claims to hold.

    Raised when the manifest references a missing segment, a segment's
    framing is damaged, or its footer counts / persisted predicate
    statistics diverge from what loading actually produced.
    """

    code = "snapshot_mismatch"

    def __init__(
        self,
        message: str,
        *,
        directory: Optional[str] = None,
        segment: Optional[str] = None,
    ) -> None:
        super().__init__(message, directory=directory)
        self.segment = segment

    def details(self) -> Dict[str, Any]:
        document = super().details()
        document["segment"] = self.segment
        return document
