"""``PagedBackend``: LSM runs + WAL L0, probes over mmap'd pages.

Where :class:`~repro.storage.disk.DiskBackend` rebuilds the full
nested-dict indices in RAM on every open (O(triples)), the paged
backend keeps its indices *in the files*:

* **Immutable sorted runs** (:mod:`repro.storage.pages`) hold the bulk
  of the store in all three permutation orders, organised in LSM-style
  levels — level 0 runs are freshly checkpointed write batches, higher
  levels are the outputs of size-tiered compaction (older data, so
  every run at level *L+1* is older than every run at level *L*).
* **The PR 7 WAL is the mutable L0**: mutations land in a small
  in-memory overlay (adds in the inherited ``spo``/``pos``/``osp``
  dicts, deletes in a tombstone set) and append to the WAL;
  ``checkpoint()`` folds the overlay into a new level-0 run + term
  bank, swaps the manifest atomically, and resets the WAL.  Replaying
  a WAL that survived a crash *after* the manifest swap is a no-op by
  construction (duplicate adds dedup, absent deletes skip).
* **Cold open is O(segments)**: read the manifest, mmap each run and
  term bank, read their footers — never a triple.  The exact
  per-predicate statistics and the triple count are persisted in the
  manifest at every checkpoint and adjusted forward by WAL replay.
* **Reads** go through :class:`PagedProbe` — the
  :class:`~repro.storage.probe.IndexProbe` protocol over a newest-wins
  merge of the overlay and every run, with tombstones masking older
  adds.  Run pages are fetched through the store's LRU
  :class:`~repro.storage.pages.BlockCache`
  (``repro_storage_page_*`` metrics), so the working set — not the
  store — has to fit in memory.

The term dictionary is equally lazy: ids resolve against mmap'd term
banks on first use (:class:`_LazyTermList` / :class:`_LazyTermIds`),
with only terms interned since the last checkpoint held in RAM.

Compaction is incremental and off the write path: each checkpoint
performs at most one size-tiered merge step (``tier_fanout`` runs of
one level folded into one run a level up); ``compact()`` folds
everything into a single run, dropping tombstones.
"""

from __future__ import annotations

import bisect
import heapq
import json
import os
import pathlib
import time
import uuid
import weakref
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.observability import get_registry
from repro.rdf.term import Node
from repro.storage import records
from repro.storage.backend import (
    EncodedTriple,
    PredicateStats,
    StorageBackend,
)
from repro.storage.errors import SnapshotMismatch, StorageError, WALCorruption
from repro.storage.pages import (
    BlockCache,
    RunReader,
    TermBankReader,
    _unpermute,
    write_run,
    write_term_bank,
)
from repro.storage.probe import DictIndexProbe, IndexProbe
from repro.storage.wal import WALWriter

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "store.wal"
PAGED_FORMAT_VERSION = 2

#: Defaults: 4 MiB of cached blocks, checkpoint at 1 MiB of WAL,
#: size-tiered merge at 4 runs per level.
DEFAULT_CACHE_BLOCKS = 1024
DEFAULT_CHECKPOINT_BYTES = 1 << 20
DEFAULT_TIER_FANOUT = 4


def _fresh_manifest() -> Dict[str, Any]:
    return {
        "format": PAGED_FORMAT_VERSION,
        "engine": "paged",
        "store_id": uuid.uuid4().hex,
        "runs": [],
        "term_banks": [],
        "next_seq": 1,
        "next_bank": 1,
        "pred_stats": {},
        "terms": 0,
        "triples": 0,
        "opens": 0,
        "checkpoints": 0,
        "compactions": 0,
    }


def _dump_pred_stats(stats: Dict[int, PredicateStats]) -> Dict[str, List[int]]:
    return {
        str(pid): list(entry.as_tuple()) for pid, entry in sorted(stats.items())
    }


def _load_pred_stats(document: Dict[str, Any]) -> Dict[int, PredicateStats]:
    return {
        int(pid): PredicateStats(*values) for pid, values in document.items()
    }


# -- lazy term dictionary ----------------------------------------------------


class _TermState:
    """Shared state behind the lazy term dictionary views.

    Ids ``0 .. base_total-1`` live in immutable banks; ids from
    ``base_total`` up live in the overlay (interned since the last
    checkpoint, replicated in the WAL).  Bank lookups are memoized in
    both directions, so a hot term costs one decode ever.
    """

    __slots__ = (
        "banks",
        "bases",
        "base_total",
        "overlay_terms",
        "overlay_ids",
        "id_cache",
        "term_cache",
    )

    def __init__(self) -> None:
        self.banks: List[TermBankReader] = []
        self.bases: List[int] = []
        self.base_total = 0
        self.overlay_terms: List[Node] = []
        self.overlay_ids: Dict[Node, int] = {}
        self.id_cache: Dict[Node, int] = {}
        self.term_cache: Dict[int, Node] = {}

    def attach_bank(self, bank: TermBankReader) -> None:
        if bank.base != self.base_total:
            raise SnapshotMismatch(
                f"term bank {bank.path.name} starts at id {bank.base}; "
                f"expected {self.base_total}",
                segment=bank.path.name,
            )
        self.banks.append(bank)
        self.bases.append(bank.base)
        self.base_total += bank.count

    def __len__(self) -> int:
        return self.base_total + len(self.overlay_terms)

    def term(self, tid: int) -> Node:
        if tid >= self.base_total:
            return self.overlay_terms[tid - self.base_total]
        cached = self.term_cache.get(tid)
        if cached is not None:
            return cached
        index = bisect.bisect_right(self.bases, tid) - 1
        if index < 0:
            raise IndexError(f"term id {tid} precedes every bank")
        term = self.banks[index].term(tid)
        self.term_cache[tid] = term
        self.id_cache[term] = tid
        return term

    def find(self, term: Node) -> Optional[int]:
        tid = self.overlay_ids.get(term)
        if tid is not None:
            return tid
        tid = self.id_cache.get(term)
        if tid is not None:
            return tid
        try:
            encoded = records.encode_term(term)
        except records.RecordFormatError:
            return None
        for bank in self.banks:
            tid = bank.find(encoded)
            if tid is not None:
                self.id_cache[term] = tid
                self.term_cache[tid] = term
                return tid
        return None

    def add_overlay(self, term: Node) -> int:
        tid = len(self)
        self.overlay_ids[term] = tid
        self.overlay_terms.append(term)
        return tid

    def promote_overlay(self, bank: TermBankReader) -> None:
        """Fold the overlay into a freshly written bank (checkpoint)."""
        for offset, term in enumerate(self.overlay_terms):
            tid = self.base_total + offset
            self.term_cache[tid] = term
            self.id_cache[term] = tid
        self.overlay_terms = []
        self.overlay_ids = {}
        self.attach_bank(bank)

    def close(self) -> None:
        for bank in self.banks:
            bank.close()


class _LazyTermIds:
    """The ``term -> id`` mapping surface over :class:`_TermState`."""

    __slots__ = ("_state",)

    def __init__(self, state: _TermState) -> None:
        self._state = state

    def get(self, term: Node, default: Optional[int] = None) -> Optional[int]:
        tid = self._state.find(term)
        return default if tid is None else tid

    def __getitem__(self, term: Node) -> int:
        tid = self._state.find(term)
        if tid is None:
            raise KeyError(term)
        return tid

    def __contains__(self, term: object) -> bool:
        return self._state.find(term) is not None  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self._state)


class _LazyTermList:
    """The ``id -> term`` sequence surface over :class:`_TermState`."""

    __slots__ = ("_state",)

    def __init__(self, state: _TermState) -> None:
        self._state = state

    def __getitem__(self, tid: int) -> Node:
        return self._state.term(tid)

    def __len__(self) -> int:
        return len(self._state)

    def __iter__(self) -> Iterator[Node]:
        for tid in range(len(self._state)):
            yield self._state.term(tid)

    def append(self, term: Node) -> None:
        self._state.add_overlay(term)


# -- the probe ---------------------------------------------------------------

#: Pattern shape -> (section index, key positions of the bound ids).
#: Sections: 0 = SPO, 1 = POS, 2 = OSP (see ``repro.storage.pages``).


class PagedProbe(IndexProbe):
    """Newest-wins reads over the overlay and every run.

    One instance serves the backend for its whole lifetime (the graph
    caches it); every call reads the backend's *current* run list, so
    checkpoints and compactions are transparent to the query layer.
    """

    __slots__ = ("_backend",)

    def __init__(self, backend: "PagedBackend") -> None:
        self._backend = backend

    def contains(self, sid: int, pid: int, oid: int) -> bool:
        backend = self._backend
        if oid in backend.spo.get(sid, {}).get(pid, ()):
            return True
        if (sid, pid, oid) in backend.tombstones:
            return False
        for run in reversed(backend.runs):
            flag = run.point(sid, pid, oid)
            if flag is not None:
                return flag == 1
        return False

    @staticmethod
    def _shape(
        sid: Optional[int], pid: Optional[int], oid: Optional[int]
    ) -> Tuple[int, Tuple[int, ...]]:
        """(section, key prefix) serving one non-point id pattern."""
        if sid is not None:
            if pid is not None:
                return (0, (sid, pid))
            if oid is not None:
                return (2, (oid, sid))
            return (0, (sid,))
        if pid is not None:
            if oid is not None:
                return (1, (pid, oid))
            return (1, (pid,))
        if oid is not None:
            return (2, (oid,))
        return (0, ())

    def _merged_runs(
        self, section: int, prefix: Tuple[int, ...]
    ) -> Iterator[Tuple[int, int, int]]:
        """Visible run triples of one range, newest record winning."""
        backend = self._backend
        runs = backend.runs
        if not runs:
            return
        streams = [
            (
                ((a, b, c), -run.seq, flag)
                for a, b, c, flag in run.scan(section, prefix)
            )
            for run in runs
        ]
        tombstones = backend.tombstones
        previous: Optional[Tuple[int, int, int]] = None
        for key, _negseq, flag in heapq.merge(*streams):
            if key == previous:
                continue
            previous = key
            if flag:
                triple = _unpermute(section, *key)
                if triple not in tombstones:
                    yield triple

    def scan(
        self,
        sid: Optional[int],
        pid: Optional[int],
        oid: Optional[int],
    ) -> Iterator[Tuple[int, int, int]]:
        if sid is not None and pid is not None and oid is not None:
            if self.contains(sid, pid, oid):
                yield (sid, pid, oid)
            return
        backend = self._backend
        # Overlay adds are disjoint from visible run triples by
        # invariant, so chaining never duplicates.
        yield from backend.overlay_probe.scan(sid, pid, oid)
        section, prefix = self._shape(sid, pid, oid)
        yield from self._merged_runs(section, prefix)

    def count(
        self,
        sid: Optional[int],
        pid: Optional[int],
        oid: Optional[int],
    ) -> float:
        backend = self._backend
        if sid is not None and pid is not None and oid is not None:
            return 1.0 if self.contains(sid, pid, oid) else 0.0
        if sid is None and oid is None:
            if pid is None:
                return float(backend.size)
            stats = backend.pred_stats.get(pid)
            return float(stats.triples) if stats is not None else 0.0
        # Upper bound: run ranges count superseded records and
        # tombstones until compaction folds them away.  Fence-key
        # binary search only — no record is materialised.
        section, prefix = self._shape(sid, pid, oid)
        total = backend.overlay_probe.count(sid, pid, oid)
        for run in backend.runs:
            total += run.range_size(section, prefix)
        return float(total)

    def predicate_stats(self, pid: int) -> Optional[PredicateStats]:
        return self._backend.pred_stats.get(pid)

    def index_sizes(self) -> Tuple[int, int, int]:
        backend = self._backend
        subjects = len(backend.spo)
        predicates = len(backend.pos)
        objects = len(backend.osp)
        for run in backend.runs:
            subjects += run.distinct_first(0)
            predicates += run.distinct_first(1)
            objects += run.distinct_first(2)
        return (subjects, predicates, objects)


# -- the backend -------------------------------------------------------------


class PagedBackend(StorageBackend):
    """A paged store directory behind the backend contract."""

    kind = "paged"
    durable = True
    dict_indexed = False

    def __init__(
        self,
        directory: str,
        *,
        sync: str = "batch",
        fsync_batch: int = 64,
        create: bool = True,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        tier_fanout: int = DEFAULT_TIER_FANOUT,
    ) -> None:
        super().__init__()
        started = time.perf_counter()
        self.directory = pathlib.Path(directory)
        self.cache = BlockCache(cache_blocks)
        self.checkpoint_bytes = checkpoint_bytes
        self.tier_fanout = max(2, tier_fanout)
        self._wal: Optional[WALWriter] = None
        self._closed = False
        #: Open runs, ascending seq (oldest first, newest last).
        self.runs: List[RunReader] = []
        #: Deletes of run-visible triples since the last checkpoint.
        self.tombstones: Set[EncodedTriple] = set()
        self._terms = _TermState()
        self.term_ids = _LazyTermIds(self._terms)  # type: ignore[assignment]
        self.term_list = _LazyTermList(self._terms)  # type: ignore[assignment]
        #: Probe over the overlay dicts alone (statistics unused).
        self.overlay_probe = DictIndexProbe(self.spo, self.pos, self.osp, {})
        self._probe = PagedProbe(self)
        self.recovery: Dict[str, Any] = {
            "segments_loaded": 0,
            "wal_records_replayed": 0,
            "wal_truncated_bytes": 0,
            "outcome": "clean",
        }
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            self.manifest = self._read_manifest(manifest_path)
        elif create:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.manifest = _fresh_manifest()
        else:
            raise StorageError(
                f"no store at {self.directory} (missing {MANIFEST_NAME})",
                directory=str(self.directory),
            )
        for entry in self.manifest["term_banks"]:
            self._terms.attach_bank(
                TermBankReader(self.directory / entry["file"])
            )
        for entry in sorted(
            self.manifest["runs"], key=lambda item: int(item["seq"])
        ):
            self.runs.append(
                RunReader(self.directory / entry["file"], self.cache)
            )
            self.recovery["segments_loaded"] += 1
        self.pred_stats.update(
            _load_pred_stats(self.manifest.get("pred_stats", {}))
        )
        self.size = int(self.manifest.get("triples", 0))
        self._replay_wal(self.directory / WAL_NAME)
        self.manifest["opens"] = int(self.manifest.get("opens", 0)) + 1
        self._write_manifest()
        self._wal = WALWriter(
            str(self.directory / WAL_NAME),
            sync=sync,
            fsync_batch=fsync_batch,
        )
        self._finalizer = weakref.finalize(self, WALWriter.close, self._wal)
        registry = get_registry()
        registry.gauge(
            "repro_storage_open_backends",
            "Disk backends currently open in this process.",
        ).inc()
        registry.histogram(
            "repro_storage_open_seconds",
            "Wall-clock seconds opening one store "
            "(segment load + WAL replay).",
        ).observe(time.perf_counter() - started)
        registry.counter(
            "repro_storage_recoveries_total",
            "Store opens by recovery outcome (clean/torn_tail).",
            labels=("outcome",),
        ).labels(outcome=self.recovery["outcome"]).inc()

    # -- opening -----------------------------------------------------------

    def _read_manifest(self, path: pathlib.Path) -> Dict[str, Any]:
        try:
            manifest = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError) as exc:
            raise SnapshotMismatch(
                f"unreadable manifest {path}: {exc}",
                directory=str(self.directory),
            ) from exc
        if (
            manifest.get("format") != PAGED_FORMAT_VERSION
            or manifest.get("engine") != "paged"
        ):
            raise SnapshotMismatch(
                f"manifest {path} has format {manifest.get('format')!r} "
                f"(engine {manifest.get('engine')!r}); the paged backend "
                f"reads format {PAGED_FORMAT_VERSION}/paged",
                directory=str(self.directory),
            )
        return manifest

    def _write_manifest(self) -> None:
        path = self.directory / MANIFEST_NAME
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True) + "\n",
            "utf-8",
        )
        os.replace(tmp, path)

    def _replay_wal(self, path: pathlib.Path) -> None:
        if not path.exists():
            path.touch()
            return
        data = path.read_bytes()
        scanner = records.RecordScanner(data)
        replayed = 0
        try:
            for payload in scanner:
                op = payload[0]
                if op == records.OP_TERM:
                    tid, term = records.decode_term_payload(payload)
                    total = len(self._terms)
                    if tid < total:
                        if self._terms.term(tid) != term:
                            raise records.RecordFormatError(
                                f"term record rebinds id {tid}"
                            )
                    elif tid == total:
                        self._terms.add_overlay(term)
                    else:
                        raise records.RecordFormatError(
                            f"term id {tid} skips ahead of the dictionary "
                            f"({total} terms)"
                        )
                elif op == records.OP_ADD:
                    sid, pid, oid = records.decode_ids_payload(payload)
                    if max(sid, pid, oid) >= len(self._terms):
                        raise records.RecordFormatError(
                            "triple record references unknown term ids"
                        )
                    self.insert(sid, pid, oid)
                elif op == records.OP_DELETE:
                    sid, pid, oid = records.decode_ids_payload(payload)
                    if max(sid, pid, oid) >= len(self._terms):
                        raise records.RecordFormatError(
                            "triple record references unknown term ids"
                        )
                    # A crash between a checkpoint's manifest swap and
                    # its WAL reset legitimately replays stale deletes.
                    if self.contains(sid, pid, oid):
                        self.delete(sid, pid, oid)
                elif op == records.OP_CLEAR:
                    self._drop_all_runs()
                else:
                    raise records.RecordFormatError(
                        f"unexpected opcode 0x{op:02x} in the WAL"
                    )
                replayed += 1
        except records.RecordFormatError as exc:
            raise WALCorruption(
                f"WAL {path} record at offset {scanner.end} is invalid: "
                f"{exc}",
                directory=str(self.directory),
                offset=scanner.end,
            ) from exc
        if scanner.status == "corrupt":
            raise WALCorruption(
                f"WAL {path}: {scanner.error}",
                directory=str(self.directory),
                offset=scanner.end,
            )
        if scanner.status == "torn":
            torn = len(data) - scanner.end
            with open(path, "r+b") as handle:
                handle.truncate(scanner.end)
            self.recovery["outcome"] = "torn_tail"
            self.recovery["wal_truncated_bytes"] = torn
        self.recovery["wal_records_replayed"] = replayed

    # -- probe -------------------------------------------------------------

    def probe(self) -> PagedProbe:
        return self._probe

    # -- visibility helpers ------------------------------------------------

    def _run_flag(self, sid: int, pid: int, oid: int) -> Optional[int]:
        """Newest run record flag for one triple (ignores the overlay)."""
        for run in reversed(self.runs):
            flag = run.point(sid, pid, oid)
            if flag is not None:
                return flag
        return None

    def _any_visible(
        self, sid: Optional[int], pid: Optional[int], oid: Optional[int]
    ) -> bool:
        return next(self._probe.scan(sid, pid, oid), None) is not None

    # -- overlay index maintenance (no statistics) -------------------------

    def _overlay_add(self, sid: int, pid: int, oid: int) -> None:
        self.spo.setdefault(sid, {}).setdefault(pid, set()).add(oid)
        self.pos.setdefault(pid, {}).setdefault(oid, set()).add(sid)
        self.osp.setdefault(oid, {}).setdefault(sid, set()).add(pid)

    def _overlay_remove(self, sid: int, pid: int, oid: int) -> None:
        by_p = self.spo[sid]
        objects = by_p[pid]
        objects.discard(oid)
        if not objects:
            del by_p[pid]
            if not by_p:
                del self.spo[sid]
        by_o = self.pos[pid]
        subjects = by_o[oid]
        subjects.discard(sid)
        if not subjects:
            del by_o[oid]
            if not by_o:
                del self.pos[pid]
        by_s = self.osp[oid]
        preds = by_s[sid]
        preds.discard(pid)
        if not preds:
            del by_s[sid]
            if not by_s:
                del self.osp[oid]

    # -- mutation hooks ----------------------------------------------------

    def intern(self, term: Node) -> int:
        tid = self._terms.find(term)
        if tid is None:
            tid = self._terms.add_overlay(term)
            if self._wal is not None:
                self._wal.append(records.term_payload(tid, term))
        return tid

    def insert(self, sid: int, pid: int, oid: int) -> bool:
        if oid in self.spo.get(sid, {}).get(pid, ()):
            return False
        triple = (sid, pid, oid)
        resurrect = triple in self.tombstones
        if not resurrect and self._run_flag(sid, pid, oid) == 1:
            return False
        # Statistics are exact: a subject/object is new for the
        # predicate iff no triple with it is visible *before* this one.
        new_subject = not self._any_visible(sid, pid, None)
        new_object = not self._any_visible(None, pid, oid)
        if resurrect:
            self.tombstones.discard(triple)
        else:
            self._overlay_add(sid, pid, oid)
        stats = self.pred_stats.get(pid)
        if stats is None:
            stats = self.pred_stats[pid] = PredicateStats()
        stats.triples += 1
        if new_subject:
            stats.subjects += 1
        if new_object:
            stats.objects += 1
        self.size += 1
        if self._wal is not None:
            self._wal.append(records.add_payload(sid, pid, oid))
        return True

    def insert_batch(self, batch: Iterable[EncodedTriple]) -> int:
        count = 0
        for sid, pid, oid in batch:
            if self.insert(sid, pid, oid):
                count += 1
        return count

    def delete(self, sid: int, pid: int, oid: int) -> None:
        if oid in self.spo.get(sid, {}).get(pid, ()):
            self._overlay_remove(sid, pid, oid)
        else:
            self.tombstones.add((sid, pid, oid))
        stats = self.pred_stats[pid]
        stats.triples -= 1
        if not self._any_visible(sid, pid, None):
            stats.subjects -= 1
        if not self._any_visible(None, pid, oid):
            stats.objects -= 1
        if stats.triples == 0:
            del self.pred_stats[pid]
        self.size -= 1
        if self._wal is not None:
            self._wal.append(records.delete_payload(sid, pid, oid))

    def contains(self, sid: int, pid: int, oid: int) -> bool:
        return self._probe.contains(sid, pid, oid)

    def _drop_all_runs(self) -> None:
        for run in self.runs:
            run.close()
        self.runs = []
        self.spo.clear()
        self.pos.clear()
        self.osp.clear()
        self.tombstones.clear()
        self.pred_stats.clear()
        self.size = 0

    def clear(self) -> None:
        self._drop_all_runs()
        if self._wal is not None:
            self._wal.append(records.clear_payload())

    def encoded_triples(self) -> Iterable[EncodedTriple]:
        return self._probe.scan(None, None, None)

    # -- lifecycle ---------------------------------------------------------

    def commit(self) -> None:
        if self._wal is None:
            return
        if self._wal.has_pending:
            self._wal.commit()
        if (
            self.checkpoint_bytes
            and self._wal.size() >= self.checkpoint_bytes
        ):
            self.checkpoint()

    def flush(self) -> None:
        if self._wal is not None:
            self._wal.flush()

    def close(self) -> None:
        if self._closed:
            return
        # Fold the WAL tail into runs so the next open is O(segments):
        # a cleanly closed store never replays triples on startup.
        if self._wal is not None:
            try:
                self.checkpoint()
            except OSError:
                pass  # an unwritable disk still must not block close
        self._closed = True
        if self._wal is not None:
            self._wal.close()
        self._finalizer.detach()
        for run in self.runs:
            run.close()
        self._terms.close()
        get_registry().gauge(
            "repro_storage_open_backends",
            "Disk backends currently open in this process.",
        ).dec()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def generation(self) -> int:
        """How many times this store has been opened (monotonic)."""
        return int(self.manifest.get("opens", 0))

    def wal_size(self) -> int:
        return self._wal.size() if self._wal is not None else 0

    # -- checkpoint and compaction -----------------------------------------

    def _run_entries(self) -> List[Dict[str, Any]]:
        """Manifest entries for the current runs, metadata preserved."""
        existing = {
            entry["file"]: entry for entry in self.manifest.get("runs", [])
        }
        entries = []
        for run in self.runs:
            entry = existing.get(run.path.name)
            if entry is None:
                entry = {
                    "file": run.path.name,
                    "seq": run.seq,
                    "level": run.level,
                    "records": run.records,
                    "adds": run.adds,
                    "tombstones": run.tombstones,
                    "bytes": run.path.stat().st_size,
                    "created": time.time(),
                }
            entries.append(entry)
        return entries

    def _swap_manifest(self) -> None:
        """Write the manifest from live state; delete newly-stale files."""
        before = {
            entry["file"] for entry in self.manifest.get("runs", [])
        }
        self.manifest["runs"] = self._run_entries()
        self.manifest["pred_stats"] = _dump_pred_stats(self.pred_stats)
        self.manifest["terms"] = len(self._terms)
        self.manifest["triples"] = self.size
        self._write_manifest()
        after = {entry["file"] for entry in self.manifest["runs"]}
        for name in sorted(before - after):
            try:
                (self.directory / name).unlink()
            except OSError:
                pass  # stray files are ignored by the manifest anyway
        get_registry().counter(
            "repro_storage_checkpoints_total",
            "Manifest swaps completed by paged stores.",
        ).inc()

    def checkpoint(self) -> bool:
        """Fold the overlay + WAL into immutable files; reset the WAL.

        Crash-safe ordering: new run/bank files are fsynced before the
        atomic manifest swap, and the WAL is reset only after the swap
        — a WAL surviving a crash in between replays as no-ops.
        Finishes with at most one incremental size-tiered merge step,
        keeping compaction off the write path's critical section.
        Returns True when anything was written.
        """
        if self._wal is None or self._closed:
            raise StorageError(
                "cannot checkpoint a closed store",
                directory=str(self.directory),
            )
        self._wal.flush()
        overlay_dirty = bool(self.spo) or bool(self.tombstones)
        terms_dirty = bool(self._terms.overlay_terms)
        runs_dropped = {
            entry["file"] for entry in self.manifest.get("runs", [])
        } != {run.path.name for run in self.runs}
        if not (overlay_dirty or terms_dirty or runs_dropped):
            if self._wal.size():
                self._wal.reset()
            return False
        if terms_dirty:
            bank_no = int(self.manifest.get("next_bank", 1))
            entry = write_term_bank(
                self.directory / f"terms-{bank_no:06d}.tb",
                self._terms.base_total,
                self._terms.overlay_terms,
            )
            entry["created"] = time.time()
            self._terms.promote_overlay(
                TermBankReader(self.directory / entry["file"])
            )
            self.manifest.setdefault("term_banks", []).append(entry)
            self.manifest["next_bank"] = bank_no + 1
        if overlay_dirty:
            seq = int(self.manifest.get("next_seq", 1))
            entries = [
                (sid, pid, oid, 1)
                for sid, by_p in self.spo.items()
                for pid, objects in by_p.items()
                for oid in objects
            ]
            entries.extend(
                (sid, pid, oid, 0) for sid, pid, oid in self.tombstones
            )
            write_run(
                self.directory / f"run-{seq:06d}.run", seq, 0, entries
            )
            self.manifest["next_seq"] = seq + 1
            self.runs.append(
                RunReader(self.directory / f"run-{seq:06d}.run", self.cache)
            )
            self.spo.clear()
            self.pos.clear()
            self.osp.clear()
            self.tombstones.clear()
        self.manifest["checkpoints"] = (
            int(self.manifest.get("checkpoints", 0)) + 1
        )
        self._swap_manifest()
        self._wal.reset()
        self.maybe_compact()
        return True

    def _merge_runs(self, victims: List[RunReader], level: int) -> None:
        """Fold ``victims`` into one run at ``level`` (newest wins).

        Tombstones are dropped only when every surviving run is newer
        than the merge output — then nothing older remains for a
        tombstone to mask.
        """
        victim_set = set(victims)
        max_seq = max(run.seq for run in victims)
        safe_drop = all(
            run.seq > max_seq for run in self.runs if run not in victim_set
        )
        streams = [
            (
                ((a, b, c), -run.seq, flag)
                for a, b, c, flag in run.scan(0, ())
            )
            for run in victims
        ]
        entries: List[Tuple[int, int, int, int]] = []
        previous: Optional[Tuple[int, int, int]] = None
        for key, _negseq, flag in heapq.merge(*streams):
            if key == previous:
                continue
            previous = key
            if flag or not safe_drop:
                entries.append(key + (flag,))
        name_no = int(self.manifest.get("next_seq", 1))
        self.manifest["next_seq"] = name_no + 1
        survivors = [run for run in self.runs if run not in victim_set]
        if entries:
            path = self.directory / f"run-{name_no:06d}.run"
            write_run(path, max_seq, level, entries)
            survivors.append(RunReader(path, self.cache))
        for run in victims:
            run.close()
        survivors.sort(key=lambda run: run.seq)
        self.runs = survivors
        self.manifest["compactions"] = (
            int(self.manifest.get("compactions", 0)) + 1
        )
        self._swap_manifest()
        get_registry().counter(
            "repro_storage_compactions_total",
            "Completed store compactions.",
        ).inc()

    def maybe_compact(self) -> bool:
        """One size-tiered merge step, if any level has grown enough."""
        by_level: Dict[int, List[RunReader]] = {}
        for run in self.runs:
            by_level.setdefault(run.level, []).append(run)
        for level in sorted(by_level):
            runs = by_level[level]
            if len(runs) >= self.tier_fanout:
                # Oldest first: same-level runs are contiguous in seq
                # order, so merging the oldest fan keeps every level
                # strictly older than the one below it.
                victims = sorted(runs, key=lambda run: run.seq)[
                    : self.tier_fanout
                ]
                self._merge_runs(victims, level + 1)
                return True
        return False

    def compact(self) -> pathlib.Path:
        """Fold everything into one run without tombstones."""
        if self._wal is None or self._closed:
            raise StorageError(
                "cannot compact a closed store",
                directory=str(self.directory),
            )
        self.checkpoint()
        if self.runs and (
            len(self.runs) > 1 or any(run.tombstones for run in self.runs)
        ):
            level = max(run.level for run in self.runs) + 1
            self._merge_runs(list(self.runs), level)
        return self.directory

    def snapshot(self, destination: str) -> pathlib.Path:
        """Write a consistent, independently-openable copy of the store."""
        if self._closed:
            raise StorageError(
                "cannot snapshot a closed store",
                directory=str(self.directory),
            )
        if self._wal is not None:
            self._wal.flush()
        dest = pathlib.Path(destination)
        if (dest / MANIFEST_NAME).exists():
            raise StorageError(
                f"snapshot destination {dest} already holds a store",
                directory=str(dest),
            )
        dest.mkdir(parents=True, exist_ok=True)
        manifest = build_paged_store(dest, self)
        manifest["store_id"] = self.manifest["store_id"]
        tmp = dest / (MANIFEST_NAME + ".tmp")
        tmp.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", "utf-8"
        )
        os.replace(tmp, dest / MANIFEST_NAME)
        get_registry().counter(
            "repro_storage_snapshots_total",
            "Completed store snapshots.",
        ).inc()
        return dest

    # -- introspection -----------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        document = super().describe()
        now = time.time()
        run_entries = self._run_entries()
        details = []
        for entry in run_entries:
            created = entry.get("created")
            details.append(
                {
                    "file": entry["file"],
                    "seq": entry["seq"],
                    "level": entry["level"],
                    "triples": entry["adds"],
                    "tombstones": entry["tombstones"],
                    "bytes": entry["bytes"],
                    "age_seconds": (
                        round(now - created, 3) if created else None
                    ),
                }
            )
        document.update(
            directory=str(self.directory),
            store_id=self.manifest.get("store_id"),
            segments=len(self.runs),
            segment_bytes=sum(int(e.get("bytes", 0)) for e in run_entries),
            segments_detail=details,
            term_banks=len(self._terms.banks),
            overlay_triples=sum(
                len(objects)
                for by_p in self.spo.values()
                for objects in by_p.values()
            ),
            overlay_tombstones=len(self.tombstones),
            wal_bytes=self.wal_size(),
            page_cache=self.cache.stats(),
            opens=self.generation,
            checkpoints=int(self.manifest.get("checkpoints", 0)),
            compactions=int(self.manifest.get("compactions", 0)),
            recovery=dict(self.recovery),
            closed=self._closed,
        )
        return document


# -- direct store construction (bulk loader, snapshots) ----------------------


def build_paged_store(
    directory: pathlib.Path, backend: StorageBackend
) -> Dict[str, Any]:
    """Write a complete single-run paged store from a built backend.

    Used by the bulk loader (sorted runs written directly, no WAL
    traffic) and by ``snapshot()``.  The destination directory must
    exist and hold no store; the caller writes the returned manifest.
    """
    created = time.time()
    bank_entry = write_term_bank(
        directory / "terms-000001.tb",
        0,
        list(backend.term_list),
    )
    bank_entry["created"] = created
    run_entry = write_run(
        directory / "run-000001.run",
        1,
        1,
        ((sid, pid, oid, 1) for sid, pid, oid in backend.encoded_triples()),
    )
    run_entry["created"] = created
    manifest = _fresh_manifest()
    manifest["runs"] = [run_entry]
    manifest["term_banks"] = [bank_entry]
    manifest["next_seq"] = 2
    manifest["next_bank"] = 2
    manifest["pred_stats"] = _dump_pred_stats(backend.pred_stats)
    manifest["terms"] = len(backend.term_list)
    manifest["triples"] = backend.size
    (directory / WAL_NAME).touch()
    return manifest
