"""Immutable mmap'd sorted-run and term-bank files + the block cache.

This module is the page layer of :class:`repro.storage.paged.
PagedBackend`.  It knows nothing about LSM levels or write-ahead logs —
it reads and writes two immutable file kinds and caches fixed-size
blocks of them:

**Run files** (``run-NNNNNN.run``) hold one sorted batch of triple
records in all three permutation orders::

    RPRORUN1                                  8-byte magic
    section 0 (SPO): records | fence keys     16 B records, 12 B fences
    section 1 (POS): records | fence keys
    section 2 (OSP): records | fence keys
    JSON footer  <u32 footer length>  RPRORUN1

A record is ``<u32 a><u32 b><u32 c><u8 flag><3 pad>`` — the triple ids
permuted into the section's order, with ``flag`` 1 for an add and 0
for a tombstone.  Records are sorted by ``(a, b, c)`` and grouped into
4096-byte blocks of 256; the fence array holds the first key of every
block, so a probe binary-searches the fences (12-byte mmap reads),
fetches one block through the cache, and binary-searches inside it —
no block is touched that the probe does not need.  The footer carries
per-section offsets, record counts, distinct-first-component counts
(planner denominators) and CRCs (``repro store verify``), so opening a
run is one mmap plus one footer read regardless of size.

**Term-bank files** (``terms-NNNNNN.tb``) hold one contiguous slice of
the term dictionary (ids ``base .. base+count-1``)::

    RPROTB01
    blobs:   <u32 len><encoded term>  per term, in id order
    offsets: <u64 file offset> per term         (id -> term)
    order:   <u32 id-base> per term, sorted by encoded bytes
                                                (term -> id)
    JSON footer  <u32 footer length>  RPROTB01

``term()`` is two mmap reads + one decode; ``find()`` binary-searches
the order array comparing encoded bytes.  Terms are decoded lazily and
memoized by the backend, so cold open never materialises the
dictionary.

**Block cache** — one LRU :class:`BlockCache` per store, shared by all
of its runs, capped in 4096-byte blocks and observable through the
``repro_storage_page_hits_total`` / ``repro_storage_page_misses_total``
/ ``repro_storage_page_evictions_total`` counters and the
``repro_storage_page_cache_blocks`` gauge.
"""

from __future__ import annotations

import itertools
import json
import mmap
import os
import pathlib
import struct
import zlib
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.observability import get_registry
from repro.rdf.term import Node
from repro.storage import records
from repro.storage.errors import SnapshotMismatch

RUN_MAGIC = b"RPRORUN1"
BANK_MAGIC = b"RPROTB01"

#: Fixed block geometry: 256 16-byte records per 4096-byte block.
RECORD_BYTES = 16
BLOCK_BYTES = 4096
RECORDS_PER_BLOCK = BLOCK_BYTES // RECORD_BYTES

#: The three section orderings, in file order.
SECTIONS = ("spo", "pos", "osp")

_RECORD = struct.Struct("<IIIB3x")
_FENCE = struct.Struct("<III")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: A key component strictly greater than any stored u32 (upper bounds).
KEY_INFINITY = 1 << 32

_reader_tokens = itertools.count(1)


class BlockCache:
    """A store-wide LRU over 4096-byte file blocks.

    Keys are ``(reader token, section index, block number)`` — reader
    tokens are process-unique, so a compaction that replaces run files
    can never alias a stale cached block.  Capacity is counted in
    blocks; an over-full insert evicts from the least-recently-used
    end.  Hit/miss/eviction counts feed both the instance fields (unit
    tests, ``describe()``) and the process-wide
    ``repro_storage_page_*`` metric families.
    """

    def __init__(self, capacity_blocks: int = 1024) -> None:
        if capacity_blocks < 1:
            raise ValueError(
                f"capacity_blocks must be >= 1, got {capacity_blocks}"
            )
        self.capacity_blocks = capacity_blocks
        self._blocks: "OrderedDict[Tuple[int, int, int], bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        registry = get_registry()
        self._hits_metric = registry.counter(
            "repro_storage_page_hits_total",
            "Block-cache hits across paged stores.",
        )
        self._misses_metric = registry.counter(
            "repro_storage_page_misses_total",
            "Block-cache misses across paged stores.",
        )
        self._evictions_metric = registry.counter(
            "repro_storage_page_evictions_total",
            "Blocks evicted from paged-store caches.",
        )
        self._resident_metric = registry.gauge(
            "repro_storage_page_cache_blocks",
            "File blocks resident in paged-store caches.",
        )

    def __len__(self) -> int:
        return len(self._blocks)

    def get(
        self,
        key: Tuple[int, int, int],
        loader: Callable[[], bytes],
    ) -> bytes:
        block = self._blocks.get(key)
        if block is not None:
            self._blocks.move_to_end(key)
            self.hits += 1
            self._hits_metric.inc()
            return block
        block = loader()
        self.misses += 1
        self._misses_metric.inc()
        self._blocks[key] = block
        self._resident_metric.inc()
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)
            self.evictions += 1
            self._evictions_metric.inc()
            self._resident_metric.dec()
        return block

    def purge(self, token: int) -> None:
        """Drop every cached block of one reader (close/compaction)."""
        stale = [key for key in self._blocks if key[0] == token]
        for key in stale:
            del self._blocks[key]
        if stale:
            self._resident_metric.dec(len(stale))

    def stats(self) -> Dict[str, int]:
        return {
            "capacity_blocks": self.capacity_blocks,
            "resident_blocks": len(self._blocks),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def _permute(section: int, sid: int, pid: int, oid: int) -> Tuple[int, int, int]:
    """(s, p, o) into one section's key order."""
    if section == 0:
        return (sid, pid, oid)
    if section == 1:
        return (pid, oid, sid)
    return (oid, sid, pid)


def _unpermute(section: int, a: int, b: int, c: int) -> Tuple[int, int, int]:
    """One section's key back into (s, p, o)."""
    if section == 0:
        return (a, b, c)
    if section == 1:
        return (c, a, b)
    return (b, c, a)


# -- run files ---------------------------------------------------------------


def write_run(
    path: pathlib.Path,
    seq: int,
    level: int,
    entries: Iterable[Tuple[int, int, int, int]],
) -> Dict[str, Any]:
    """Write one immutable run from ``(sid, pid, oid, flag)`` entries.

    Entries must be unique as triples (the caller merges first); order
    does not matter — each section is sorted here.  The write is
    atomic (tmp + rename) and fsynced before rename, so a run named by
    a manifest is always complete.  Returns the manifest entry.
    """
    base = list(entries)
    adds = sum(1 for e in base if e[3])
    sections: List[Dict[str, Any]] = []
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(RUN_MAGIC)
        position = len(RUN_MAGIC)
        pack = _RECORD.pack
        for section in range(3):
            rows = sorted(
                (_permute(section, s, p, o) + (flag,))
                for s, p, o, flag in base
            )
            data = bytearray()
            fences = bytearray()
            distinct = 0
            previous_first: Optional[int] = None
            for index, (a, b, c, flag) in enumerate(rows):
                if index % RECORDS_PER_BLOCK == 0:
                    fences += _FENCE.pack(a, b, c)
                if a != previous_first:
                    distinct += 1
                    previous_first = a
                data += pack(a, b, c, flag)
            handle.write(data)
            handle.write(fences)
            sections.append(
                {
                    "name": SECTIONS[section],
                    "offset": position,
                    "records": len(rows),
                    "blocks": len(fences) // _FENCE.size,
                    "fence_offset": position + len(data),
                    "distinct": distinct,
                    "crc": zlib.crc32(bytes(data) + bytes(fences)),
                }
            )
            position += len(data) + len(fences)
        footer = {
            "seq": seq,
            "level": level,
            "records": len(base),
            "adds": adds,
            "tombstones": len(base) - adds,
            "sections": sections,
        }
        footer_bytes = json.dumps(footer, sort_keys=True).encode("utf-8")
        handle.write(footer_bytes)
        handle.write(_U32.pack(len(footer_bytes)))
        handle.write(RUN_MAGIC)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return {
        "file": path.name,
        "seq": seq,
        "level": level,
        "records": len(base),
        "adds": adds,
        "tombstones": len(base) - adds,
        "bytes": path.stat().st_size,
    }


def _read_footer(
    data: "mmap.mmap | bytes", path: pathlib.Path, magic: bytes
) -> Dict[str, Any]:
    """The JSON footer of a run or bank file (shared tail layout)."""
    tail = len(magic) + _U32.size
    if len(data) < len(magic) + tail or bytes(data[: len(magic)]) != magic:
        raise SnapshotMismatch(
            f"{path.name} is not a valid paged-store file",
            segment=path.name,
        )
    if bytes(data[len(data) - len(magic) :]) != magic:
        raise SnapshotMismatch(
            f"{path.name} is truncated (missing tail magic)",
            segment=path.name,
        )
    (footer_len,) = _U32.unpack_from(data, len(data) - tail)
    start = len(data) - tail - footer_len
    if start < len(magic):
        raise SnapshotMismatch(
            f"{path.name} declares an impossible footer length",
            segment=path.name,
        )
    try:
        return json.loads(bytes(data[start : start + footer_len]))
    except ValueError as exc:
        raise SnapshotMismatch(
            f"{path.name} footer is not valid JSON: {exc}",
            segment=path.name,
        ) from exc


class _Section:
    __slots__ = ("offset", "records", "blocks", "fence_offset", "distinct", "crc")

    def __init__(self, entry: Dict[str, Any]) -> None:
        self.offset = int(entry["offset"])
        self.records = int(entry["records"])
        self.blocks = int(entry["blocks"])
        self.fence_offset = int(entry["fence_offset"])
        self.distinct = int(entry["distinct"])
        self.crc = int(entry["crc"])


class RunReader:
    """Random access over one immutable run file via mmap + cache.

    Opening reads only the footer — O(1) regardless of run size.  All
    record access goes through the shared :class:`BlockCache`; fence
    keys are read straight off the mmap (12 bytes each, never enough
    to be worth caching).
    """

    def __init__(self, path: pathlib.Path, cache: BlockCache) -> None:
        self.path = path
        self.token = next(_reader_tokens)
        self._cache = cache
        self._file = open(path, "rb")
        try:
            self._map: "mmap.mmap | bytes" = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            # Zero-length or mmap-hostile file: fall back to bytes (the
            # footer check below reports the real problem).
            self._map = self._file.read()
        footer = _read_footer(self._map, path, RUN_MAGIC)
        self.seq = int(footer["seq"])
        self.level = int(footer["level"])
        self.records = int(footer["records"])
        self.adds = int(footer["adds"])
        self.tombstones = int(footer["tombstones"])
        self._sections = [_Section(entry) for entry in footer["sections"]]

    def close(self) -> None:
        self._cache.purge(self.token)
        if isinstance(self._map, mmap.mmap):
            self._map.close()
        self._file.close()

    # -- low-level access --------------------------------------------------

    def _fence(self, section: _Section, block: int) -> Tuple[int, int, int]:
        return _FENCE.unpack_from(
            self._map, section.fence_offset + block * _FENCE.size
        )

    def _block(self, section_index: int, block: int) -> bytes:
        section = self._sections[section_index]
        start = section.offset + block * BLOCK_BYTES
        length = min(
            BLOCK_BYTES, section.records * RECORD_BYTES - block * BLOCK_BYTES
        )

        def load() -> bytes:
            return bytes(self._map[start : start + length])

        return self._cache.get((self.token, section_index, block), load)

    def _record(
        self, section_index: int, index: int
    ) -> Tuple[int, int, int, int]:
        block = self._block(section_index, index // RECORDS_PER_BLOCK)
        return _RECORD.unpack_from(
            block, (index % RECORDS_PER_BLOCK) * RECORD_BYTES
        )

    def _lower_bound(
        self, section_index: int, target: Tuple[int, int, int]
    ) -> int:
        """Index of the first record with key >= ``target``.

        Fence binary search picks the block without touching data
        pages; the in-block search runs on cache-resident bytes.
        """
        section = self._sections[section_index]
        if section.records == 0:
            return 0
        lo, hi = 0, section.blocks
        while lo < hi:
            mid = (lo + hi) // 2
            if self._fence(section, mid) <= target:
                lo = mid + 1
            else:
                hi = mid
        block = lo - 1
        if block < 0:
            return 0
        base = block * RECORDS_PER_BLOCK
        data = self._block(section_index, block)
        lo, hi = 0, min(RECORDS_PER_BLOCK, section.records - base)
        unpack = _RECORD.unpack_from
        while lo < hi:
            mid = (lo + hi) // 2
            if unpack(data, mid * RECORD_BYTES)[:3] < target:
                lo = mid + 1
            else:
                hi = mid
        return base + lo

    # -- probes ------------------------------------------------------------

    def range_bounds(
        self, section_index: int, prefix: Tuple[int, ...]
    ) -> Tuple[int, int]:
        """[start, end) record indices of one key-prefix range."""
        if not prefix:
            return (0, self._sections[section_index].records)
        low = tuple(prefix) + (0,) * (3 - len(prefix))
        if len(prefix) == 3:
            # A full key is a singleton range: [key, key-successor).
            high = prefix[:2] + (prefix[2] + 1,)
        else:
            high = tuple(prefix) + (KEY_INFINITY,) * (3 - len(prefix))
        start = self._lower_bound(section_index, low)  # type: ignore[arg-type]
        end = self._lower_bound(section_index, high)  # type: ignore[arg-type]
        return (start, end)

    def range_size(self, section_index: int, prefix: Tuple[int, ...]) -> int:
        start, end = self.range_bounds(section_index, prefix)
        return end - start

    def scan(
        self, section_index: int, prefix: Tuple[int, ...]
    ) -> Iterator[Tuple[int, int, int, int]]:
        """Records of one prefix range, in section key order."""
        start, end = self.range_bounds(section_index, prefix)
        unpack = _RECORD.unpack_from
        index = start
        while index < end:
            block_no = index // RECORDS_PER_BLOCK
            data = self._block(section_index, block_no)
            stop = min(end, (block_no + 1) * RECORDS_PER_BLOCK)
            offset = (index % RECORDS_PER_BLOCK) * RECORD_BYTES
            for _ in range(stop - index):
                yield unpack(data, offset)
                offset += RECORD_BYTES
            index = stop

    def point(self, sid: int, pid: int, oid: int) -> Optional[int]:
        """The flag of one exact triple, or ``None`` if absent."""
        key = (sid, pid, oid)
        index = self._lower_bound(0, key)
        if index >= self._sections[0].records:
            return None
        record = self._record(0, index)
        return record[3] if record[:3] == key else None

    def distinct_first(self, section_index: int) -> int:
        return self._sections[section_index].distinct

    def verify(self) -> None:
        """Recompute every section CRC; raises SnapshotMismatch."""
        for section in self._sections:
            if section.records != self.records:
                raise SnapshotMismatch(
                    f"run {self.path.name} section at offset "
                    f"{section.offset} holds {section.records} records; "
                    f"the footer declares {self.records}",
                    segment=self.path.name,
                )
            end = section.fence_offset + section.blocks * _FENCE.size
            actual = zlib.crc32(bytes(self._map[section.offset : end]))
            if actual != section.crc:
                raise SnapshotMismatch(
                    f"run {self.path.name} section at offset "
                    f"{section.offset} fails its CRC "
                    f"(stored {section.crc}, computed {actual})",
                    segment=self.path.name,
                )


# -- term banks --------------------------------------------------------------


def write_term_bank(
    path: pathlib.Path, base: int, terms: List[Node]
) -> Dict[str, Any]:
    """Write one immutable term bank for ids ``base .. base+len-1``."""
    blobs = [records.encode_term(term) for term in terms]
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(BANK_MAGIC)
        position = len(BANK_MAGIC)
        offsets = bytearray()
        crc = 0
        for blob in blobs:
            offsets += _U64.pack(position)
            framed = _U32.pack(len(blob)) + blob
            handle.write(framed)
            crc = zlib.crc32(framed, crc)
            position += len(framed)
        order = bytearray()
        for relative in sorted(range(len(blobs)), key=lambda i: blobs[i]):
            order += _U32.pack(relative)
        handle.write(offsets)
        handle.write(order)
        # The CRC covers every payload byte plus both arrays — the
        # whole file between the magic and the footer.
        crc = zlib.crc32(bytes(offsets) + bytes(order), crc)
        footer = {
            "base": base,
            "count": len(blobs),
            "offsets_offset": position,
            "order_offset": position + len(offsets),
            "crc": crc,
        }
        footer_bytes = json.dumps(footer, sort_keys=True).encode("utf-8")
        handle.write(footer_bytes)
        handle.write(_U32.pack(len(footer_bytes)))
        handle.write(BANK_MAGIC)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return {
        "file": path.name,
        "base": base,
        "count": len(blobs),
        "bytes": path.stat().st_size,
    }


class TermBankReader:
    """Lazy id <-> term access over one immutable bank file."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self._file = open(path, "rb")
        try:
            self._map: "mmap.mmap | bytes" = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            self._map = self._file.read()
        footer = _read_footer(self._map, path, BANK_MAGIC)
        self.base = int(footer["base"])
        self.count = int(footer["count"])
        self._offsets_offset = int(footer["offsets_offset"])
        self._order_offset = int(footer["order_offset"])
        self._crc = int(footer["crc"])

    def close(self) -> None:
        if isinstance(self._map, mmap.mmap):
            self._map.close()
        self._file.close()

    def _blob(self, relative: int) -> bytes:
        (offset,) = _U64.unpack_from(
            self._map, self._offsets_offset + relative * _U64.size
        )
        (length,) = _U32.unpack_from(self._map, offset)
        start = offset + _U32.size
        return bytes(self._map[start : start + length])

    def term(self, tid: int) -> Node:
        """Decode the term of one id owned by this bank."""
        relative = tid - self.base
        if not 0 <= relative < self.count:
            raise IndexError(f"term id {tid} outside bank {self.path.name}")
        term, _ = records.decode_term(self._blob(relative), 0)
        return term

    def find(self, encoded: bytes) -> Optional[int]:
        """The id of one encoded term, or ``None`` if not in this bank."""
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            (relative,) = _U32.unpack_from(
                self._map, self._order_offset + mid * _U32.size
            )
            blob = self._blob(relative)
            if blob < encoded:
                lo = mid + 1
            elif blob > encoded:
                hi = mid
            else:
                return self.base + relative
        return None

    def verify(self) -> None:
        """Recompute the payload+offsets+order CRC; raises on mismatch."""
        end = self._order_offset + self.count * _U32.size
        actual = zlib.crc32(bytes(self._map[len(BANK_MAGIC) : end]))
        if actual != self._crc:
            raise SnapshotMismatch(
                f"term bank {self.path.name} fails its CRC "
                f"(stored {self._crc}, computed {actual})",
                segment=self.path.name,
            )
