"""The ``IndexProbe`` protocol: every read the query layer performs.

Before this module existed, the SPARQL planner reached straight into
``graph._spo``/``_pos``/``_osp`` — fine while every backend kept the
full index set as nested dicts in RAM, fatal the moment an index lives
in memory-mapped files.  The probe protocol names the complete set of
read operations the query layer needs, so any backend that can answer
them — dict-indexed or paged — can sit behind the planner unchanged:

* :meth:`IndexProbe.contains` — point membership of one encoded triple
  (the fully-bound pattern fast path);
* :meth:`IndexProbe.scan` — every encoded triple matching an id
  pattern (``None`` = wildcard), served from the best of the SPO /
  POS / OSP orderings for the bound positions;
* :meth:`IndexProbe.count` — a cheap cardinality estimate of
  ``scan``'s result size, never materialising it (planner input);
* :meth:`IndexProbe.predicate_stats` — the incremental per-predicate
  statistics driving join ordering;
* :meth:`IndexProbe.index_sizes` — distinct subject / predicate /
  object counts (the planner's fallback denominators).

:class:`DictIndexProbe` implements the protocol over the nested-dict
indices of :class:`~repro.storage.backend.MemoryBackend` (and so of
``DiskBackend``) with *exactly* the loops and arithmetic the planner
used inline — behaviour- and plan-identical by construction, which the
differential suites pin.  :class:`repro.storage.paged.PagedProbe`
implements it over immutable mmap'd sorted runs.

Synchronization follows the graph contract: ``scan`` results are
materialised under the owning graph's lock; ``contains`` is safe
lock-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

from repro.storage.backend import Index, PredicateStats

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["IndexProbe", "DictIndexProbe"]


class IndexProbe:
    """Read-side contract between the query layer and a backend."""

    def contains(self, sid: int, pid: int, oid: int) -> bool:
        """Point membership of one fully-bound encoded triple."""
        raise NotImplementedError

    def scan(
        self,
        sid: Optional[int],
        pid: Optional[int],
        oid: Optional[int],
    ) -> Iterator[Tuple[int, int, int]]:
        """Encoded triples matching an id pattern (``None`` = wildcard)."""
        raise NotImplementedError

    def count(
        self,
        sid: Optional[int],
        pid: Optional[int],
        oid: Optional[int],
    ) -> float:
        """Estimated size of ``scan(sid, pid, oid)`` without running it.

        Exact for dict-indexed backends; an upper-bound estimate (live
        records incl. not-yet-compacted tombstones) for paged ones.
        Only ever used to *order* joins — never to produce results.
        """
        raise NotImplementedError

    def predicate_stats(self, pid: int) -> Optional[PredicateStats]:
        """Cardinality statistics of one predicate id (``None`` if absent)."""
        raise NotImplementedError

    def index_sizes(self) -> Tuple[int, int, int]:
        """(distinct subjects, distinct predicates, distinct objects)."""
        raise NotImplementedError


class DictIndexProbe(IndexProbe):
    """The protocol over nested-dict SPO/POS/OSP indices.

    Every method body is the exact code the planner and graph ran
    inline before the protocol existed — same traversal order, same
    arithmetic — so plans and result ordering are unchanged for the
    memory and disk backends.
    """

    __slots__ = ("spo", "pos", "osp", "pred_stats")

    def __init__(
        self,
        spo: Index,
        pos: Index,
        osp: Index,
        pred_stats: Dict[int, PredicateStats],
    ) -> None:
        self.spo = spo
        self.pos = pos
        self.osp = osp
        self.pred_stats = pred_stats

    def contains(self, sid: int, pid: int, oid: int) -> bool:
        return oid in self.spo.get(sid, {}).get(pid, ())

    def scan(
        self,
        sid: Optional[int],
        pid: Optional[int],
        oid: Optional[int],
    ) -> Iterator[Tuple[int, int, int]]:
        if sid is not None:
            by_p = self.spo.get(sid)
            if by_p is None:
                return
            if pid is not None:
                objects = by_p.get(pid)
                if objects is None:
                    return
                if oid is not None:
                    if oid in objects:
                        yield (sid, pid, oid)
                    return
                for obj in objects:
                    yield (sid, pid, obj)
                return
            if oid is not None:
                for pred in self.osp.get(oid, {}).get(sid, ()):
                    yield (sid, pred, oid)
                return
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (sid, pred, obj)
            return
        if pid is not None:
            by_o = self.pos.get(pid)
            if by_o is None:
                return
            if oid is not None:
                for subj in by_o.get(oid, ()):
                    yield (subj, pid, oid)
                return
            for obj, subjects in by_o.items():
                for subj in subjects:
                    yield (subj, pid, obj)
            return
        if oid is not None:
            by_s = self.osp.get(oid)
            if by_s is None:
                return
            for subj, preds in by_s.items():
                for pred in preds:
                    yield (subj, pred, oid)
            return
        for subj, by_p in self.spo.items():
            for pred, objects in by_p.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def count(
        self,
        sid: Optional[int],
        pid: Optional[int],
        oid: Optional[int],
    ) -> float:
        if sid is not None and pid is not None:
            objects = self.spo.get(sid, {}).get(pid, ())
            if oid is not None:
                return 1.0 if oid in objects else 0.0
            return float(len(objects))
        if pid is not None and oid is not None:
            return float(len(self.pos.get(pid, {}).get(oid, ())))
        if sid is not None:
            if oid is not None:
                return float(len(self.osp.get(oid, {}).get(sid, ())))
            return float(
                sum(len(objs) for objs in self.spo.get(sid, {}).values())
            )
        if oid is not None:
            return float(
                sum(len(preds) for preds in self.osp.get(oid, {}).values())
            )
        if pid is not None:
            stats = self.pred_stats.get(pid)
            return float(stats.triples) if stats is not None else 0.0
        return float(
            sum(
                len(objects)
                for by_p in self.spo.values()
                for objects in by_p.values()
            )
        )

    def predicate_stats(self, pid: int) -> Optional[PredicateStats]:
        return self.pred_stats.get(pid)

    def index_sizes(self) -> Tuple[int, int, int]:
        return (len(self.spo), len(self.pos), len(self.osp))
