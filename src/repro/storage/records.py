"""Binary record framing and term codec shared by WAL and segments.

One framing serves both files: every record is ``<u32 length><u32
crc32(payload)><payload>`` (little-endian), so recovery and segment
loading share a single scanner.  The scanner distinguishes three end
states:

* ``clean`` — the byte stream ended exactly on a record boundary;
* ``torn`` — the final record is incomplete (a crash cut an append
  short, or the filesystem zero-filled the tail); everything before it
  is valid and the torn bytes can be truncated away;
* ``corrupt`` — a *fully present* record failed its CRC or declared an
  absurd length: the file was damaged after being written.

Payloads start with a one-byte opcode:

=========  =====================================================
``TERM``   ``<u8 op><u32 tid>`` + term encoding (dictionary entry)
``ADD``    ``<u8 op><u32 sid><u32 pid><u32 oid>``
``DELETE`` ``<u8 op><u32 sid><u32 pid><u32 oid>``
``CLEAR``  ``<u8 op>``
``FOOTER`` ``<u8 op>`` + UTF-8 JSON (segment summary; never in WAL)
=========  =====================================================

Terms encode as ``<u8 kind>`` + kind-specific bytes: URI and blank
nodes carry their UTF-8 text; literals carry a flags byte (datatype /
language present) and length-prefixed UTF-8 fields.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.rdf.term import BNode, Literal, Node, URIRef

_HEADER = struct.Struct("<II")
_U32 = struct.Struct("<I")
_OP_IDS = struct.Struct("<BIII")
_OP_TERM_HEAD = struct.Struct("<BI")

#: Opcodes.
OP_TERM = 0x01
OP_ADD = 0x02
OP_DELETE = 0x03
OP_CLEAR = 0x04
OP_FOOTER = 0x05

#: Term kinds.
KIND_URI = 0x01
KIND_BNODE = 0x02
KIND_LITERAL = 0x03

#: Upper bound on one record; a declared length beyond this is
#: corruption, not a large record (terms and footers stay far below).
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Segment file magic (8 bytes, versioned).
SEGMENT_MAGIC = b"RPROSEG1"


class RecordFormatError(ValueError):
    """A payload failed to decode (reported as corruption by callers)."""


# -- term codec -------------------------------------------------------------


def encode_term(term: Node) -> bytes:
    """One term as kind-tagged bytes."""
    if isinstance(term, URIRef):
        return bytes((KIND_URI,)) + str(term).encode("utf-8")
    if isinstance(term, BNode):
        return bytes((KIND_BNODE,)) + str(term).encode("utf-8")
    if isinstance(term, Literal):
        flags = (1 if term.datatype is not None else 0) | (
            2 if term.lang is not None else 0
        )
        lexical = term.lexical.encode("utf-8")
        out = bytearray((KIND_LITERAL, flags))
        out += _U32.pack(len(lexical))
        out += lexical
        if term.datatype is not None:
            datatype = str(term.datatype).encode("utf-8")
            out += _U32.pack(len(datatype))
            out += datatype
        if term.lang is not None:
            lang = term.lang.encode("utf-8")
            out += _U32.pack(len(lang))
            out += lang
        return bytes(out)
    raise RecordFormatError(f"cannot encode term of type {type(term)!r}")


def decode_term(payload: bytes, offset: int) -> Tuple[Node, int]:
    """Decode one term at ``offset``; returns (term, next offset)."""
    if offset >= len(payload):
        raise RecordFormatError("truncated term encoding")
    kind = payload[offset]
    offset += 1
    if kind in (KIND_URI, KIND_BNODE):
        text = payload[offset:].decode("utf-8")
        cls = URIRef if kind == KIND_URI else BNode
        return cls(text), len(payload)
    if kind != KIND_LITERAL:
        raise RecordFormatError(f"unknown term kind 0x{kind:02x}")
    flags = payload[offset]
    offset += 1

    def take() -> str:
        nonlocal offset
        if offset + 4 > len(payload):
            raise RecordFormatError("truncated literal field")
        (length,) = _U32.unpack_from(payload, offset)
        offset += 4
        if offset + length > len(payload):
            raise RecordFormatError("truncated literal field")
        text = payload[offset : offset + length].decode("utf-8")
        offset += length
        return text

    lexical = take()
    datatype = take() if flags & 1 else None
    lang = take() if flags & 2 else None
    return Literal(lexical, datatype=datatype, lang=lang), offset


# -- payload builders -------------------------------------------------------


def term_payload(tid: int, term: Node) -> bytes:
    return _OP_TERM_HEAD.pack(OP_TERM, tid) + encode_term(term)


def add_payload(sid: int, pid: int, oid: int) -> bytes:
    return _OP_IDS.pack(OP_ADD, sid, pid, oid)


def delete_payload(sid: int, pid: int, oid: int) -> bytes:
    return _OP_IDS.pack(OP_DELETE, sid, pid, oid)


def clear_payload() -> bytes:
    return bytes((OP_CLEAR,))


def footer_payload(document: bytes) -> bytes:
    return bytes((OP_FOOTER,)) + document


def decode_term_payload(payload: bytes) -> Tuple[int, Node]:
    """(tid, term) of one ``TERM`` payload."""
    _, tid = _OP_TERM_HEAD.unpack_from(payload, 0)
    term, _ = decode_term(payload, _OP_TERM_HEAD.size)
    return tid, term


def decode_ids_payload(payload: bytes) -> Tuple[int, int, int]:
    """(sid, pid, oid) of one ``ADD``/``DELETE`` payload."""
    if len(payload) != _OP_IDS.size:
        raise RecordFormatError("triple record has wrong length")
    _, sid, pid, oid = _OP_IDS.unpack(payload)
    return sid, pid, oid


# -- framing ----------------------------------------------------------------


def encode_record(payload: bytes) -> bytes:
    """Frame one payload as ``<len><crc><payload>``."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class RecordScanner:
    """Iterate framed records over a byte buffer, classifying the end.

    After exhaustion, ``end`` is the offset of the first byte past the
    last *valid* record and ``status`` is ``clean`` / ``torn`` /
    ``corrupt`` (``error`` carries the human detail for the latter).
    Iteration stops at the first torn or corrupt record.
    """

    def __init__(self, data: bytes, start: int = 0) -> None:
        self._data = data
        self.end = start
        self.status = "clean"
        self.error: Optional[str] = None

    def __iter__(self) -> Iterator[bytes]:
        data = self._data
        size = len(data)
        offset = self.end
        while offset < size:
            if offset + _HEADER.size > size:
                self.status = "torn"
                return
            length, crc = _HEADER.unpack_from(data, offset)
            if length == 0:
                # Zero-filled tail (filesystem pre-allocation after a
                # crash): indistinguishable from a torn append.
                self.status = "torn"
                return
            if length > MAX_RECORD_BYTES:
                self.status = "corrupt"
                self.error = (
                    f"record at offset {offset} declares "
                    f"{length} bytes (limit {MAX_RECORD_BYTES})"
                )
                return
            body_start = offset + _HEADER.size
            if body_start + length > size:
                self.status = "torn"
                return
            payload = data[body_start : body_start + length]
            if zlib.crc32(payload) != crc:
                self.status = "corrupt"
                self.error = f"record at offset {offset} failed its CRC"
                return
            offset = body_start + length
            self.end = offset
            yield payload


def scan_records(data: bytes, start: int = 0) -> Tuple[List[bytes], RecordScanner]:
    """Materialise every valid record; returns (payloads, scanner)."""
    scanner = RecordScanner(data, start)
    return list(scanner), scanner
