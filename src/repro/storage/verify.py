"""Offline store verification: re-checksum every durable artifact.

``repro store verify`` walks a store directory *without opening a
backend* — no WAL replay, no index rebuild, no manifest mutation — and
recomputes every stored checksum:

* **disk engine** (manifest format 1): each segment's record framing
  is re-scanned (per-record CRC32) and its footer counts are checked
  against what the records actually declare;
* **paged engine** (manifest format 2): each run's three section CRCs
  and each term bank's offsets/order CRC are recomputed over the raw
  mmap'd bytes, and footer record counts are checked against the
  section sizes;
* **both**: the WAL is scanned record by record.  A *torn tail* (a
  crash cut the final append short) is recovery-normal and reported as
  a note, not a failure; an in-place CRC mismatch is a failure.

Verification stops at the first mismatch — the report names the file
and the reason, and the CLI exits non-zero with the report on stdout
as JSON, so scripted integrity sweeps need no output parsing.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Optional

from repro.storage import records
from repro.storage.disk import MANIFEST_NAME, WAL_NAME
from repro.storage.errors import SnapshotMismatch, StorageError

__all__ = ["verify_store"]


def _failure(report: Dict[str, Any], file: str, error: str) -> Dict[str, Any]:
    report["ok"] = False
    report["failure"] = {"file": file, "error": error}
    return report


def _verify_disk_segment(
    directory: pathlib.Path, entry: Dict[str, Any]
) -> Optional[str]:
    """None if the segment checks out, else the failure reason."""
    name = entry.get("name", "?")
    path = directory / name
    try:
        data = path.read_bytes()
    except OSError as exc:
        return f"unreadable: {exc}"
    if not data.startswith(records.SEGMENT_MAGIC):
        return "missing segment magic"
    scanner = records.RecordScanner(data, len(records.SEGMENT_MAGIC))
    terms = 0
    triples = 0
    footer: Optional[Dict[str, Any]] = None
    try:
        for payload in scanner:
            op = payload[0]
            if op == records.OP_TERM:
                terms += 1
            elif op == records.OP_ADD:
                triples += 1
            elif op == records.OP_FOOTER:
                footer = json.loads(payload[1:].decode("utf-8"))
            else:
                return f"unexpected opcode 0x{op:02x}"
    except (ValueError, IndexError) as exc:
        return f"undecodable record: {exc}"
    if scanner.status != "clean":
        return scanner.error or "truncated record stream"
    if footer is None:
        return "no footer record"
    if footer.get("terms") != terms or footer.get("triples") != triples:
        return (
            f"footer claims {footer.get('terms')} terms / "
            f"{footer.get('triples')} triples; file holds "
            f"{terms} / {triples}"
        )
    expected = int(entry.get("triples", triples))
    if triples != expected:
        return f"manifest claims {expected} triples; file holds {triples}"
    return None


def _verify_paged_file(
    directory: pathlib.Path, name: str, kind: str
) -> Optional[str]:
    """Re-open one run or term bank and recompute its CRCs."""
    from repro.storage.pages import BlockCache, RunReader, TermBankReader

    path = directory / name
    reader = None
    try:
        if kind == "run":
            # A throwaway single-block cache: verification reads the
            # raw mmap, not data blocks, so nothing is retained.
            reader = RunReader(path, BlockCache(1))
        else:
            reader = TermBankReader(path)
        reader.verify()
    except (OSError, SnapshotMismatch, ValueError) as exc:
        return str(exc)
    finally:
        if reader is not None:
            reader.close()
    return None


def _verify_wal(path: pathlib.Path, report: Dict[str, Any]) -> Optional[str]:
    if not path.exists():
        report["wal"] = {"records": 0, "status": "absent"}
        return None
    data = path.read_bytes()
    scanner = records.RecordScanner(data)
    count = sum(1 for _ in scanner)
    report["wal"] = {
        "records": count,
        "bytes": len(data),
        "status": scanner.status,
    }
    if scanner.status == "corrupt":
        return scanner.error or "corrupt record"
    if scanner.status == "torn":
        # Recovery-normal: the next open truncates the torn bytes.
        report["wal"]["torn_bytes"] = len(data) - scanner.end
    return None


def verify_store(directory: str) -> Dict[str, Any]:
    """Re-checksum one store offline; returns a JSON-ready report.

    ``report["ok"]`` is the verdict; on failure ``report["failure"]``
    names the first file that failed and why.  The store is never
    modified (torn WAL tails are reported, not truncated).
    """
    root = pathlib.Path(directory)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(
            f"no store at {root} (missing {MANIFEST_NAME})",
            directory=str(root),
        )
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except (OSError, ValueError) as exc:
        raise SnapshotMismatch(
            f"unreadable manifest {manifest_path}: {exc}",
            directory=str(root),
        ) from exc
    version = manifest.get("format")
    report: Dict[str, Any] = {
        "directory": str(root),
        "ok": True,
        "checked": [],
    }
    checked: List[Dict[str, Any]] = report["checked"]
    if version == 1:
        report["engine"] = "disk"
        for entry in manifest.get("segments", []):
            name = entry.get("name", "?")
            error = _verify_disk_segment(root, entry)
            if error is not None:
                return _failure(report, name, error)
            checked.append({"file": name, "kind": "segment"})
    elif version == 2:
        report["engine"] = "paged"
        for entry in manifest.get("runs", []):
            name = entry.get("file", "?")
            error = _verify_paged_file(root, name, "run")
            if error is not None:
                return _failure(report, name, error)
            checked.append({"file": name, "kind": "run"})
        for entry in manifest.get("term_banks", []):
            name = entry.get("file", "?")
            error = _verify_paged_file(root, name, "bank")
            if error is not None:
                return _failure(report, name, error)
            checked.append({"file": name, "kind": "term_bank"})
    else:
        raise SnapshotMismatch(
            f"manifest {manifest_path} has unknown format {version!r}",
            directory=str(root),
        )
    wal_path = root / WAL_NAME
    error = _verify_wal(wal_path, report)
    if error is not None:
        return _failure(report, wal_path.name, error)
    if os.path.exists(wal_path):
        checked.append({"file": wal_path.name, "kind": "wal"})
    return report
