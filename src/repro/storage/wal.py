"""The write-ahead log: buffered appends, group-commit fsync batching.

Mutations append framed records (:mod:`repro.storage.records`) to an
in-memory buffer; ``commit()`` — called once per graph-level mutation
— writes the buffer to the log file in a single syscall and flushes it
to the OS, then applies the *sync policy*:

* ``always`` — ``fsync`` on every commit (each mutation is durable
  against machine crash before the call returns);
* ``batch`` — group commit: ``fsync`` once every ``fsync_batch``
  commits (bounded loss window, a fraction of the fsync cost);
* ``none`` — never ``fsync`` explicitly (durable against process
  crash via the OS page cache, not against power loss).

``benchmarks/bench_storage.py`` (E19) measures exactly these three
points.  Recovery tolerates a torn final record regardless of policy —
see :meth:`repro.storage.disk.DiskBackend._replay_wal`.
"""

from __future__ import annotations

import os
from typing import BinaryIO, Optional

from repro.observability import get_registry
from repro.storage.records import encode_record

SYNC_MODES = ("always", "batch", "none")


class WALWriter:
    """Append side of one store's write-ahead log."""

    def __init__(
        self,
        path: str,
        sync: str = "batch",
        fsync_batch: int = 64,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ValueError(
                f"sync must be one of {SYNC_MODES}, got {sync!r}"
            )
        if fsync_batch < 1:
            raise ValueError(f"fsync_batch must be >= 1, got {fsync_batch}")
        self.path = path
        self.sync_mode = sync
        self.fsync_batch = fsync_batch
        self._file: Optional[BinaryIO] = open(path, "ab")
        self._buffer = bytearray()
        self._buffered_records = 0
        self._commits_since_fsync = 0
        #: Cumulative counters (also published as metrics).
        self.records_written = 0
        self.bytes_written = 0
        self.commits = 0
        self.fsyncs = 0

    # -- appends -----------------------------------------------------------

    def append(self, payload: bytes) -> None:
        """Buffer one framed record for the next commit."""
        self._buffer += encode_record(payload)
        self._buffered_records += 1

    @property
    def has_pending(self) -> bool:
        return bool(self._buffer)

    def commit(self) -> None:
        """Write buffered records in one syscall; fsync per policy."""
        if self._file is None:
            raise ValueError(f"WAL {self.path} is closed")
        if self._buffer:
            self._file.write(self._buffer)
            self._file.flush()
            self.records_written += self._buffered_records
            self.bytes_written += len(self._buffer)
            records, nbytes = self._buffered_records, len(self._buffer)
            self._buffer.clear()
            self._buffered_records = 0
            registry = get_registry()
            registry.counter(
                "repro_storage_wal_records_total",
                "Records committed to any write-ahead log.",
            ).inc(records)
            registry.counter(
                "repro_storage_wal_bytes_total",
                "Bytes committed to any write-ahead log.",
            ).inc(nbytes)
        self.commits += 1
        self._commits_since_fsync += 1
        if self.sync_mode == "always" or (
            self.sync_mode == "batch"
            and self._commits_since_fsync >= self.fsync_batch
        ):
            self._fsync()

    def _fsync(self) -> None:
        assert self._file is not None
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        self._commits_since_fsync = 0
        get_registry().counter(
            "repro_storage_wal_fsyncs_total",
            "fsync() calls issued by any write-ahead log.",
        ).inc()

    def flush(self) -> None:
        """Write and fsync everything buffered, regardless of policy."""
        if self._file is None:
            return
        if self._buffer:
            self._file.write(self._buffer)
            self.records_written += self._buffered_records
            self.bytes_written += len(self._buffer)
            self._buffer.clear()
            self._buffered_records = 0
        self._file.flush()
        if self.sync_mode != "none":
            self._fsync()

    # -- lifecycle ---------------------------------------------------------

    def size(self) -> int:
        """Bytes currently in the log file (excludes the buffer)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def reset(self) -> None:
        """Discard the log's contents (post-compaction truncate)."""
        if self._file is None:
            raise ValueError(f"WAL {self.path} is closed")
        self._buffer.clear()
        self._buffered_records = 0
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        if self.sync_mode != "none":
            self._fsync()

    def close(self) -> None:
        """Flush, fsync (unless ``none``) and close the file handle."""
        if self._file is None:
            return
        self.flush()
        self._file.close()
        self._file = None

    @property
    def closed(self) -> bool:
        return self._file is None
