"""Incremental re-enactment and streaming quality views.

The paper treats a quality view as a one-shot compilation, but quality
is *evolving*: evidence values drift, new items arrive, users tighten
their acceptability thresholds between executions (Sec. 5.1's editable
action conditions).  This package adds a second execution mode next to
batch enactment:

- :mod:`repro.stream.delta` — the :class:`Delta` change model (new
  items, updated/retracted evidence, changed action thresholds) with a
  canonical fingerprint, plus the :class:`EvidenceTable` feed that
  backs delta-driven annotation functions.
- :mod:`repro.stream.incremental` — the :class:`IncrementalEnactor`:
  dependency analysis over the compiler's typed IR maps each delta to
  the affected processors/items, re-running only those with the
  annotation repository as the memo table.  Full recompute stays
  available as the differential oracle; results are byte-equal.
- :mod:`repro.stream.windows` — tumbling/sliding windows and
  EWMA/CUSUM drift detectors over the stream's quality signal.
- :mod:`repro.stream.source` — evidence-feed sources (in-memory queue,
  JSON-lines tail) yielding sequenced :class:`StreamRecord`\\ s.
- :mod:`repro.stream.engine` — the :class:`StreamEngine` loop:
  source -> incremental apply -> windows/drift -> event log, with the
  watermark persisted through :mod:`repro.storage` cursors so a
  restarted stream resumes without reprocessing.
- :mod:`repro.stream.scenario` — a feed-backed proteomics deployment
  and a seeded synthetic delta generator for the CLI, tests, and
  benchmark E20.
"""

from repro.stream.delta import Delta, EvidenceTable, delta_from_document, delta_to_document
from repro.stream.engine import StreamEngine, StreamStats, StepResult
from repro.stream.incremental import (
    IncrementalEnactor,
    IncrementalOutcome,
    IncrementalReport,
    StreamError,
)
from repro.stream.source import JsonLinesSource, QueueSource, StreamRecord
from repro.stream.windows import (
    CusumDetector,
    DriftEvent,
    EwmaDetector,
    RollingWindows,
    WindowResult,
)

__all__ = [
    "Delta",
    "EvidenceTable",
    "delta_from_document",
    "delta_to_document",
    "IncrementalEnactor",
    "IncrementalOutcome",
    "IncrementalReport",
    "StreamError",
    "StreamEngine",
    "StreamStats",
    "StepResult",
    "StreamRecord",
    "QueueSource",
    "JsonLinesSource",
    "RollingWindows",
    "WindowResult",
    "EwmaDetector",
    "CusumDetector",
    "DriftEvent",
]
