"""The delta model: what changed since the last enactment.

A :class:`Delta` describes one batch of change against a quality view's
input: evidence upserts (which also introduce new items), evidence
retractions, and edited action thresholds (the paper's Sec. 5.1
lifecycle of "repeatedly executing the view, possibly editing action
conditions in between").  Deltas are value objects with a canonical
JSON document form and a stable fingerprint, so they can travel over
the wire (``POST /views/{name}/deltas``), sit in JSON-lines feed files,
and be deduplicated.

The :class:`EvidenceTable` is the feed-side source of truth that backs
a delta-driven annotation function: annotators recompute evidence from
*their* source, so an upsert's values take effect by being applied to
the table the annotation function reads.  Deployments whose annotators
read a different source (e.g. the live Imprint result set) treat upsert
values as invalidation hints: the affected items are re-annotated from
that source instead.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.annotation.functions import CallableAnnotationFunction
from repro.rdf import URIRef


def _canonical(value: Any) -> Any:
    """A JSON-stable stand-in for an evidence value."""

    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class Delta:
    """One batch of change: evidence upserts, retractions, thresholds.

    - ``upserts`` maps item -> {evidence_type: value}.  An item the
      enactor has never seen is a *new item*; an already-tracked item
      becomes *dirty* in the listed evidence columns.
    - ``retractions`` lists ``(item, evidence_type)`` pairs; an
      evidence type of ``None`` retracts *all* evidence of the item.
      Items themselves are never removed from the data set — a fully
      retracted item simply carries no evidence, exactly as an unknown
      item does in batch enactment.
    - ``thresholds`` maps a filter action's name to its new condition
      text (the user tightening or relaxing acceptability).
    """

    upserts: Mapping[URIRef, Mapping[URIRef, Any]] = field(default_factory=dict)
    retractions: Sequence[Tuple[URIRef, Optional[URIRef]]] = field(
        default_factory=tuple
    )
    thresholds: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "upserts",
            {
                URIRef(item): {URIRef(et): v for et, v in dict(values).items()}
                for item, values in dict(self.upserts).items()
            },
        )
        object.__setattr__(
            self,
            "retractions",
            tuple(
                (URIRef(item), None if etype is None else URIRef(etype))
                for item, etype in self.retractions
            ),
        )
        object.__setattr__(self, "thresholds", dict(self.thresholds))

    # -- shape ---------------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the delta carries no change at all."""

        return not (self.upserts or self.retractions or self.thresholds)

    def touched_items(self) -> List[URIRef]:
        """The items this delta mentions, first mention first."""

        seen: Dict[URIRef, None] = {}
        for item in self.upserts:
            seen.setdefault(item, None)
        for item, _etype in self.retractions:
            seen.setdefault(item, None)
        return list(seen)

    def size(self) -> int:
        """Number of changed cells: evidence writes + retractions + thresholds."""

        return (
            sum(len(values) for values in self.upserts.values())
            + len(self.retractions)
            + len(self.thresholds)
        )

    # -- canonical form ------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The delta as a JSON-friendly document (see ``from_document``)."""

        return delta_to_document(self)

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "Delta":
        """Parse a document produced by :func:`delta_to_document`."""

        return delta_from_document(document)

    def fingerprint(self) -> str:
        """A canonical sha256 over the delta's sorted document form."""

        payload = json.dumps(
            self.to_document(), sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def delta_to_document(delta: Delta) -> Dict[str, Any]:
    """Encode a delta as a plain-JSON document (string URIs)."""

    return {
        "upserts": {
            str(item): {str(et): _canonical(v) for et, v in values.items()}
            for item, values in delta.upserts.items()
        },
        "retractions": [
            [str(item), None if etype is None else str(etype)]
            for item, etype in delta.retractions
        ],
        "thresholds": dict(delta.thresholds),
    }


def delta_from_document(document: Mapping[str, Any]) -> Delta:
    """Decode a delta from its document form; raises ``ValueError``."""

    if not isinstance(document, Mapping):
        raise ValueError("delta document must be a JSON object")
    upserts = document.get("upserts")
    upserts = {} if upserts is None else upserts
    retractions = document.get("retractions")
    retractions = [] if retractions is None else retractions
    thresholds = document.get("thresholds")
    thresholds = {} if thresholds is None else thresholds
    if not isinstance(upserts, Mapping):
        raise ValueError("delta 'upserts' must be an object")
    if not isinstance(retractions, (list, tuple)):
        raise ValueError("delta 'retractions' must be a list")
    if not isinstance(thresholds, Mapping):
        raise ValueError("delta 'thresholds' must be an object")
    parsed_retractions: List[Tuple[URIRef, Optional[URIRef]]] = []
    for entry in retractions:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise ValueError("each retraction must be an [item, evidence] pair")
        item, etype = entry
        parsed_retractions.append(
            (URIRef(item), None if etype is None else URIRef(etype))
        )
    for values in upserts.values():
        if not isinstance(values, Mapping):
            raise ValueError("each upsert must map evidence types to values")
    return Delta(
        upserts={
            URIRef(item): {URIRef(et): v for et, v in values.items()}
            for item, values in upserts.items()
        },
        retractions=parsed_retractions,
        thresholds={str(k): str(v) for k, v in thresholds.items()},
    )


class EvidenceTable:
    """A thread-safe item -> {evidence_type: value} feed table.

    This is the mutable source annotators read in streaming scenarios:
    applying a delta edits the table, after which re-annotation of the
    touched items observes the new values.
    """

    def __init__(
        self,
        initial: Optional[Mapping[URIRef, Mapping[URIRef, Any]]] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._rows: Dict[URIRef, Dict[URIRef, Any]] = {
            URIRef(item): {URIRef(et): v for et, v in dict(values).items()}
            for item, values in dict(initial or {}).items()
        }

    def set(self, item: URIRef, evidence_type: URIRef, value: Any) -> None:
        """Set one evidence cell."""

        with self._lock:
            self._rows.setdefault(URIRef(item), {})[URIRef(evidence_type)] = value

    def get(self, item: URIRef) -> Dict[URIRef, Any]:
        """The item's evidence row (a copy; empty for unknown items)."""

        with self._lock:
            return dict(self._rows.get(URIRef(item), {}))

    def items(self) -> List[URIRef]:
        """The items with a row, insertion order."""

        with self._lock:
            return list(self._rows)

    def apply(self, delta: Delta) -> None:
        """Apply a delta's evidence changes to the table."""

        with self._lock:
            for item, values in delta.upserts.items():
                self._rows.setdefault(item, {}).update(values)
            for item, etype in delta.retractions:
                row = self._rows.get(item)
                if row is None:
                    continue
                if etype is None:
                    row.clear()
                else:
                    row.pop(etype, None)

    def annotation_function(
        self, function_class: URIRef, provides: Iterable[URIRef]
    ) -> CallableAnnotationFunction:
        """An annotation function reading evidence from this table."""

        def read(item: URIRef, _context: Optional[Mapping[str, Any]]) -> Dict[URIRef, Any]:
            return self.get(item)

        return CallableAnnotationFunction(function_class, provides, read)
