"""The streaming loop: source -> incremental apply -> windows -> drift.

The engine pulls sequenced records from a source, absorbs each delta
through the :class:`~repro.stream.incremental.IncrementalEnactor`,
reduces the refreshed result to one scalar quality signal (default:
the surviving fraction), feeds windows and drift detectors, and raises
``stream.drift`` / ``stream.window`` events through the observability
event log.

Resume semantics: after every processed record the engine persists its
watermark (the record's ``seq``) through a
:class:`repro.storage.cursors.CursorFile`.  On construction the
persisted watermark is reloaded, and any record with ``seq`` at or
below it is skipped *before* touching the detectors or emitting
events — so a killed-and-restarted stream neither reprocesses deltas
nor emits duplicate drift events.  When the enactor is coupled to an
in-memory evidence feed, skipped records are still *replayed into the
feed* (cheap dict writes, no enactment), and the first live record is
preceded by one silent bootstrap delta that re-introduces the feed's
items — so the tracked data set and evidence state recover fully at
the cost of a single batch re-annotation instead of one enactment per
skipped record.  Detector state restarts from scratch (deterministic
warmup), never re-announcing drift the previous run already raised.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.results import QualityViewResult
from repro.observability import get_event_log, get_registry
from repro.storage.cursors import CursorFile
from repro.stream.delta import Delta
from repro.stream.incremental import IncrementalEnactor, IncrementalOutcome
from repro.stream.source import StreamRecord
from repro.stream.windows import DriftEvent, RollingWindows, WindowResult


def surviving_fraction(result: QualityViewResult) -> float:
    """The default quality signal: share of items the view accepts."""

    if not result.items:
        return 0.0
    return len(result.surviving()) / len(result.items)


@dataclass
class StepResult:
    """Everything one processed record produced."""

    record: StreamRecord
    outcome: IncrementalOutcome
    signal: float
    closed_windows: List[WindowResult] = field(default_factory=list)
    drift_events: List[DriftEvent] = field(default_factory=list)


@dataclass
class StreamStats:
    """A run's totals (one ``run`` call)."""

    processed: int = 0
    skipped: int = 0
    replayed: int = 0
    bootstrapped_items: int = 0
    drift_events: int = 0
    windows_closed: int = 0
    watermark: int = 0
    last_signal: Optional[float] = None


class StreamEngine:
    """Drives one incremental enactor from a record source."""

    def __init__(
        self,
        enactor: IncrementalEnactor,
        signal: Callable[[QualityViewResult], float] = surviving_fraction,
        windows: Optional[RollingWindows] = None,
        detectors: Sequence[Any] = (),
        cursor: Optional[CursorFile] = None,
        name: str = "stream",
        replay_feed: bool = True,
    ) -> None:
        self.enactor = enactor
        self.signal = signal
        self.windows = windows
        self.detectors = list(detectors)
        self.cursor = cursor
        self.name = name
        self.replay_feed = replay_feed
        self.watermark = 0
        self.resumed = False
        self._pending_bootstrap = False
        self._replayed_thresholds: Dict[str, str] = {}
        if cursor is not None:
            persisted = cursor.load()
            if persisted is not None:
                self.watermark = int(persisted.get("seq", 0))
                self.resumed = self.watermark > 0

    # -- checkpointing -------------------------------------------------------

    def _checkpoint(self, stats: StreamStats) -> None:
        if self.cursor is None:
            return
        self.cursor.save(
            {
                "seq": self.watermark,
                "view": self.enactor.view.name,
                "stream": self.name,
                "updated": time.time(),
            }
        )

    # -- one record ----------------------------------------------------------

    def process(self, record: StreamRecord, stats: StreamStats) -> Optional[StepResult]:
        """Process one record; ``None`` when the watermark skips it."""

        view = self.enactor.view.name
        registry = get_registry()
        if record.seq <= self.watermark:
            stats.skipped += 1
            if self.replay_feed and self.enactor.feed is not None:
                # Rebuild source state without enacting: feed writes are
                # cheap; one bootstrap delta re-annotates later.
                self.enactor.feed.apply(record.delta)
                self._replayed_thresholds.update(record.delta.thresholds)
                self._pending_bootstrap = True
                stats.replayed += 1
            registry.counter(
                "repro_stream_records_total",
                "Stream records seen, by disposition.",
                labels=("view", "disposition"),
            ).labels(view=view, disposition="skipped").inc()
            return None
        if self._pending_bootstrap:
            bootstrap = Delta(
                upserts={item: {} for item in self.enactor.feed.items()},
                thresholds=dict(self._replayed_thresholds),
            )
            self._pending_bootstrap = False
            self._replayed_thresholds = {}
            if not bootstrap.is_empty():
                # Silent recovery: no signal, no windows, no drift.
                outcome = self.enactor.apply(bootstrap)
                stats.bootstrapped_items = outcome.report.items_total
        outcome = self.enactor.apply(record.delta)
        value = self.signal(outcome.result)
        step = StepResult(record=record, outcome=outcome, signal=value)
        log = get_event_log()
        if self.windows is not None:
            step.closed_windows = self.windows.add(record.timestamp, value)
            for window in step.closed_windows:
                log.emit(
                    "stream.window",
                    stream=self.name,
                    view=view,
                    **window.to_document(),
                )
        for detector in self.detectors:
            event = detector.update(value)
            if event is not None:
                step.drift_events.append(event)
                log.emit(
                    "stream.drift",
                    stream=self.name,
                    view=view,
                    seq=record.seq,
                    **event.to_document(),
                )
                registry.counter(
                    "repro_stream_drift_events_total",
                    "Drift events raised by stream detectors.",
                    labels=("view", "detector"),
                ).labels(view=view, detector=event.detector).inc()
        registry.counter(
            "repro_stream_records_total",
            "Stream records seen, by disposition.",
            labels=("view", "disposition"),
        ).labels(view=view, disposition="processed").inc()
        self.watermark = record.seq
        stats.processed += 1
        stats.drift_events += len(step.drift_events)
        stats.windows_closed += len(step.closed_windows)
        stats.watermark = self.watermark
        stats.last_signal = value
        self._checkpoint(stats)
        return step

    # -- the loop ------------------------------------------------------------

    def run(
        self,
        source: Any,
        max_records: Optional[int] = None,
        on_step: Optional[Callable[[StepResult], None]] = None,
    ) -> StreamStats:
        """Drain a source (its ``records()`` iterator) through the engine."""

        stats = StreamStats(watermark=self.watermark)
        for record in source.records():
            step = self.process(record, stats)
            if step is not None and on_step is not None:
                on_step(step)
            if max_records is not None and stats.processed >= max_records:
                break
        return stats
