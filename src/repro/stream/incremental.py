"""Incremental re-enactment: re-run only what a delta touches.

The enactor keeps three pieces of memo state per view, all derived from
the compiler's typed IR (:func:`repro.qv.ir.lower_view`):

- the tracked data set (items only ever accumulate; a fully retracted
  item carries no evidence, exactly like an unknown item in batch
  enactment),
- the evidence memo ``item -> {evidence_type: value}`` mirroring what
  the single DataEnrichment step would read from the annotation
  repositories, and
- the tag memo ``assertion -> item -> {tag_name: TagValue}`` holding
  each QA's last verdict per item.

Applying a :class:`~repro.stream.delta.Delta` re-fires the *compiled
processor classes themselves* (``AnnotatorProcessor``,
``AssertionProcessor``, ``ActionProcessor`` from
:mod:`repro.qv.compiler`) over affected subsets, so invocation
semantics are byte-identical to batch enactment by construction:

1. every touched item is re-annotated (its repository rows are
   retracted first — the memo-ownership invariant: a store written by
   the view's annotators is owned by them, per item),
2. the evidence memo is refreshed for touched items through the same
   ``lookup_batch`` reads the DataEnrichment step performs, and the
   *observed* evidence diff decides which assertions are affected,
3. item-local QA services (``QualityAssertionService.item_local``, the
   same contract the filter-pushdown pass relies on) re-run over
   affected items only; collection-scoped QAs (e.g. the score
   classifier, whose bands depend on the whole data set) re-run over
   everything whenever any read column moved,
4. consolidation is assembled from the memos (provably the same
   item/tag ordering as ``ConsolidateProcessor``'s map merge), and the
   actions re-fire over the full set — threshold deltas swap the
   filter condition in the view spec (and invalidate the compiled
   workflow) before rebuilding the action processor.

``full_recompute()`` is the differential oracle: it retracts the
annotator-owned rows for every tracked item and runs the view's normal
batch path over the same data set.  ``apply`` results must serialize
byte-equal to it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.annotation.map import AnnotationMap, TagValue
from repro.annotation.store import AnnotationStore
from repro.core.errors import QuratorError
from repro.core.quality_view import QualityView
from repro.core.results import QualityViewResult
from repro.observability import get_registry
from repro.qv.compiler import (
    ActionProcessor,
    AnnotatorProcessor,
    AssertionProcessor,
    sanitize,
)
from repro.qv.ir import IRModule, lower_view
from repro.qv.spec import ActionSpec
from repro.rdf import URIRef
from repro.stream.delta import Delta, EvidenceTable


class StreamError(QuratorError):
    """A delta could not be applied to the incremental enactor."""


@dataclass
class IncrementalReport:
    """What one ``apply`` actually did, for cost accounting.

    ``memo_hits`` / ``memo_misses`` count per-(assertion, item) verdict
    reuse: a hit is a tag served from the memo table, a miss is a tag
    recomputed by a QA service.  ``reannotated_items`` is the number of
    items whose evidence was recomputed and re-read.
    """

    delta_fingerprint: str
    delta_size: int
    new_items: int
    dirty_items: int
    items_total: int
    reannotated_items: int
    annotators_fired: int
    assertions_fired: List[str] = field(default_factory=list)
    assertions_skipped: List[str] = field(default_factory=list)
    actions_rebuilt: List[str] = field(default_factory=list)
    qa_item_evaluations: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    seconds: float = 0.0

    def to_document(self) -> Dict[str, Any]:
        """The report as a JSON-friendly document."""

        return {
            "delta_fingerprint": self.delta_fingerprint,
            "delta_size": self.delta_size,
            "new_items": self.new_items,
            "dirty_items": self.dirty_items,
            "items_total": self.items_total,
            "reannotated_items": self.reannotated_items,
            "annotators_fired": self.annotators_fired,
            "assertions_fired": list(self.assertions_fired),
            "assertions_skipped": list(self.assertions_skipped),
            "actions_rebuilt": list(self.actions_rebuilt),
            "qa_item_evaluations": self.qa_item_evaluations,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "seconds": self.seconds,
        }


@dataclass
class IncrementalOutcome:
    """An applied delta: the refreshed view result plus the cost report."""

    result: QualityViewResult
    report: IncrementalReport


class IncrementalEnactor:
    """Delta-driven re-enactment of one quality view.

    ``feed`` optionally couples the enactor to the
    :class:`~repro.stream.delta.EvidenceTable` its annotators read;
    delta evidence is then written to the table before re-annotation
    (``apply_feed=False`` leaves feed maintenance to the caller).
    Deployments whose annotators read another source treat upsert
    values as invalidation hints — the items are re-annotated from that
    source.
    """

    def __init__(
        self,
        view: QualityView,
        feed: Optional[EvidenceTable] = None,
        apply_feed: bool = True,
    ) -> None:
        self.view = view
        self.framework = view.framework
        self.feed = feed
        self.apply_feed = apply_feed
        self._lock = threading.RLock()
        self.ir: IRModule = lower_view(view.spec, self.framework.compiler)
        self._build_processors()
        # Memo state.  Items only accumulate; order is arrival order and
        # doubles as the dataSet order handed to the oracle.
        self._items: List[URIRef] = []
        self._evidence: Dict[URIRef, Dict[URIRef, Any]] = {}
        self._tags: Dict[str, Dict[URIRef, Dict[str, TagValue]]] = {
            ira.name: {} for ira in self.ir.assertions()
        }
        self._deltas_applied = 0

    # -- construction --------------------------------------------------------

    def _build_processors(self) -> None:
        annotators = [
            AnnotatorProcessor(
                sanitize(ann.name),
                ann.service,
                ann.store,
                ann.evidence_types,
                ann.data_class,
            )
            for ann in self.ir.annotators
        ]
        # The serial enactor fires ready processors in sorted-name order;
        # annotators are all roots, so match that order for store writes.
        self._annotators = sorted(annotators, key=lambda proc: proc.name)
        self._columns: List[Tuple[URIRef, AnnotationStore]] = list(
            self.ir.enrichment.columns.items()
        )
        self._assertions = [
            (ira, AssertionProcessor(sanitize(ira.name), ira.service, ira.config()))
            for ira in self.ir.assertions()
        ]
        self._action_order = [ira.spec.name for ira in self.ir.actions]
        self._action_procs: Dict[str, ActionProcessor] = {
            spec.name: self._make_action(spec)
            for spec in (ira.spec for ira in self.ir.actions)
        }

    def _make_action(self, spec: ActionSpec) -> ActionProcessor:
        return ActionProcessor(
            spec.name, spec, self.ir.variable_bindings, self.ir.namespaces
        )

    def _annotator_stores(self) -> List[AnnotationStore]:
        stores: List[AnnotationStore] = []
        for proc in self._annotators:
            if proc.store not in stores:
                stores.append(proc.store)
        return stores

    # -- state ---------------------------------------------------------------

    @property
    def items(self) -> List[URIRef]:
        """The tracked data set, arrival order."""

        with self._lock:
            return list(self._items)

    @property
    def deltas_applied(self) -> int:
        """How many deltas this enactor has absorbed."""

        with self._lock:
            return self._deltas_applied

    # -- threshold edits -----------------------------------------------------

    def _apply_thresholds(self, thresholds: Dict[str, str]) -> List[str]:
        rebuilt: List[str] = []
        for name, condition in thresholds.items():
            index = next(
                (
                    i
                    for i, spec in enumerate(self.view.spec.actions)
                    if spec.name == name
                ),
                None,
            )
            if index is None:
                raise StreamError(
                    f"threshold update targets unknown action {name!r}"
                )
            spec = self.view.spec.actions[index]
            if spec.kind != "filter":
                raise StreamError(
                    f"threshold updates only support filter actions; "
                    f"{name!r} is a {spec.kind}"
                )
            try:
                new_spec = replace(spec, condition=condition)
                self._action_procs[name] = self._make_action(new_spec)
            except (ValueError, QuratorError) as exc:
                raise StreamError(
                    f"invalid condition for action {name!r}: {exc}"
                ) from exc
            self.view.spec.actions[index] = new_spec
            rebuilt.append(name)
        if rebuilt:
            # The oracle compiles from the spec; drop the stale workflow.
            self.view.invalidate()
        return rebuilt

    # -- the delta path ------------------------------------------------------

    def apply(self, delta: Delta) -> IncrementalOutcome:
        """Absorb one delta and return the refreshed view result."""

        with self._lock:
            started = time.perf_counter()
            if self.feed is not None and self.apply_feed:
                self.feed.apply(delta)
            rebuilt = (
                self._apply_thresholds(dict(delta.thresholds))
                if delta.thresholds
                else []
            )

            touched = delta.touched_items()
            touched_set = set(touched)
            new_items = [item for item in touched if item not in self._evidence]
            new_set = set(new_items)
            dirty_existing = [item for item in self._items if item in touched_set]
            # Store writes happen in tracked order first, then arrivals.
            dirty = dirty_existing + new_items

            # 1. Retract the annotator-owned repository rows of every
            # touched item, then re-annotate from the source of truth.
            if dirty:
                for store in self._annotator_stores():
                    for item in dirty:
                        store.remove_annotations(item)
                for proc in self._annotators:
                    proc.fire({"dataSet": list(dirty)})

            # 2. Refresh the evidence memo through the same per-column
            # batch reads DataEnrichment performs; the *observed* diff
            # (not the declared delta) decides which QAs are affected.
            previous = {item: self._evidence.get(item, {}) for item in dirty}
            for item in dirty:
                self._evidence[item] = {}
            if dirty:
                by_store: Dict[AnnotationStore, List[URIRef]] = {}
                for evidence_type, store in self._columns:
                    by_store.setdefault(store, []).append(evidence_type)
                for store, evidence_types in by_store.items():
                    # Keyed per-item reads, not a column sweep: the
                    # refresh must cost O(|dirty|), not O(|store|).
                    wanted = set(evidence_types)
                    for item in dirty:
                        for evidence_type, value in store.lookup_all(item).items():
                            if evidence_type in wanted:
                                self._evidence[item][evidence_type] = value
            changed_columns: Dict[URIRef, Set[URIRef]] = {}
            for item in dirty_existing:
                before, after = previous[item], self._evidence[item]
                moved = {
                    etype
                    for etype in set(before) | set(after)
                    if before.get(etype) != after.get(etype)
                }
                if moved:
                    changed_columns[item] = moved
            self._items.extend(new_items)

            # 3. Rebuild the enriched map from the memo (pure dict work;
            # no repository reads for unchanged items).
            enriched = AnnotationMap(self._items)
            for item in self._items:
                for evidence_type, value in self._evidence[item].items():
                    enriched.set_evidence(item, evidence_type, value)

            # 4. Assertions: memo hits for unaffected items, subset
            # re-evaluation for item-local QAs, full re-evaluation for
            # collection-scoped QAs.
            report = IncrementalReport(
                delta_fingerprint=delta.fingerprint(),
                delta_size=delta.size(),
                new_items=len(new_items),
                dirty_items=len(dirty_existing),
                items_total=len(self._items),
                reannotated_items=len(dirty),
                annotators_fired=len(self._annotators) if dirty else 0,
                actions_rebuilt=rebuilt,
            )
            total = len(self._items)
            for ira, proc in self._assertions:
                reads = set(ira.variables.values())
                affected = [
                    item
                    for item in self._items
                    if item in new_set or (changed_columns.get(item, set()) & reads)
                ]
                memo = self._tags[ira.name]
                if not affected:
                    report.assertions_skipped.append(ira.name)
                    report.memo_hits += total
                    continue
                report.assertions_fired.append(ira.name)
                if ira.service.item_local:
                    fired = proc.fire(
                        {"dataSet": affected, "annotationMap": enriched}
                    )
                    result_map = fired["annotationMap"]
                    for item in affected:
                        memo[item] = dict(result_map.tags_for(item))
                    report.memo_hits += total - len(affected)
                    report.memo_misses += len(affected)
                    report.qa_item_evaluations += len(affected)
                else:
                    fired = proc.fire(
                        {"dataSet": list(self._items), "annotationMap": enriched}
                    )
                    result_map = fired["annotationMap"]
                    self._tags[ira.name] = {
                        item: dict(result_map.tags_for(item))
                        for item in self._items
                    }
                    report.memo_misses += total
                    report.qa_item_evaluations += total

            # 5. Consolidate by assembly: evidence order comes from the
            # enriched map, tags land assertion-major per item — the
            # exact ordering ConsolidateProcessor's map merge produces.
            merged = enriched.copy()
            for ira, _proc in self._assertions:
                memo = self._tags[ira.name]
                for item in self._items:
                    for tag_name, tag in (memo.get(item) or {}).items():
                        merged.set_tag(
                            item, tag_name, tag.value, tag.syn_type, tag.sem_type
                        )

            # 6. Actions always re-fire (they are cheap condition scans
            # and thresholds may have moved); package like the view does.
            result = QualityViewResult(
                view_name=self.view.name,
                items=list(self._items),
                annotation_map=merged,
            )
            for name in self._action_order:
                proc = self._action_procs[name]
                fired = proc.fire(
                    {"dataSet": list(self._items), "annotationMap": merged}
                )
                outcome = fired["outcome"]
                result.groups[proc.name] = {
                    group: list(outcome.items(group))
                    for group in proc.group_ports
                }

            self._deltas_applied += 1
            report.seconds = time.perf_counter() - started
            self._count(report)
            return IncrementalOutcome(result=result, report=report)

    def _count(self, report: IncrementalReport) -> None:
        registry = get_registry()
        view = self.view.name
        registry.counter(
            "repro_stream_deltas_total",
            "Deltas absorbed by incremental enactors.",
            labels=("view",),
        ).labels(view=view).inc()
        registry.counter(
            "repro_stream_memo_hits_total",
            "Per-(assertion, item) verdicts served from the memo table.",
            labels=("view",),
        ).labels(view=view).inc(report.memo_hits)
        registry.counter(
            "repro_stream_memo_misses_total",
            "Per-(assertion, item) verdicts recomputed by QA services.",
            labels=("view",),
        ).labels(view=view).inc(report.memo_misses)
        registry.counter(
            "repro_stream_reannotated_items_total",
            "Items whose evidence was recomputed for a delta.",
            labels=("view",),
        ).labels(view=view).inc(report.reannotated_items)
        registry.counter(
            "repro_stream_processors_fired_total",
            "Compiled processors re-fired by incremental applies.",
            labels=("view", "kind"),
        ).labels(view=view, kind="annotator").inc(report.annotators_fired)
        registry.counter(
            "repro_stream_processors_fired_total",
            "Compiled processors re-fired by incremental applies.",
            labels=("view", "kind"),
        ).labels(view=view, kind="assertion").inc(len(report.assertions_fired))
        registry.histogram(
            "repro_stream_apply_seconds",
            "Wall-clock seconds absorbing one delta.",
            labels=("view",),
        ).labels(view=view).observe(report.seconds)

    # -- the differential oracle ---------------------------------------------

    def full_recompute(self) -> QualityViewResult:
        """Batch-enact the tracked data set from scratch (the oracle).

        Retracts the annotator-owned repository rows for every tracked
        item first, so the batch path re-annotates from the same source
        of truth the incremental path reads.  The rewritten rows carry
        the current feed values, leaving the memo state valid — oracle
        runs may be interleaved with ``apply`` calls freely.
        """

        with self._lock:
            for store in self._annotator_stores():
                for item in self._items:
                    store.remove_annotations(item)
            return self.view.run(list(self._items), clear_cache=False)
