"""A feed-backed deployment for streaming demos, tests and benchmarks.

The batch proteomics scenario annotates from a live Imprint result set;
the streaming scenario replaces that source with an
:class:`~repro.stream.delta.EvidenceTable`, so deltas *are* the source
of truth: applying one changes what the annotator reads, and the
incremental enactor re-annotates exactly the touched items.  The view
itself is the paper's Sec. 5.1 example unchanged — same annotator name,
same three QAs (two item-local scores plus the collection-scoped
classifier), same filter action — which keeps the streaming path
exercising the identical compiled pipeline the batch tests verify.

``synthetic_records`` generates a seeded, deterministic feed: a
bootstrap delta introducing the initial items, then update batches
touching a fixed fraction of the data set, with an optional quality
regression after ``drift_after`` steps (evidence values degrade, the
surviving fraction drops, drift detectors fire).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.framework import QuratorFramework
from repro.core.ispider import DEFAULT_FILTER_CONDITION, example_quality_view_xml
from repro.core.quality_view import QualityView
from repro.qa.annotators import ImprintOutputAnnotator
from repro.rdf import Q, URIRef
from repro.stream.delta import Delta, EvidenceTable
from repro.stream.source import StreamRecord

#: The evidence columns the feed carries (the Imprint indicator set).
FEED_EVIDENCE = sorted(ImprintOutputAnnotator.provides, key=str)


def stream_item(index: int) -> URIRef:
    """A stable URI for the index-th synthetic stream item."""

    return URIRef(f"http://example.org/stream/hit-{index:04d}")


def random_row(rng: random.Random, quality: float = 1.0) -> Dict[URIRef, Any]:
    """One synthetic evidence row; ``quality < 1`` degrades the scores."""

    return {
        Q.Coverage: round(rng.uniform(0.05, 0.9) * quality, 4),
        Q.HitRatio: round(rng.uniform(0.1, 0.95) * quality, 4),
        Q.Masses: rng.randint(5, 40),
        Q.PeptidesCount: rng.randint(2, 25),
    }


@dataclass
class StreamScenario:
    """A framework + view whose annotator reads an evidence table."""

    framework: QuratorFramework
    view: QualityView
    table: EvidenceTable


def build_stream_scenario(
    filter_condition: str = DEFAULT_FILTER_CONDITION,
) -> StreamScenario:
    """Assemble the feed-backed Sec. 5.1 deployment."""

    framework = QuratorFramework()
    framework.register_standard_services()
    table = EvidenceTable()
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator",
        table.annotation_function(
            Q["Imprint-output-annotation"], ImprintOutputAnnotator.provides
        ),
    )
    view = framework.quality_view(example_quality_view_xml(filter_condition))
    return StreamScenario(framework=framework, view=view, table=table)


def synthetic_records(
    items: int = 40,
    steps: int = 20,
    delta_ratio: float = 0.1,
    seed: int = 7,
    drift_after: Optional[int] = None,
    drift_quality: float = 0.35,
    start_seq: int = 1,
) -> List[StreamRecord]:
    """A deterministic feed: bootstrap + ``steps`` update batches.

    Record ``start_seq`` introduces ``items`` items with full evidence
    rows; each later record re-draws the evidence of
    ``max(1, items * delta_ratio)`` round-robin items.  After
    ``drift_after`` update steps the drawn values degrade by
    ``drift_quality``, simulating an instrument drifting out of spec.
    """

    rng = random.Random(seed)
    universe = [stream_item(i) for i in range(items)]
    records = [
        StreamRecord(
            seq=start_seq,
            timestamp=float(start_seq),
            delta=Delta(upserts={item: random_row(rng) for item in universe}),
        )
    ]
    batch = max(1, int(items * delta_ratio))
    cursor = 0
    for step in range(1, steps + 1):
        quality = (
            drift_quality if drift_after is not None and step > drift_after else 1.0
        )
        touched = [
            universe[(cursor + offset) % items] for offset in range(batch)
        ]
        cursor = (cursor + batch) % items
        seq = start_seq + step
        records.append(
            StreamRecord(
                seq=seq,
                timestamp=float(seq),
                delta=Delta(
                    upserts={item: random_row(rng, quality) for item in touched}
                ),
            )
        )
    return records
