"""Evidence-feed sources: where deltas come from.

A source yields :class:`StreamRecord` values — a delta plus a
monotonically increasing sequence number and an event timestamp.  The
sequence number is the resume key: the engine persists the highest
processed ``seq`` as its watermark and skips anything at or below it
after a restart.

Two sources cover the common shapes:

- :class:`QueueSource` — an in-memory handoff for tests and embedded
  producers.
- :class:`JsonLinesSource` — a JSON-lines file of record documents
  (``{"seq": 3, "ts": 12.5, "delta": {...}}``), optionally tailed:
  with ``follow=True`` the source keeps polling the file for appended
  lines until stopped.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.stream.delta import Delta, delta_from_document, delta_to_document


@dataclass(frozen=True)
class StreamRecord:
    """One sequenced feed entry."""

    seq: int
    timestamp: float
    delta: Delta

    def to_document(self) -> Dict[str, Any]:
        """The record as a JSON-friendly document."""

        return {
            "seq": self.seq,
            "ts": self.timestamp,
            "delta": delta_to_document(self.delta),
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "StreamRecord":
        """Parse a document; raises ``ValueError`` on malformed input."""

        if not isinstance(document, Mapping):
            raise ValueError("stream record must be a JSON object")
        try:
            seq = int(document["seq"])
        except (KeyError, TypeError, ValueError):
            raise ValueError("stream record needs an integer 'seq'") from None
        timestamp = float(document.get("ts", seq))
        return cls(
            seq=seq,
            timestamp=timestamp,
            delta=delta_from_document(document.get("delta") or {}),
        )


class QueueSource:
    """An in-memory, blocking record source."""

    def __init__(self) -> None:
        self._queue: "queue.Queue[Optional[StreamRecord]]" = queue.Queue()
        self._closed = threading.Event()

    def put(self, record: StreamRecord) -> None:
        """Enqueue one record."""

        self._queue.put(record)

    def close(self) -> None:
        """Signal end of stream; pending records still drain."""

        self._closed.set()
        self._queue.put(None)

    def records(self) -> Iterator[StreamRecord]:
        """Yield records until the source is closed."""

        while True:
            record = self._queue.get()
            if record is None:
                if self._closed.is_set():
                    return
                continue
            yield record


class JsonLinesSource:
    """A JSON-lines file of stream-record documents.

    ``follow=True`` tails the file: after reaching the end the source
    sleeps ``poll`` seconds and retries, until ``stop`` (a
    ``threading.Event``) is set.  Blank lines are skipped; a malformed
    line raises ``ValueError`` naming the line number.
    """

    def __init__(
        self,
        path: Union[str, Path],
        follow: bool = False,
        poll: float = 0.05,
        stop: Optional[threading.Event] = None,
    ) -> None:
        self.path = Path(path)
        self.follow = follow
        self.poll = poll
        self.stop = stop or threading.Event()

    @staticmethod
    def write(path: Union[str, Path], records) -> int:
        """Write records to a JSON-lines feed file; returns the count."""

        path = Path(path)
        count = 0
        with path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(record.to_document(), sort_keys=True) + "\n"
                )
                count += 1
        return count

    def records(self) -> Iterator[StreamRecord]:
        """Yield records from the file (tailing it when ``follow``)."""

        lineno = 0
        with self.path.open("r", encoding="utf-8") as handle:
            while True:
                line = handle.readline()
                if not line:
                    if not self.follow or self.stop.is_set():
                        return
                    time.sleep(self.poll)
                    continue
                lineno += 1
                text = line.strip()
                if not text:
                    continue
                try:
                    document = json.loads(text)
                    record = StreamRecord.from_document(document)
                except ValueError as exc:
                    raise ValueError(
                        f"{self.path}:{lineno}: bad stream record: {exc}"
                    ) from None
                yield record
