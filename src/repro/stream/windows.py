"""Windowed aggregation and drift detection over the quality signal.

The stream engine reduces every applied delta to one scalar quality
signal (by default the surviving fraction of the data set — the share
of items the view's final action accepts).  This module maintains
rolling aggregates of that signal and watches it for drift:

- :class:`RollingWindows` assigns event-time samples to tumbling
  (``slide is None``) or sliding windows and closes a window once the
  watermark passes its end — closed windows are immutable
  :class:`WindowResult` values, the "rolling classification" record.
- :class:`EwmaDetector` tracks an exponentially weighted mean and
  variance and flags samples more than ``threshold`` sigma away
  (Shewhart-style EWMA control chart, as MSstatsQC applies to
  longitudinal quality monitoring).
- :class:`CusumDetector` accumulates two one-sided CUSUM statistics
  against a reference level and flags when either exceeds ``limit``.

Both detectors are deterministic, pure-python state machines: the same
sample sequence always yields the same drift events, which is what the
resume-without-duplicate-drift guarantee builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class WindowResult:
    """One closed window of the quality signal."""

    start: float
    end: float
    count: int
    mean: float
    minimum: float
    maximum: float

    def to_document(self) -> Dict[str, Any]:
        """The window as a JSON-friendly document."""

        return {
            "start": self.start,
            "end": self.end,
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


class RollingWindows:
    """Event-time tumbling/sliding windows over a scalar signal.

    ``size`` is the window length; ``slide`` the hop between window
    starts (``None`` or ``slide == size`` gives tumbling windows).  A
    window ``[start, start + size)`` closes when a sample's timestamp
    (the watermark — samples are assumed in order) reaches its end.
    """

    def __init__(self, size: float, slide: Optional[float] = None) -> None:
        if size <= 0:
            raise ValueError("window size must be positive")
        slide = size if slide is None else slide
        if slide <= 0 or slide > size:
            raise ValueError("slide must be in (0, size]")
        self.size = float(size)
        self.slide = float(slide)
        self._open: Dict[float, List[float]] = {}

    def _starts_for(self, timestamp: float) -> List[float]:
        # Window starts are the slide grid points whose window spans ts.
        last = math.floor(timestamp / self.slide) * self.slide
        starts = []
        start = last
        while start > timestamp - self.size:
            starts.append(start)
            start -= self.slide
        return sorted(starts)

    def _close_until(self, watermark: float) -> List[WindowResult]:
        closed = []
        for start in sorted(self._open):
            if start + self.size <= watermark:
                samples = self._open.pop(start)
                closed.append(self._result(start, samples))
        return closed

    def _result(self, start: float, samples: List[float]) -> WindowResult:
        return WindowResult(
            start=start,
            end=start + self.size,
            count=len(samples),
            mean=sum(samples) / len(samples),
            minimum=min(samples),
            maximum=max(samples),
        )

    def add(self, timestamp: float, value: float) -> List[WindowResult]:
        """Record a sample; returns any windows the watermark closed."""

        closed = self._close_until(float(timestamp))
        for start in self._starts_for(float(timestamp)):
            self._open.setdefault(start, []).append(float(value))
        return closed

    def flush(self) -> List[WindowResult]:
        """Close every open window (end of stream)."""

        closed = [
            self._result(start, samples)
            for start, samples in sorted(self._open.items())
        ]
        self._open.clear()
        return closed


@dataclass(frozen=True)
class DriftEvent:
    """A detector crossing: the quality signal moved too far."""

    detector: str
    kind: str  # "ewma" | "cusum"
    direction: str  # "up" | "down"
    value: float
    statistic: float
    threshold: float
    sample_index: int

    def to_document(self) -> Dict[str, Any]:
        """The event as JSON-friendly attributes."""

        return {
            "detector": self.detector,
            "kind": self.kind,
            "direction": self.direction,
            "value": self.value,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "sample_index": self.sample_index,
        }


class EwmaDetector:
    """EWMA control chart: flag samples far from the smoothed baseline.

    After ``warmup`` samples establish the baseline, a sample whose
    distance from the EWMA mean exceeds ``threshold`` times the EWMA
    standard deviation raises drift; the baseline then restarts from
    the new level so a sustained shift fires once, not continuously.
    """

    kind = "ewma"

    def __init__(
        self,
        name: str = "ewma",
        alpha: float = 0.3,
        threshold: float = 3.0,
        warmup: int = 5,
        min_sigma: float = 1e-6,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.name = name
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = max(1, int(warmup))
        self.min_sigma = min_sigma
        self._mean: Optional[float] = None
        self._var = 0.0
        self._count = 0
        self._index = -1

    def _reset(self, value: float) -> None:
        self._mean = value
        self._var = 0.0
        self._count = 1

    def update(self, value: float) -> Optional[DriftEvent]:
        """Feed one sample; returns a drift event on a crossing."""

        self._index += 1
        value = float(value)
        if self._mean is None:
            self._reset(value)
            return None
        deviation = value - self._mean
        sigma = max(math.sqrt(self._var), self.min_sigma)
        if self._count >= self.warmup and abs(deviation) > self.threshold * sigma:
            event = DriftEvent(
                detector=self.name,
                kind=self.kind,
                direction="up" if deviation > 0 else "down",
                value=value,
                statistic=abs(deviation) / sigma,
                threshold=self.threshold,
                sample_index=self._index,
            )
            self._reset(value)
            return event
        # Standard EWMA mean/variance recursion.
        self._var = (1 - self.alpha) * (self._var + self.alpha * deviation**2)
        self._mean += self.alpha * deviation
        self._count += 1
        return None


class CusumDetector:
    """Two-sided CUSUM: accumulate drift from a reference level.

    The reference is the mean of the first ``warmup`` samples (or a
    fixed ``target``).  Each side accumulates excursions beyond the
    ``slack`` dead band; crossing ``limit`` raises drift and resets
    both sides with the reference re-anchored at the current value.
    """

    kind = "cusum"

    def __init__(
        self,
        name: str = "cusum",
        slack: float = 0.02,
        limit: float = 0.1,
        warmup: int = 5,
        target: Optional[float] = None,
    ) -> None:
        self.name = name
        self.slack = slack
        self.limit = limit
        self.warmup = max(1, int(warmup))
        self._target = target
        self._baseline: List[float] = []
        self._high = 0.0
        self._low = 0.0
        self._index = -1

    def update(self, value: float) -> Optional[DriftEvent]:
        """Feed one sample; returns a drift event on a crossing."""

        self._index += 1
        value = float(value)
        if self._target is None:
            self._baseline.append(value)
            if len(self._baseline) < self.warmup:
                return None
            self._target = sum(self._baseline) / len(self._baseline)
            self._baseline = []
            return None
        self._high = max(0.0, self._high + value - self._target - self.slack)
        self._low = max(0.0, self._low + self._target - value - self.slack)
        if self._high > self.limit or self._low > self.limit:
            drifted_up = self._high > self.limit
            event = DriftEvent(
                detector=self.name,
                kind=self.kind,
                direction="up" if drifted_up else "down",
                value=value,
                statistic=self._high if drifted_up else self._low,
                threshold=self.limit,
                sample_index=self._index,
            )
            self._high = self._low = 0.0
            self._target = value
            return event
        return None
