"""A Taverna-like scientific-workflow environment (paper Sec. 6).

Reproduces the primitives the QV compiler targets: processors drawn
from an extensible collection, composed with *data links* (value flow
between ports) and *control links* ("a control link from processor A to
B means that B is started as soon as A completes"), enacted by an
engine that transfers data between ports, with implicit iteration over
list-valued inputs, a WSDL scavenger that turns deployed services into
processors, and a SCUFL-like XML serialisation.
"""

from repro.workflow.model import (
    ControlLink,
    DataLink,
    Port,
    Workflow,
    WorkflowError,
)
from repro.workflow.processors import (
    AdapterProcessor,
    NestedWorkflowProcessor,
    Processor,
    PythonProcessor,
    StringConstantProcessor,
    WSDLProcessor,
)
from repro.workflow.enactor import Enactor, EnactmentError
from repro.workflow.scavenger import Scavenger
from repro.workflow.trace import EnactmentTrace, TraceEvent

__all__ = [
    "AdapterProcessor",
    "ControlLink",
    "DataLink",
    "Enactor",
    "EnactmentError",
    "EnactmentTrace",
    "NestedWorkflowProcessor",
    "Port",
    "Processor",
    "PythonProcessor",
    "Scavenger",
    "StringConstantProcessor",
    "TraceEvent",
    "WSDLProcessor",
    "Workflow",
    "WorkflowError",
]
