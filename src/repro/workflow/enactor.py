"""The workflow enactment engine.

Fires processors in dependency order, transferring values along data
links and honouring control links, as in Taverna's enactment service.
Implicit iteration: when a depth-0 input port receives a list, the
processor fires once per element (cross product over all iterated
ports, Taverna's default strategy) and each output becomes a list.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.workflow.model import Workflow, WorkflowError
from repro.workflow.trace import EnactmentTrace


class EnactmentError(RuntimeError):
    """A processor failed during enactment."""

    def __init__(self, workflow: str, processor: str, cause: Exception) -> None:
        super().__init__(
            f"processor {processor!r} of workflow {workflow!r} failed: {cause}"
        )
        self.workflow = workflow
        self.processor = processor
        self.cause = cause


class Enactor:
    """Runs workflows; keeps the trace of its last enactment."""

    def __init__(self) -> None:
        self.last_trace: Optional[EnactmentTrace] = None

    def run(
        self, workflow: Workflow, inputs: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Enact a workflow over the given inputs; returns its outputs."""

        inputs = dict(inputs or {})
        missing = [name for name in workflow.inputs if name not in inputs]
        if missing:
            raise WorkflowError(
                f"workflow {workflow.name!r} is missing inputs {missing}"
            )
        workflow.validate()
        trace = EnactmentTrace(workflow.name)
        self.last_trace = trace
        # Values produced so far: (processor, port) -> value; workflow
        # inputs use an empty processor name.
        values: Dict[Tuple[str, str], Any] = {
            ("", name): value for name, value in inputs.items()
        }
        for name in workflow.topological_order():
            processor = workflow.processors[name]
            port_values: Dict[str, Any] = {}
            for link in workflow.incoming_links(name):
                key = (link.source.processor, link.source.port)
                if key not in values:
                    raise WorkflowError(
                        f"data link {link.source} -> {link.sink} reads a value "
                        f"that was never produced"
                    )
                port_values[link.sink.port] = values[key]
            event = trace.start(name)
            try:
                outputs, iterations = self._fire(processor, port_values)
            except Exception as exc:
                trace.fail(event, str(exc))
                raise EnactmentError(workflow.name, name, exc) from exc
            trace.complete(event, iterations)
            for port, value in outputs.items():
                values[(name, port)] = value
        results: Dict[str, Any] = {}
        for out_name in workflow.outputs:
            for link in workflow.data_links:
                if not link.sink.processor and link.sink.port == out_name:
                    key = (link.source.processor, link.source.port)
                    if key not in values:
                        raise WorkflowError(
                            f"workflow output {out_name!r} reads a value "
                            f"that was never produced"
                        )
                    results[out_name] = values[key]
        return results

    def _fire(
        self, processor, port_values: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], int]:
        iterated = sorted(
            port
            for port, value in port_values.items()
            if processor.input_ports.get(port, 1) == 0 and isinstance(value, list)
        )
        if not iterated:
            return self._fire_once(processor, dict(port_values)), 1
        # Implicit iteration over list-valued scalar ports, combined by
        # the processor's iteration strategy: 'cross' (Taverna's
        # default, the cartesian product) or 'dot' (element-wise zip of
        # equal-length lists).
        strategy = getattr(processor, "iteration_strategy", "cross")
        axes = [port_values[port] for port in iterated]
        if strategy == "dot":
            lengths = {len(axis) for axis in axes}
            if len(lengths) > 1:
                raise ValueError(
                    f"processor {processor.name!r} uses the dot iteration "
                    f"strategy but its iterated inputs have differing "
                    f"lengths {sorted(len(a) for a in axes)}"
                )
            combinations = list(zip(*axes))
        elif strategy == "cross":
            combinations = list(itertools.product(*axes))
        else:
            raise ValueError(
                f"processor {processor.name!r} has unknown iteration "
                f"strategy {strategy!r}; valid: 'cross', 'dot'"
            )
        collected: Dict[str, List[Any]] = {
            port: [] for port in processor.output_ports
        }
        count = 0
        for combination in combinations:
            call_inputs = dict(port_values)
            for port, value in zip(iterated, combination):
                call_inputs[port] = value
            outputs = self._fire_once(processor, call_inputs)
            count += 1
            for port in processor.output_ports:
                collected[port].append(outputs.get(port))
        return dict(collected), count

    def _fire_once(self, processor, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """One processor invocation with Taverna-style fault tolerance.

        A processor may declare ``retries`` (re-invocations after a
        failure) and an ``alternate`` processor tried when every retry
        is exhausted — mirroring Taverna's retry/alternate-processor
        configuration.
        """
        retries = getattr(processor, "retries", 0)
        attempts = retries + 1
        last_error: Optional[Exception] = None
        for _ in range(attempts):
            try:
                return processor.fire(inputs)
            except Exception as exc:  # noqa: BLE001 - fault boundary
                last_error = exc
        alternate = getattr(processor, "alternate", None)
        if alternate is not None:
            return self._fire_once(alternate, inputs)
        assert last_error is not None
        raise last_error
