"""The workflow enactment engine.

Fires processors in dependency order, transferring values along data
links and honouring control links, as in Taverna's enactment service.
Implicit iteration: when a depth-0 input port receives a list, the
processor fires once per element (cross product over all iterated
ports, Taverna's default strategy) and each output becomes a list.

The firing semantics (implicit iteration, retry/alternate fault
tolerance, ``on_failure`` degradation) live in the module-level
:func:`fire_processor` / :func:`fire_once` functions so that every
enactment strategy — the serial :class:`Enactor` here and the
wavefront :class:`repro.runtime.parallel.ParallelEnactor` — shares one
implementation and therefore one behaviour.

Degradation: a processor whose ``on_failure`` policy is ``"skip"`` or
``"default_annotation"`` absorbs an otherwise-fatal firing failure
into its :meth:`~repro.workflow.processors.Processor.degraded`
fallback outputs; the enactment continues and the trace records the
event with status ``"degraded"`` instead of ``"failed"``.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.observability import get_registry, start_span
from repro.workflow.model import Workflow, WorkflowError
from repro.workflow.processors import ON_FAILURE_FAIL
from repro.workflow.trace import EnactmentTrace, TraceEvent

#: A mapper applying one firing callable over per-iteration inputs,
#: preserving order.  ``None`` means a plain serial loop.
IterationMapper = Callable[[Callable[[Dict[str, Any]], Dict[str, Any]], List[Dict[str, Any]]], List[Dict[str, Any]]]


class EnactmentError(RuntimeError):
    """A processor failed during enactment."""

    def __init__(self, workflow: str, processor: str, cause: Exception) -> None:
        super().__init__(
            f"processor {processor!r} of workflow {workflow!r} failed: {cause}"
        )
        self.workflow = workflow
        self.processor = processor
        self.cause = cause


@dataclass
class EnactmentResult:
    """One enactment's outputs together with its own trace.

    Unlike ``Enactor.last_trace`` (kept for backward compatibility),
    the trace here belongs unambiguously to this run, so concurrent
    callers can never observe another enactment's record.
    """

    outputs: Dict[str, Any]
    trace: EnactmentTrace


#: Enactment-strategy labels published on the workflow metrics.
KIND_SERIAL = "serial"
KIND_WAVEFRONT = "wavefront"


# -- shared telemetry --------------------------------------------------------


def record_firing(event: TraceEvent) -> None:
    """Publish one finished trace event to the default metric registry.

    Both enactment strategies call this right after an event reaches a
    terminal status, so the per-processor firing counters are — like
    the firing semantics themselves — strategy-independent (the
    differential test in ``tests/test_observability_integration.py``
    pins serial and wavefront counts equal).
    """
    registry = get_registry()
    registry.counter(
        "repro_workflow_processor_firings_total",
        "Processor firings by terminal status.",
        labels=("processor", "status"),
    ).labels(processor=event.processor, status=event.status).inc()
    registry.counter(
        "repro_workflow_processor_iterations_total",
        "Per-element calls performed by processor firings.",
        labels=("processor",),
    ).labels(processor=event.processor).inc(event.iterations)
    if event.status == "degraded":
        registry.counter(
            "repro_workflow_degraded_firings_total",
            "Firings whose failure an on_failure policy absorbed.",
        ).inc()
    duration = event.duration
    if duration is not None:
        registry.histogram(
            "repro_workflow_processor_fire_seconds",
            "Wall-clock seconds of one processor firing (all iterations).",
            labels=("processor",),
        ).labels(processor=event.processor).observe(duration)


@contextlib.contextmanager
def enactment_telemetry(workflow_name: str, kind: str) -> Iterator[None]:
    """Span, in-flight gauge, and outcome counter around one enactment."""
    registry = get_registry()
    registry.gauge(
        "repro_workflow_active_enactments",
        "Workflow enactments currently in flight.",
    ).inc()
    status = "completed"
    try:
        with start_span(
            f"enact:{workflow_name}", workflow=workflow_name, enactor=kind
        ):
            yield
    except BaseException:
        status = "failed"
        raise
    finally:
        registry = get_registry()
        registry.gauge(
            "repro_workflow_active_enactments",
            "Workflow enactments currently in flight.",
        ).dec()
        registry.counter(
            "repro_workflow_enactments_total",
            "Finished enactments by strategy and status.",
            labels=("enactor", "status"),
        ).labels(enactor=kind, status=status).inc()


def traced_firing(
    trace: EnactmentTrace,
    name: str,
    workflow_name: str,
    fire: Callable[[], Tuple[Dict[str, Any], int, List[str]]],
) -> Tuple[Dict[str, Any], int]:
    """Run one firing under its trace event, span, and metrics.

    The single bottleneck both enactment strategies drive a firing
    through: starts the trace event, opens a ``fire:<processor>``
    span, maps the outcome onto the event (completed / degraded /
    failed), and publishes it via :func:`record_firing`.  Raises
    :class:`EnactmentError` on unabsorbed failure.
    """
    event = trace.start(name)
    with start_span(f"fire:{name}", processor=name, workflow=workflow_name):
        try:
            outputs, iterations, degradations = fire()
        except Exception as exc:
            trace.fail(event, str(exc))
            record_firing(event)
            raise EnactmentError(workflow_name, name, exc) from exc
        if degradations:
            trace.degrade(event, "; ".join(degradations), iterations)
        else:
            trace.complete(event, iterations)
        record_firing(event)
        return outputs, iterations


# -- shared firing semantics -------------------------------------------------


def fire_once(processor, inputs: Dict[str, Any]) -> Dict[str, Any]:
    """One processor invocation with Taverna-style fault tolerance.

    A processor may declare ``retries`` (re-invocations after a
    failure) and an ``alternate`` processor tried when every retry
    is exhausted — mirroring Taverna's retry/alternate-processor
    configuration.
    """
    retries = getattr(processor, "retries", 0)
    attempts = retries + 1
    last_error: Optional[Exception] = None
    for _ in range(attempts):
        try:
            return processor.fire(inputs)
        except Exception as exc:  # noqa: BLE001 - fault boundary
            last_error = exc
    alternate = getattr(processor, "alternate", None)
    if alternate is not None:
        return fire_once(alternate, inputs)
    assert last_error is not None
    raise last_error


def fire_degradable(
    processor, inputs: Dict[str, Any], degradations: List[str]
) -> Dict[str, Any]:
    """One firing with the processor's ``on_failure`` policy applied.

    Runs :func:`fire_once` (retries + alternate); if that still fails
    and the processor declares a non-``fail`` policy, the failure is
    absorbed: the fallback outputs come from ``processor.degraded``
    and a note is appended to ``degradations`` for the trace.
    """
    try:
        return fire_once(processor, inputs)
    except Exception as exc:  # noqa: BLE001 - degradation boundary
        policy = getattr(processor, "on_failure", ON_FAILURE_FAIL)
        if policy == ON_FAILURE_FAIL:
            raise
        degradations.append(f"{type(exc).__name__}: {exc}")
        return processor.degraded(inputs, policy)


def iteration_inputs(
    processor, port_values: Mapping[str, Any]
) -> Optional[List[Dict[str, Any]]]:
    """The per-iteration input dicts of one firing, or ``None``.

    ``None`` means no implicit iteration applies (no depth-0 port
    received a list) and the processor fires exactly once.  Otherwise
    the list holds one complete input dict per iteration, in the order
    mandated by the processor's iteration strategy: 'cross' (Taverna's
    default, the cartesian product) or 'dot' (element-wise zip of
    equal-length lists).
    """
    iterated = sorted(
        port
        for port, value in port_values.items()
        if processor.input_ports.get(port, 1) == 0 and isinstance(value, list)
    )
    if not iterated:
        return None
    strategy = getattr(processor, "iteration_strategy", "cross")
    axes = [port_values[port] for port in iterated]
    if strategy == "dot":
        lengths = {len(axis) for axis in axes}
        if len(lengths) > 1:
            raise ValueError(
                f"processor {processor.name!r} uses the dot iteration "
                f"strategy but its iterated inputs have differing "
                f"lengths {sorted(len(a) for a in axes)}"
            )
        combinations = list(zip(*axes))
    elif strategy == "cross":
        combinations = list(itertools.product(*axes))
    else:
        raise ValueError(
            f"processor {processor.name!r} has unknown iteration "
            f"strategy {strategy!r}; valid: 'cross', 'dot'"
        )
    calls: List[Dict[str, Any]] = []
    for combination in combinations:
        call_inputs = dict(port_values)
        for port, value in zip(iterated, combination):
            call_inputs[port] = value
        calls.append(call_inputs)
    return calls


def fire_processor(
    processor,
    port_values: Dict[str, Any],
    mapper: Optional[IterationMapper] = None,
) -> Tuple[Dict[str, Any], int, List[str]]:
    """Fire a processor over its gathered inputs.

    Returns ``(outputs, iterations, degradations)`` — the third element
    lists the failures absorbed by the processor's ``on_failure``
    policy (empty on a clean firing; the caller marks the trace event
    degraded when it is not).

    ``mapper`` lets a caller parallelise the implicit-iteration fan-out
    (it must preserve input order); by default iterations run serially.
    """
    degradations: List[str] = []
    calls = iteration_inputs(processor, port_values)
    if calls is None:
        outputs = fire_degradable(processor, dict(port_values), degradations)
        return outputs, 1, degradations

    def call(inputs: Dict[str, Any]) -> Dict[str, Any]:
        return fire_degradable(processor, inputs, degradations)

    if mapper is None or len(calls) <= 1:
        results = [call(inputs) for inputs in calls]
    else:
        results = mapper(call, calls)
    collected: Dict[str, List[Any]] = {
        port: [] for port in processor.output_ports
    }
    for outputs in results:
        for port in processor.output_ports:
            collected[port].append(outputs.get(port))
    return dict(collected), len(calls), degradations


def gather_port_values(
    workflow: Workflow,
    processor: str,
    values: Mapping[Tuple[str, str], Any],
) -> Dict[str, Any]:
    """Collect one processor's input-port values from produced values."""
    port_values: Dict[str, Any] = {}
    for link in workflow.incoming_links(processor):
        key = (link.source.processor, link.source.port)
        if key not in values:
            raise WorkflowError(
                f"data link {link.source} -> {link.sink} reads a value "
                f"that was never produced"
            )
        port_values[link.sink.port] = values[key]
    return port_values


def collect_workflow_outputs(
    workflow: Workflow, values: Mapping[Tuple[str, str], Any]
) -> Dict[str, Any]:
    """Resolve the workflow-level outputs from the produced values."""
    results: Dict[str, Any] = {}
    for out_name in workflow.outputs:
        for link in workflow.data_links:
            if not link.sink.processor and link.sink.port == out_name:
                key = (link.source.processor, link.source.port)
                if key not in values:
                    raise WorkflowError(
                        f"workflow output {out_name!r} reads a value "
                        f"that was never produced"
                    )
                results[out_name] = values[key]
    return results


def check_inputs(workflow: Workflow, inputs: Mapping[str, Any]) -> None:
    """Reject enactments missing declared workflow inputs."""
    missing = [name for name in workflow.inputs if name not in inputs]
    if missing:
        raise WorkflowError(
            f"workflow {workflow.name!r} is missing inputs {missing}"
        )


class Enactor:
    """Runs workflows; keeps the trace of its last enactment.

    ``last_trace`` is stored per *calling thread*: a thread always sees
    the trace of its own most recent run and can never observe another
    thread's enactment (the original single-attribute behaviour made
    concurrent callers race).  :meth:`enact` additionally returns the
    trace attached to the run's own result.
    """

    #: The strategy label this enactor publishes on workflow metrics.
    kind = KIND_SERIAL

    def __init__(self) -> None:
        self._local = threading.local()

    @property
    def last_trace(self) -> Optional[EnactmentTrace]:
        """The calling thread's most recent enactment trace."""
        return getattr(self._local, "trace", None)

    @last_trace.setter
    def last_trace(self, trace: Optional[EnactmentTrace]) -> None:
        self._local.trace = trace

    def run(
        self, workflow: Workflow, inputs: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Enact a workflow over the given inputs; returns its outputs."""
        return self.enact(workflow, inputs).outputs

    def enact(
        self, workflow: Workflow, inputs: Optional[Mapping[str, Any]] = None
    ) -> EnactmentResult:
        """Enact a workflow; returns its outputs *with* the run's trace."""
        inputs = dict(inputs or {})
        check_inputs(workflow, inputs)
        workflow.validate()
        trace = EnactmentTrace(workflow.name)
        self.last_trace = trace
        # Values produced so far: (processor, port) -> value; workflow
        # inputs use an empty processor name.
        values: Dict[Tuple[str, str], Any] = {
            ("", name): value for name, value in inputs.items()
        }
        with enactment_telemetry(workflow.name, self.kind):
            for name in workflow.topological_order():
                processor = workflow.processors[name]
                port_values = gather_port_values(workflow, name, values)
                outputs, _ = traced_firing(
                    trace,
                    name,
                    workflow.name,
                    lambda: self._fire(processor, port_values),
                )
                for port, value in outputs.items():
                    values[(name, port)] = value
        return EnactmentResult(collect_workflow_outputs(workflow, values), trace)

    def _fire(
        self, processor, port_values: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], int, List[str]]:
        return fire_processor(processor, port_values)

    def _fire_once(self, processor, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return fire_once(processor, inputs)
