"""Workflow structure: processors, ports, data links, control links."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.workflow.processors import Processor


class WorkflowError(ValueError):
    """Raised on structurally invalid workflows."""


@dataclass(frozen=True)
class Port:
    """A reference to a named port of a processor (or of the workflow).

    ``processor`` is empty for workflow-level source/sink ports.
    """

    processor: str
    port: str

    def __str__(self) -> str:
        return f"{self.processor}.{self.port}" if self.processor else self.port


@dataclass(frozen=True)
class DataLink:
    """Value flow from a source port to a sink port."""

    source: Port
    sink: Port


@dataclass(frozen=True)
class ControlLink:
    """Sink starts only after source completes (no data transferred)."""

    source: str  # processor name
    sink: str


@dataclass(frozen=True)
class WavefrontSchedule:
    """A precomputed enactment schedule over a workflow's processors.

    ``stages`` groups processors into wavefronts: everything in stage
    *n* depends only on processors of earlier stages, so one stage can
    fire concurrently.  ``dependencies`` maps each processor to its
    direct upstream set and ``dependents`` to the processors waiting on
    it — exactly the bookkeeping the parallel enactor otherwise
    re-derives per run.  Compiled quality workflows carry one
    (:func:`repro.qv.backend.emit_workflow` calls
    :meth:`Workflow.ensure_schedule`); structural edits invalidate it.
    """

    stages: Tuple[Tuple[str, ...], ...]
    dependencies: Dict[str, FrozenSet[str]]
    dependents: Dict[str, Tuple[str, ...]]


class Workflow:
    """A composition of processors, in the style of Taverna's SCUFL."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.processors: Dict[str, Processor] = {}
        self.data_links: List[DataLink] = []
        self.control_links: List[ControlLink] = []
        #: Workflow-level inputs: name -> Port() with empty processor.
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        #: Compiler provenance: fingerprint of the source quality view
        #: and the pipeline that produced this workflow ("reference" or
        #: "optimized").  ``None`` for hand-built workflows.
        self.source_fingerprint: Optional[str] = None
        self.compile_mode: Optional[str] = None
        self._schedule: Optional[WavefrontSchedule] = None

    # -- construction ------------------------------------------------------

    def add_processor(self, processor: Processor) -> Processor:
        """Add a processor; duplicate names are rejected."""
        if processor.name in self.processors:
            raise WorkflowError(
                f"workflow {self.name!r} already has a processor "
                f"named {processor.name!r}"
            )
        self.processors[processor.name] = processor
        self._schedule = None
        return processor

    def add_input(self, name: str) -> None:
        """Declare a workflow-level input port."""
        if name in self.inputs:
            raise WorkflowError(f"duplicate workflow input {name!r}")
        self.inputs.append(name)

    def add_output(self, name: str) -> None:
        """Declare a workflow-level output port."""
        if name in self.outputs:
            raise WorkflowError(f"duplicate workflow output {name!r}")
        self.outputs.append(name)

    def _check_port(self, port: Port, direction: str) -> None:
        if not port.processor:
            names = self.inputs if direction == "source" else self.outputs
            if port.port not in names:
                raise WorkflowError(
                    f"workflow has no {direction} port {port.port!r}"
                )
            return
        processor = self.processors.get(port.processor)
        if processor is None:
            raise WorkflowError(f"no processor named {port.processor!r}")
        ports = (
            processor.output_ports if direction == "source" else processor.input_ports
        )
        if port.port not in ports:
            kind = "output" if direction == "source" else "input"
            raise WorkflowError(
                f"processor {port.processor!r} has no {kind} port {port.port!r} "
                f"(has {sorted(ports)})"
            )

    def link(self, source: Port, sink: Port) -> DataLink:
        """Install a data link after validating both ports."""
        self._check_port(source, "source")
        self._check_port(sink, "sink")
        link = DataLink(source, sink)
        self.data_links.append(link)
        self._schedule = None
        return link

    def connect(
        self, source: str, source_port: str, sink: str, sink_port: str
    ) -> DataLink:
        """Convenience: link processor ports by name.

        An empty processor name addresses the workflow's own ports.
        """
        return self.link(Port(source, source_port), Port(sink, sink_port))

    def control(self, source: str, sink: str) -> ControlLink:
        """Install a control link (sink waits for source)."""
        for name in (source, sink):
            if name not in self.processors:
                raise WorkflowError(f"no processor named {name!r}")
        link = ControlLink(source, sink)
        self.control_links.append(link)
        self._schedule = None
        return link

    # -- analysis ---------------------------------------------------------------

    def upstream_of(self, processor: str) -> Set[str]:
        """Processors that must complete before ``processor`` can fire."""
        names: Set[str] = set()
        for link in self.data_links:
            if link.sink.processor == processor and link.source.processor:
                names.add(link.source.processor)
        for link in self.control_links:
            if link.sink == processor:
                names.add(link.source)
        return names

    def incoming_links(self, processor: str) -> List[DataLink]:
        """Data links feeding a processor."""
        return [l for l in self.data_links if l.sink.processor == processor]

    def outgoing_links(self, processor: str) -> List[DataLink]:
        """Data links reading a processor's outputs."""
        return [l for l in self.data_links if l.source.processor == processor]

    def boundary_links(self, region: Set[str]) -> List[DataLink]:
        """Data links leaving a processor region.

        A link is on the boundary when its source processor lies inside
        ``region`` and its sink does not — including links feeding the
        workflow's own output ports (empty sink processor).  The process
        execution backend uses this to decide which shardable-stage
        values must cross back to the parent for the residual stages.
        """
        return [
            link
            for link in self.data_links
            if link.source.processor in region
            and link.sink.processor not in region
        ]

    def topological_order(self) -> List[str]:
        """Processor firing order; raises on cyclic dependencies."""
        pending = {
            name: set(self.upstream_of(name)) for name in self.processors
        }
        order: List[str] = []
        ready = sorted(name for name, deps in pending.items() if not deps)
        while ready:
            current = ready.pop(0)
            order.append(current)
            del pending[current]
            newly_ready = []
            for name, deps in pending.items():
                if current in deps:
                    deps.discard(current)
                    if not deps:
                        newly_ready.append(name)
            for name in sorted(newly_ready):
                ready.append(name)
        if pending:
            raise WorkflowError(
                f"workflow {self.name!r} has a dependency cycle among "
                f"{sorted(pending)}"
            )
        return order

    def compute_schedule(self) -> "WavefrontSchedule":
        """Derive (and cache) the wavefront schedule; raises on cycles.

        Stage membership is deterministic: each wavefront lists its
        processors in sorted name order, matching the tie-breaking of
        :meth:`topological_order`.
        """
        dependencies = {
            name: frozenset(self.upstream_of(name)) for name in self.processors
        }
        dependents: Dict[str, List[str]] = {name: [] for name in self.processors}
        for name, deps in dependencies.items():
            for dep in deps:
                dependents[dep].append(name)
        remaining = {name: set(deps) for name, deps in dependencies.items()}
        stages: List[Tuple[str, ...]] = []
        ready = sorted(name for name, deps in remaining.items() if not deps)
        while ready:
            stages.append(tuple(ready))
            for name in ready:
                del remaining[name]
            newly_ready: Set[str] = set()
            for name in ready:
                for dependent in dependents[name]:
                    deps = remaining.get(dependent)
                    if deps is not None:
                        deps.discard(name)
                        if not deps:
                            newly_ready.add(dependent)
            ready = sorted(newly_ready)
        if remaining:
            raise WorkflowError(
                f"workflow {self.name!r} has a dependency cycle among "
                f"{sorted(remaining)}"
            )
        schedule = WavefrontSchedule(
            stages=tuple(stages),
            dependencies=dependencies,
            dependents={
                name: tuple(waiting) for name, waiting in dependents.items()
            },
        )
        self._schedule = schedule
        return schedule

    def ensure_schedule(self) -> "WavefrontSchedule":
        """The cached schedule, recomputed if missing or stale."""
        schedule = self._schedule
        if (
            schedule is None
            or schedule.dependencies.keys() != self.processors.keys()
        ):
            return self.compute_schedule()
        return schedule

    @property
    def schedule(self) -> Optional["WavefrontSchedule"]:
        """The cached wavefront schedule, or ``None`` after edits."""
        return self._schedule

    def depth_warnings(self) -> List[str]:
        """Advisory lint: data links whose port depths disagree.

        A depth-1 output feeding a depth-0 input triggers implicit
        iteration (often intended); a depth-0 output feeding a depth-1
        input delivers a scalar where a list is expected (rarely
        intended).  Neither is an error — Taverna tolerates both — so
        these are warnings for tooling to surface.
        """
        warnings: List[str] = []
        for link in self.data_links:
            if not link.source.processor or not link.sink.processor:
                continue
            source_depth = self.processors[link.source.processor].output_ports.get(
                link.source.port
            )
            sink_depth = self.processors[link.sink.processor].input_ports.get(
                link.sink.port
            )
            if source_depth is None or sink_depth is None:
                continue
            if source_depth > sink_depth:
                warnings.append(
                    f"{link.source} (depth {source_depth}) feeds {link.sink} "
                    f"(depth {sink_depth}): implicit iteration will apply"
                )
            elif source_depth < sink_depth:
                warnings.append(
                    f"{link.source} (depth {source_depth}) feeds {link.sink} "
                    f"(depth {sink_depth}): a scalar will arrive where a "
                    f"list is expected"
                )
        return warnings

    def validate(self) -> None:
        """Structural checks: wiring consistent, acyclic, inputs feedable."""
        self.topological_order()
        # every workflow output must be fed by exactly one link
        for name in self.outputs:
            feeders = [
                l for l in self.data_links
                if not l.sink.processor and l.sink.port == name
            ]
            if len(feeders) != 1:
                raise WorkflowError(
                    f"workflow output {name!r} must be fed by exactly one "
                    f"data link, found {len(feeders)}"
                )
        # no two links may feed the same processor input port
        seen: Set[Tuple[str, str]] = set()
        for link in self.data_links:
            if link.sink.processor:
                key = (link.sink.processor, link.sink.port)
                if key in seen:
                    raise WorkflowError(
                        f"input port {link.sink} is fed by multiple data links"
                    )
                seen.add(key)

    # -- embedding ---------------------------------------------------------------

    def merge(self, other: "Workflow", prefix: str = "") -> Dict[str, str]:
        """Copy another workflow's processors and links into this one.

        Returns the processor name mapping (old -> new).  Workflow-level
        ports of ``other`` are *not* copied; the caller wires the merged
        fragment explicitly (that is the deployment descriptor's job).
        """
        self._schedule = None
        renamed: Dict[str, str] = {}
        for name, processor in other.processors.items():
            new_name = f"{prefix}{name}"
            if new_name in self.processors:
                raise WorkflowError(
                    f"embedding collision: processor {new_name!r} already exists"
                )
            renamed[name] = new_name
            clone = processor.with_name(new_name)
            self.processors[new_name] = clone
        for link in other.data_links:
            if not link.source.processor or not link.sink.processor:
                continue  # workflow-port links are re-wired by the embedder
            self.data_links.append(
                DataLink(
                    Port(renamed[link.source.processor], link.source.port),
                    Port(renamed[link.sink.processor], link.sink.port),
                )
            )
        for link in other.control_links:
            self.control_links.append(
                ControlLink(renamed[link.source], renamed[link.sink])
            )
        return renamed

    def __repr__(self) -> str:
        return (
            f"<Workflow {self.name!r}: {len(self.processors)} processors, "
            f"{len(self.data_links)} data links, "
            f"{len(self.control_links)} control links>"
        )
