"""The extensible processor collection.

Taverna composes *processors*; new ones are added by scavenging WSDL
services, wrapping local code, or nesting workflows.  A processor
declares named input and output ports (with a depth: 0 = single value,
1 = list) and fires once its inputs are available.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.observability import get_registry, start_span

#: Degradation policies for failures absorbed at the firing boundary
#: (re-exported by ``repro.resilience.config``, defined here so the
#: workflow layer needs no resilience import).
ON_FAILURE_FAIL = "fail"
ON_FAILURE_SKIP = "skip"
ON_FAILURE_DEFAULT = "default_annotation"
ON_FAILURE_POLICIES = (ON_FAILURE_FAIL, ON_FAILURE_SKIP, ON_FAILURE_DEFAULT)


class Processor(abc.ABC):
    """A workflow step with named, depth-annotated ports.

    ``input_ports`` / ``output_ports`` map port name -> depth.  Depth 0
    ports given a list are implicitly iterated by the enactor (Taverna's
    implicit iteration); depth 1 ports consume the list whole.
    """

    #: How list-valued scalar inputs combine: 'cross' (cartesian
    #: product, Taverna's default) or 'dot' (element-wise zip).
    iteration_strategy: str = "cross"

    #: Re-invocations attempted after a failure before giving up.
    retries: int = 0

    #: Processor tried when this one (and its retries) failed.
    alternate: Optional["Processor"] = None

    #: What an unrecoverable firing failure does: ``"fail"`` propagates
    #: (the default), ``"skip"`` / ``"default_annotation"`` degrade to
    #: :meth:`degraded` outputs and mark the trace event as degraded.
    on_failure: str = ON_FAILURE_FAIL

    #: Optional :class:`repro.resilience.ResilientInvoker` routing this
    #: processor's service calls (retry/backoff/deadline/breaker).
    invoker: Optional[Any] = None

    def __init__(
        self,
        name: str,
        input_ports: Optional[Mapping[str, int]] = None,
        output_ports: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.name = name
        self.input_ports: Dict[str, int] = dict(input_ports or {})
        self.output_ports: Dict[str, int] = dict(output_ports or {})

    def with_iteration(self, strategy: str) -> "Processor":
        """Set the iteration strategy; returns self for chaining."""
        if strategy not in ("cross", "dot"):
            raise ValueError(
                f"unknown iteration strategy {strategy!r}; "
                f"valid: 'cross', 'dot'"
            )
        self.iteration_strategy = strategy
        return self

    def with_fault_tolerance(
        self, retries: int = 0, alternate: Optional["Processor"] = None
    ) -> "Processor":
        """Configure Taverna-style retry / alternate-processor handling."""
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.alternate = alternate
        return self

    def with_on_failure(self, policy: str) -> "Processor":
        """Set the degradation policy; returns self for chaining."""
        if policy not in ON_FAILURE_POLICIES:
            raise ValueError(
                f"unknown on_failure policy {policy!r}; "
                f"valid: {ON_FAILURE_POLICIES}"
            )
        self.on_failure = policy
        return self

    def invoke_service(
        self,
        service: Any,
        dataset: Any,
        amap: Any,
        context: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        """Route one service call through the resilient invoker, if any.

        Service-backed processors call this instead of
        ``service.invoke`` directly, so attaching an invoker (see
        ``repro.resilience.apply_resilience``) adds retry, deadline and
        circuit-breaker behaviour without touching firing semantics.
        """
        get_registry().counter(
            "repro_workflow_service_calls_total",
            "Service invocations issued by workflow processors.",
            labels=("processor",),
        ).labels(processor=self.name).inc()
        with start_span(
            f"service:{self.name}",
            processor=self.name,
            service=getattr(service, "name", ""),
        ):
            if self.invoker is None:
                return service.invoke(dataset, amap, context=context)
            return self.invoker.invoke(service, dataset, amap, context=context)

    def degraded(self, inputs: Dict[str, Any], policy: str) -> Dict[str, Any]:
        """Fallback outputs when ``on_failure`` absorbs a failure.

        The default contribution is "nothing": an ``annotationMap``
        output passes the input map through unchanged (the processor
        added no annotations — evidence missing), list ports become
        empty lists, scalar ports ``None``.  Subclasses refine this
        (e.g. a QA tagging items as degraded under
        ``default_annotation``).
        """
        from repro.annotation.map import AnnotationMap

        outputs: Dict[str, Any] = {}
        for port, depth in self.output_ports.items():
            if port == "annotationMap":
                amap = inputs.get("annotationMap")
                outputs[port] = (
                    amap.copy() if isinstance(amap, AnnotationMap)
                    else AnnotationMap()
                )
            elif depth >= 1:
                outputs[port] = []
            else:
                outputs[port] = None
        return outputs

    @abc.abstractmethod
    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Consume one set of input values, produce all output values."""

    def with_name(self, name: str) -> "Processor":
        """A shallow clone under a new name (used when embedding)."""
        clone = copy.copy(self)
        clone.name = name
        clone.input_ports = dict(self.input_ports)
        clone.output_ports = dict(self.output_ports)
        return clone

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"in={sorted(self.input_ports)} out={sorted(self.output_ports)}>"
        )


class StringConstantProcessor(Processor):
    """Taverna's string-constant processor: no inputs, one constant output."""

    def __init__(self, name: str, value: str) -> None:
        super().__init__(name, input_ports={}, output_ports={"value": 0})
        self.value = value

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Consume one set of inputs, produce all outputs."""

        return {"value": self.value}


class PythonProcessor(Processor):
    """A local-code processor (Taverna's beanshell analogue).

    The callable receives the input values as keyword arguments and
    returns a dict of outputs (or a single value if there is exactly one
    output port).
    """

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        input_ports: Optional[Mapping[str, int]] = None,
        output_ports: Optional[Mapping[str, int]] = None,
    ) -> None:
        super().__init__(
            name,
            input_ports=input_ports or {},
            output_ports=output_ports or {"output": 0},
        )
        self.fn = fn

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Consume one set of inputs, produce all outputs."""

        result = self.fn(**inputs)
        if isinstance(result, dict) and set(result) == set(self.output_ports):
            return result
        if len(self.output_ports) == 1:
            only = next(iter(self.output_ports))
            return {only: result}
        raise ValueError(
            f"processor {self.name!r} returned {type(result).__name__}; "
            f"expected a dict with ports {sorted(self.output_ports)}"
        )


class AdapterProcessor(PythonProcessor):
    """A deployment adapter: converts between host and quality formats.

    Paper Sec. 6.2: "adapters typically account for differences in data
    formats; as they are Taverna processors themselves, their names are
    registered and can be used within the descriptor."
    """

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        input_port: str = "input",
        output_port: str = "output",
        depth: int = 1,
    ) -> None:
        super().__init__(
            name,
            fn,
            input_ports={input_port: depth},
            output_ports={output_port: depth},
        )
        self.input_port = input_port
        self.output_port = output_port


class WSDLProcessor(Processor):
    """A processor invoking a deployed Qurator service.

    Exposes the common interface as ports: ``dataSet`` (depth 1),
    ``annotationMap`` (depth 1 conceptually, transported whole), output
    ``annotationMap``.  ``config`` carries QA-operator configuration
    (tag name/types, variable bindings) fixed at compile time.
    """

    def __init__(
        self,
        name: str,
        service,
        config: Optional[Mapping[str, Any]] = None,
    ) -> None:
        super().__init__(
            name,
            input_ports={"dataSet": 1, "annotationMap": 1},
            output_ports={"annotationMap": 1},
        )
        self.service = service
        self.config = dict(config or {})

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Consume one set of inputs, produce all outputs."""

        from repro.annotation.map import AnnotationMap
        from repro.services.messages import DataSetMessage

        dataset = inputs.get("dataSet")
        if not isinstance(dataset, DataSetMessage):
            dataset = DataSetMessage(list(dataset or []))
        amap = inputs.get("annotationMap")
        if amap is None:
            amap = AnnotationMap()
        result = self.invoke_service(
            self.service, dataset, amap, context=self.config or None
        )
        return {"annotationMap": result}


class NestedWorkflowProcessor(Processor):
    """A whole workflow embedded as a single processor."""

    def __init__(self, name: str, workflow, enactor=None) -> None:
        super().__init__(
            name,
            input_ports={port: 1 for port in workflow.inputs},
            output_ports={port: 1 for port in workflow.outputs},
        )
        self.workflow = workflow
        self._enactor = enactor

    def fire(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        """Consume one set of inputs, produce all outputs."""

        from repro.workflow.enactor import Enactor

        enactor = self._enactor if self._enactor is not None else Enactor()
        return enactor.run(self.workflow, inputs)
