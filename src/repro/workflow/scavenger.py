"""The services scavenger.

Paper Sec. 6.1: "any deployed Web Service with a published WSDL
interface can be found automatically on a specified host by Taverna's
services scavenger process."  The scavenger crawls a service registry's
WSDL index and materialises one :class:`WSDLProcessor` factory per
discovered service, extending the available processor collection.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.services.registry import ServiceRegistry
from repro.services.wsdl import parse_wsdl
from repro.workflow.processors import Processor, WSDLProcessor


class Scavenger:
    """Discovers deployed services and hands out processors for them."""

    def __init__(self) -> None:
        self._discovered: Dict[str, Any] = {}  # service name -> Service

    def scan(self, registry: ServiceRegistry) -> List[str]:
        """Crawl the registry's published WSDL; returns new service names."""
        found: List[str] = []
        for endpoint, wsdl_text in registry.wsdl_index().items():
            descriptor = parse_wsdl(wsdl_text)
            name = descriptor["name"]
            if not name or name in self._discovered:
                continue
            self._discovered[name] = registry.by_endpoint(endpoint)
            found.append(name)
        return sorted(found)

    def available(self) -> List[str]:
        """Names of every scavenged service."""
        return sorted(self._discovered)

    def __contains__(self, name: str) -> bool:
        return name in self._discovered

    def processor(
        self,
        service_name: str,
        processor_name: Optional[str] = None,
        config: Optional[Mapping[str, Any]] = None,
    ) -> Processor:
        """Instantiate a processor for a discovered service."""
        try:
            service = self._discovered[service_name]
        except KeyError:
            raise KeyError(
                f"service {service_name!r} has not been scavenged; "
                f"available: {self.available()}"
            ) from None
        return WSDLProcessor(processor_name or service_name, service, config=config)
