"""SCUFL-like XML serialisation of workflows.

Taverna persists workflows in the SCUFL XML dialect.  This module
writes a structurally similar document — processors with their type and
ports, data links, control links (called *coordination* constraints in
SCUFL), and workflow source/sink ports — and can read the structure
back (processor behaviour is resolved against a scavenger or a
processor factory on load).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Callable, Dict, Optional

from repro.workflow.model import ControlLink, DataLink, Port, Workflow
from repro.workflow.processors import Processor


def workflow_to_xml(workflow: Workflow) -> str:
    """Serialise a workflow to SCUFL-like XML."""

    root = ET.Element("scufl", {"name": workflow.name, "version": "0.2"})
    for name in workflow.inputs:
        ET.SubElement(root, "source", {"name": name})
    for name in workflow.outputs:
        ET.SubElement(root, "sink", {"name": name})
    for name, processor in workflow.processors.items():
        element = ET.SubElement(
            root, "processor", {"name": name, "type": type(processor).__name__}
        )
        for port, depth in processor.input_ports.items():
            ET.SubElement(
                element, "inputPort", {"name": port, "depth": str(depth)}
            )
        for port, depth in processor.output_ports.items():
            ET.SubElement(
                element, "outputPort", {"name": port, "depth": str(depth)}
            )
    for link in workflow.data_links:
        ET.SubElement(
            root,
            "link",
            {
                "source": str(link.source),
                "sink": str(link.sink),
            },
        )
    for control in workflow.control_links:
        ET.SubElement(
            root,
            "coordination",
            {"from": control.source, "to": control.sink},
        )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


class _StubProcessor(Processor):
    """Placeholder for processors loaded without an implementation."""

    def __init__(self, name: str, original_type: str, inputs, outputs) -> None:
        super().__init__(name, input_ports=inputs, output_ports=outputs)
        self.original_type = original_type

    def fire(self, inputs):
        """Stubs refuse to fire; supply a processor factory on load."""

        raise NotImplementedError(
            f"processor {self.name!r} (type {self.original_type}) was loaded "
            f"from XML without an implementation"
        )


def _split_port(text: str) -> Port:
    if "." in text:
        processor, _, port = text.rpartition(".")
        return Port(processor, port)
    return Port("", text)


def workflow_from_xml(
    text: str,
    processor_factory: Optional[Callable[[str, str, Dict, Dict], Processor]] = None,
) -> Workflow:
    """Rebuild workflow structure from XML.

    ``processor_factory(name, type_name, input_ports, output_ports)``
    may supply real processor implementations; otherwise stub
    processors preserve the structure for analysis.
    """
    root = ET.fromstring(text)
    workflow = Workflow(root.get("name") or "workflow")
    for element in root:
        if element.tag == "source":
            workflow.add_input(element.get("name") or "")
        elif element.tag == "sink":
            workflow.add_output(element.get("name") or "")
        elif element.tag == "processor":
            name = element.get("name") or ""
            type_name = element.get("type") or ""
            inputs = {
                child.get("name") or "": int(child.get("depth") or 0)
                for child in element.findall("inputPort")
            }
            outputs = {
                child.get("name") or "": int(child.get("depth") or 0)
                for child in element.findall("outputPort")
            }
            if processor_factory is not None:
                processor = processor_factory(name, type_name, inputs, outputs)
            else:
                processor = _StubProcessor(name, type_name, inputs, outputs)
            workflow.add_processor(processor)
    # Second pass: links need the processors in place.
    for element in root:
        if element.tag == "link":
            workflow.link(
                _split_port(element.get("source") or ""),
                _split_port(element.get("sink") or ""),
            )
        elif element.tag == "coordination":
            workflow.control(element.get("from") or "", element.get("to") or "")
    return workflow
