"""Enactment traces: what happened during a workflow run."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class TraceEvent:
    """One lifecycle event of one processor firing."""

    processor: str
    status: str  # scheduled | completed | degraded | failed
    started_at: float
    finished_at: Optional[float] = None
    error: Optional[str] = None
    iterations: int = 1

    @property
    def duration(self) -> Optional[float]:
        """Wall-clock seconds, or None while running."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering of this event."""
        return {
            "processor": self.processor,
            "status": self.status,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "iterations": self.iterations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            processor=data["processor"],
            status=data["status"],
            started_at=data["started_at"],
            finished_at=data.get("finished_at"),
            error=data.get("error"),
            iterations=data.get("iterations", 1),
        )


@dataclass
class EnactmentTrace:
    """The ordered record of one enactment."""

    workflow: str
    events: List[TraceEvent] = field(default_factory=list)

    def start(self, processor: str) -> TraceEvent:
        """Record a processor as scheduled; returns its event."""
        event = TraceEvent(processor, "scheduled", started_at=time.perf_counter())
        self.events.append(event)
        return event

    def complete(self, event: TraceEvent, iterations: int = 1) -> None:
        """Mark an event completed with its iteration count."""
        event.status = "completed"
        event.finished_at = time.perf_counter()
        event.iterations = iterations

    def fail(self, event: TraceEvent, error: str) -> None:
        """Mark an event failed with the error text."""
        event.status = "failed"
        event.finished_at = time.perf_counter()
        event.error = error

    def degrade(self, event: TraceEvent, error: str, iterations: int = 1) -> None:
        """Mark an event degraded: its failure was absorbed by policy.

        The enactment continued on the processor's fallback outputs;
        ``error`` keeps the absorbed failure(s) debuggable from the
        trace.
        """
        event.status = "degraded"
        event.finished_at = time.perf_counter()
        event.error = error
        event.iterations = iterations

    def order(self) -> List[str]:
        """Processor names in firing order."""
        return [event.processor for event in self.events]

    def failed(self) -> List[TraceEvent]:
        """Events that ended in failure."""
        return [event for event in self.events if event.status == "failed"]

    def degraded(self) -> List[TraceEvent]:
        """Events whose failure was absorbed by an on_failure policy."""
        return [event for event in self.events if event.status == "degraded"]

    def total_duration(self) -> float:
        """Sum of all event durations (seconds)."""
        return sum(event.duration or 0.0 for event in self.events)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering for persistence and replay.

        Every event — including ``degraded`` ones with their absorbed
        error text — round-trips through :meth:`from_dict` unchanged.
        """
        return {
            "workflow": self.workflow,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EnactmentTrace":
        """Rebuild a trace saved by :meth:`to_dict`."""
        trace = cls(data["workflow"])
        trace.events = [
            TraceEvent.from_dict(event) for event in data.get("events", [])
        ]
        return trace

    def __repr__(self) -> str:
        return f"<EnactmentTrace {self.workflow!r}: {len(self.events)} events>"
