"""Graphviz DOT rendering of workflows.

Produces the pictures the paper draws (Figs. 1 and 6) as DOT text:
processors as boxes (quality-view processors can be highlighted, like
the shaded box (a) of Fig. 6), data links as solid edges labelled with
their ports, control links as dashed edges.  Pure text output — no
graphviz dependency; feed the result to ``dot -Tsvg`` if installed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.workflow.model import Workflow


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def workflow_to_dot(
    workflow: Workflow,
    highlight: Optional[Iterable[str]] = None,
    rankdir: str = "TB",
) -> str:
    """Render a workflow as a DOT digraph.

    ``highlight`` names processors drawn shaded (the embedded quality
    fragment in a Fig. 6-style picture).
    """
    highlighted: Set[str] = set(highlight or ())
    lines = [f"digraph {_quote(workflow.name)} {{"]
    lines.append(f"  rankdir={rankdir};")
    lines.append("  node [shape=box, fontsize=10];")
    for name in workflow.inputs:
        lines.append(
            f"  {_quote('in:' + name)} [shape=ellipse, label={_quote(name)}];"
        )
    for name in workflow.outputs:
        lines.append(
            f"  {_quote('out:' + name)} [shape=ellipse, label={_quote(name)}];"
        )
    for name, processor in workflow.processors.items():
        attributes = [f"label={_quote(name)}"]
        if name in highlighted:
            attributes.append('style=filled')
            attributes.append('fillcolor="lightgrey"')
        lines.append(f"  {_quote(name)} [{', '.join(attributes)}];")
    for link in workflow.data_links:
        source = (
            _quote(link.source.processor)
            if link.source.processor
            else _quote("in:" + link.source.port)
        )
        sink = (
            _quote(link.sink.processor)
            if link.sink.processor
            else _quote("out:" + link.sink.port)
        )
        label = _quote(f"{link.source.port}->{link.sink.port}")
        lines.append(f"  {source} -> {sink} [label={label}, fontsize=8];")
    for control in workflow.control_links:
        lines.append(
            f"  {_quote(control.source)} -> {_quote(control.sink)} "
            f"[style=dashed, constraint=true];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
