"""Shared fixtures.

Scenario generation is the expensive step (reference-database digestion
feeds the Imprint index), so the default scenario and its derived
artefacts are session-scoped and must be treated as read-only by tests.
"""

from __future__ import annotations

import pytest

from repro.core.framework import QuratorFramework
from repro.ontology import build_iq_model
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet


@pytest.fixture(scope="session")
def iq_model():
    return build_iq_model()


@pytest.fixture(scope="session")
def scenario():
    return ProteomicsScenario.generate(seed=42, n_proteins=150, n_spots=6)


@pytest.fixture(scope="session")
def imprint_runs(scenario):
    return scenario.identify_all()


@pytest.fixture(scope="session")
def result_set(imprint_runs):
    return ImprintResultSet(imprint_runs)


@pytest.fixture()
def framework():
    framework = QuratorFramework()
    framework.register_standard_services()
    return framework
