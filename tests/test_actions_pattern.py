"""Tests for action operators and the directly-executable process pattern."""

import pytest

from repro.annotation import AnnotationMap, AnnotationStore
from repro.annotation.functions import CallableAnnotationFunction
from repro.process import (
    AnnotationOperator,
    DataEnrichmentOperator,
    FilterAction,
    QualityProcess,
    SplitterAction,
)
from repro.process.actions import DEFAULT_GROUP
from repro.qa import PIScoreClassifierQA, UniversalPIScoreQA
from repro.rdf import Q, URIRef

ITEMS = [URIRef(f"urn:lsid:test:item:{i}") for i in range(6)]


def make_map(values):
    amap = AnnotationMap(ITEMS[: len(values)])
    for item, (hr, mc) in zip(amap.items(), values):
        if hr is not None:
            amap.set_evidence(item, Q.HitRatio, hr)
        if mc is not None:
            amap.set_evidence(item, Q.Coverage, mc)
    return amap


class TestSplitter:
    def test_paper_semantics_k_plus_one_groups(self):
        amap = make_map([(0.9, 0.9), (0.5, 0.5), (0.1, 0.1)])
        amap.set_tag(ITEMS[0], "cls", Q.high)
        amap.set_tag(ITEMS[1], "cls", Q.mid)
        amap.set_tag(ITEMS[2], "cls", Q.low)
        splitter = SplitterAction(
            "split",
            [("good", "cls in q:high, q:mid"), ("top", "cls = 'high'")],
        )
        outcome = splitter.execute(amap.items(), amap)
        assert outcome.items("good") == [ITEMS[0], ITEMS[1]]
        assert outcome.items("top") == [ITEMS[0]]  # groups may overlap
        assert outcome.items(DEFAULT_GROUP) == [ITEMS[2]]

    def test_unmatched_items_fall_to_default(self):
        amap = make_map([(None, None)])
        splitter = SplitterAction("split", [("any", "HitRatio > 0")])
        outcome = splitter.execute(amap.items(), amap)
        assert outcome.items(DEFAULT_GROUP) == [ITEMS[0]]

    def test_group_maps_are_subsets(self):
        amap = make_map([(0.9, 0.9), (0.1, 0.1)])
        splitter = SplitterAction("split", [("hi", "HitRatio > 0.5")])
        outcome = splitter.execute(amap.items(), amap)
        sub = outcome.map_of("hi")
        assert sub.items() == [ITEMS[0]]
        assert sub.get_evidence(ITEMS[0], Q.HitRatio) == 0.9

    def test_reserved_default_name_rejected(self):
        with pytest.raises(ValueError):
            SplitterAction("split", [(DEFAULT_GROUP, "x > 1")])

    def test_duplicate_group_rejected(self):
        with pytest.raises(ValueError):
            SplitterAction("split", [("g", "x > 1"), ("g", "x < 1")])

    def test_empty_conditions_rejected(self):
        with pytest.raises(ValueError):
            SplitterAction("split", [])

    def test_surviving_excludes_default(self):
        amap = make_map([(0.9, 0.9), (0.1, 0.1)])
        splitter = SplitterAction("split", [("hi", "HitRatio > 0.5")])
        outcome = splitter.execute(amap.items(), amap)
        assert outcome.surviving() == [ITEMS[0]]


class TestFilter:
    def test_keeps_satisfying_items(self):
        amap = make_map([(0.9, 0.9), (0.1, 0.1)])
        action = FilterAction("f", "HitRatio > 0.5")
        outcome = action.execute(amap.items(), amap)
        assert outcome.items(FilterAction.ACCEPTED) == [ITEMS[0]]

    def test_variable_bindings_visible(self):
        amap = make_map([(0.9, 0.42)])
        action = FilterAction("f", "coverage > 0.4")
        outcome = action.execute(
            amap.items(), amap, variable_bindings={"coverage": Q.Coverage}
        )
        assert outcome.items(FilterAction.ACCEPTED) == [ITEMS[0]]


class TestQualityProcess:
    def test_full_pipeline(self, iq_model):
        store = AnnotationStore("cache", iq_model=iq_model, persistent=False)
        data = {
            ITEMS[0]: (0.9, 0.8),
            ITEMS[1]: (0.5, 0.5),
            ITEMS[2]: (0.05, 0.1),
        }
        annotator = AnnotationOperator(
            "ann",
            CallableAnnotationFunction(
                Q["Imprint-output-annotation"],
                [Q.HitRatio, Q.Coverage],
                lambda item, ctx: {
                    Q.HitRatio: data[item][0],
                    Q.Coverage: data[item][1],
                },
            ),
            store,
            [Q.HitRatio, Q.Coverage],
        )
        enrichment = DataEnrichmentOperator(
            "de", {Q.HitRatio: store, Q.Coverage: store}
        )
        process = QualityProcess(
            "p",
            annotators=[annotator],
            enrichment=enrichment,
            assertions=[
                UniversalPIScoreQA(),
                PIScoreClassifierQA(),
            ],
            actions=[FilterAction("keep", "ScoreClass in q:high, q:mid")],
        )
        result = process.execute(list(data))
        assert result.consolidated.get_tag(ITEMS[0], "HR MC").plain() > 50
        surviving = result.surviving("keep")
        assert ITEMS[2] not in surviving
        assert ITEMS[0] in surviving

    def test_process_without_operators_passes_items_through(self):
        process = QualityProcess("empty")
        result = process.execute(ITEMS[:2])
        assert result.surviving() == ITEMS[:2]

    def test_qa_length_mismatch_detected(self):
        class BrokenQA(UniversalPIScoreQA):
            def compute(self, items, vectors):
                return []

        amap = make_map([(0.5, 0.5)])
        with pytest.raises(ValueError):
            BrokenQA().execute(amap)
