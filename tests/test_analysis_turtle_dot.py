"""Tests for the analysis toolkit, the Turtle parser, DOT rendering,
and failure injection through the full embedded pipeline."""

import pytest

from repro.proteomics.analysis import (
    EnrichmentRow,
    enrichment,
    hypergeometric_pvalue,
    pareto,
    rank_displacement,
    significance_ratio,
)
from repro.rdf import Graph, Literal, Namespace, Q, RDF
from repro.rdf.turtle import TurtleParseError, parse_turtle

EX = Namespace("http://example.org/")


class TestPareto:
    def test_ordering_and_shares(self):
        rows = pareto({"a": 6, "b": 3, "c": 1})
        assert [r.term for r in rows] == ["a", "b", "c"]
        assert rows[0].share == pytest.approx(0.6)
        assert rows[-1].cumulative_share == pytest.approx(1.0)

    def test_ties_break_by_term(self):
        rows = pareto({"z": 2, "a": 2})
        assert [r.term for r in rows] == ["a", "z"]

    def test_empty(self):
        assert pareto({}) == []


class TestSignificanceRatio:
    def test_fig7_ordering(self):
        raw = {"t1": 6, "t2": 14, "t3": 10}
        kept = {"t1": 6, "t2": 0, "t3": 2}
        rows = significance_ratio(raw, kept)
        assert rows[0].term == "t1"
        assert rows[0].ratio == 1.0
        assert rows[-1].term == "t2"
        assert rows[-1].ratio == 0.0

    def test_rank_displacement_promotes_quality_terms(self):
        raw = {"frequent-fp": 14, "rare-tp": 6, "mid": 10}
        kept = {"rare-tp": 6, "mid": 2}
        displacement = rank_displacement(raw, kept)
        assert displacement["rare-tp"] > 0
        assert displacement["frequent-fp"] < 0


class TestHypergeometric:
    def test_certain_event(self):
        # drawing all items must include all successes
        assert hypergeometric_pvalue(10, 4, 10, 4) == pytest.approx(1.0)

    def test_impossible_event(self):
        assert hypergeometric_pvalue(10, 2, 3, 3) == 0.0

    def test_monotone_in_observed(self):
        p_values = [
            hypergeometric_pvalue(100, 20, 30, k) for k in range(0, 15)
        ]
        assert p_values == sorted(p_values, reverse=True)

    def test_known_value(self):
        # P(X >= 1), N=10, K=5, n=2: 1 - C(5,2)/C(10,2) = 1 - 10/45
        assert hypergeometric_pvalue(10, 5, 2, 1) == pytest.approx(
            1 - 10 / 45
        )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            hypergeometric_pvalue(5, 6, 1, 0)
        with pytest.raises(ValueError):
            hypergeometric_pvalue(5, 2, 9, 0)

    def test_enrichment_detects_concentration(self):
        raw = {"tp": 10, "fp1": 30, "fp2": 30}
        kept = {"tp": 9, "fp1": 1}
        rows = enrichment(raw, kept, alpha=0.05)
        assert rows and rows[0].term == "tp"
        assert all(r.p_value < 0.05 for r in rows)
        assert "fp2" not in {r.term for r in rows}


class TestTurtleParser:
    def test_roundtrip_of_own_serialisation(self):
        g = Graph()
        g.add(EX.d1, RDF.type, Q.ImprintHitEntry)
        g.add(EX.d1, Q.value, Literal(0.85))
        g.add(EX.d1, EX.label, Literal("hello", lang="en"))
        g.add(EX.d1, EX.note, Literal('says "hi"'))
        restored = Graph().parse(g.serialize("turtle"), "turtle")
        assert restored == g

    def test_prefixes_and_semicolon_groups(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:s ex:p ex:o ;
             ex:q "plain", "typed"^^<http://www.w3.org/2001/XMLSchema#string> ;
             a ex:Thing .
        """
        triples = list(parse_turtle(text))
        assert len(triples) == 4
        assert (EX.s, RDF.type, EX.Thing) in triples

    def test_numbers_and_booleans(self):
        text = "@prefix ex: <http://example.org/> .\nex:s ex:n 42 ; ex:f 3.5 ; ex:b true ."
        by_predicate = {t.predicate: t.object for t in parse_turtle(text)}
        assert by_predicate[EX.n].value == 42
        assert by_predicate[EX.f].value == 3.5
        assert by_predicate[EX.b].value is True

    def test_blank_nodes(self):
        text = "@prefix ex: <http://example.org/> .\n_:x ex:p _:y ."
        (triple,) = parse_turtle(text)
        assert str(triple.subject) == "x"
        assert str(triple.object) == "y"

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(TurtleParseError, match="undeclared"):
            list(parse_turtle("zz:s zz:p zz:o ."))

    def test_missing_dot_rejected(self):
        text = "@prefix ex: <http://example.org/> .\nex:s ex:p ex:o"
        with pytest.raises(TurtleParseError):
            list(parse_turtle(text))

    def test_comments_ignored(self):
        text = (
            "@prefix ex: <http://example.org/> . # prefix\n"
            "# full line comment\n"
            "ex:s ex:p ex:o .\n"
        )
        assert len(list(parse_turtle(text))) == 1

    def test_iq_model_roundtrips_through_turtle(self, iq_model):
        text = iq_model.ontology.graph.serialize("turtle")
        restored = Graph().parse(text, "turtle")
        assert restored == iq_model.ontology.graph


class TestDotRendering:
    def test_fig6_style_rendering(self, scenario):
        from repro.core.ispider import build_deployment
        from repro.workflow.visualize import workflow_to_dot

        deployment = build_deployment(scenario)
        quality_names = set(deployment.view.compile().processors)
        dot = workflow_to_dot(deployment.embedded, highlight=quality_names)
        assert dot.startswith("digraph")
        assert '"DataEnrichment"' in dot
        assert "lightgrey" in dot  # the shaded quality fragment
        assert "style=dashed" in dot  # the annotator control link
        assert dot.count(" -> ") == (
            len(deployment.embedded.data_links)
            + len(deployment.embedded.control_links)
        )


class TestFailureInjection:
    def test_flaky_annotation_service_recovers_with_retries(
        self, scenario, result_set
    ):
        """A transiently failing annotation service must not sink the
        embedded pipeline when the processor retries (Taverna-style)."""
        from repro.core.ispider import (
            FILTER_ACTION,
            example_quality_view_xml,
            setup_framework,
        )

        framework, holder = setup_framework(scenario)
        holder.set(result_set)
        service = framework.services.by_name("ImprintOutputAnnotator")
        original_invoke = service.invoke
        failures = {"remaining": 2}

        def flaky_invoke(*args, **kwargs):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise RuntimeError("transient service failure")
            return original_invoke(*args, **kwargs)

        service.invoke = flaky_invoke
        view = framework.quality_view(example_quality_view_xml())
        workflow = view.compile()
        workflow.processors["ImprintOutputAnnotator"].with_fault_tolerance(
            retries=3
        )
        result = view.run(result_set.items())
        assert result.surviving(FILTER_ACTION)
        assert failures["remaining"] == 0

    def test_flaky_service_without_retries_fails_loudly(
        self, scenario, result_set
    ):
        from repro.core import QuratorError
        from repro.core.ispider import example_quality_view_xml, setup_framework
        from repro.workflow.enactor import EnactmentError

        framework, holder = setup_framework(scenario)
        holder.set(result_set)
        service = framework.services.by_name("ImprintOutputAnnotator")

        def always_fail(*args, **kwargs):
            raise RuntimeError("permanently down")

        service.invoke = always_fail
        view = framework.quality_view(example_quality_view_xml())
        with pytest.raises(EnactmentError, match="ImprintOutputAnnotator"):
            view.run(result_set.items())
