"""Tests for the annotation map (paper Sec. 4.1)."""

import pytest

from repro.annotation import AnnotationMap, TagValue
from repro.rdf import Literal, Q, URIRef

D1 = URIRef("urn:lsid:test:data:1")
D2 = URIRef("urn:lsid:test:data:2")
D3 = URIRef("urn:lsid:test:data:3")


@pytest.fixture()
def amap():
    m = AnnotationMap([D1, D2])
    m.set_evidence(D1, Q.HitRatio, 0.8)
    m.set_evidence(D1, Q.Coverage, 0.5)
    m.set_evidence(D2, Q.HitRatio, 0.2)
    m.set_tag(D1, "ScoreClass", Q.high, syn_type=Q["class"],
              sem_type=Q.PIScoreClassification)
    m.set_tag(D1, "HR MC", 65.0, syn_type=Q.score)
    return m


class TestItems:
    def test_order_preserved(self, amap):
        assert amap.items() == [D1, D2]

    def test_add_item_idempotent(self, amap):
        amap.add_item(D1)
        assert len(amap) == 2

    def test_set_evidence_auto_adds_item(self, amap):
        amap.set_evidence(D3, Q.HitRatio, 0.1)
        assert D3 in amap
        assert amap.items()[-1] == D3


class TestEvidence:
    def test_get_evidence(self, amap):
        assert amap.get_evidence(D1, Q.HitRatio) == 0.8

    def test_get_missing_evidence_is_none(self, amap):
        assert amap.get_evidence(D2, Q.Coverage) is None
        assert amap.get_evidence(D2, Q.Coverage, default=0.0) == 0.0

    def test_evidence_types_union(self, amap):
        assert amap.evidence_types() == {Q.HitRatio, Q.Coverage}

    def test_has_evidence(self, amap):
        assert amap.has_evidence(D1, Q.Coverage)
        assert not amap.has_evidence(D2, Q.Coverage)


class TestTags:
    def test_get_tag(self, amap):
        tag = amap.get_tag(D1, "ScoreClass")
        assert tag.plain() == Q.high
        assert tag.sem_type == Q.PIScoreClassification

    def test_missing_tag_is_none(self, amap):
        assert amap.get_tag(D2, "ScoreClass") is None

    def test_tag_names(self, amap):
        assert amap.tag_names() == {"ScoreClass", "HR MC"}

    def test_classification_of_lookup(self, amap):
        assert amap.classification_of(D1, Q.PIScoreClassification) == Q.high
        assert amap.classification_of(D2, Q.PIScoreClassification) is None

    def test_tag_value_unwraps_literal(self):
        assert TagValue(Literal(3)).plain() == 3


class TestEnvironment:
    def test_environment_includes_tags_and_fragments(self, amap):
        env = amap.environment(D1)
        assert env["ScoreClass"] == Q.high
        assert env["HR MC"] == 65.0
        assert env["HitRatio"] == 0.8

    def test_environment_variable_bindings(self, amap):
        env = amap.environment(D1, {"coverage": Q.Coverage})
        assert env["coverage"] == 0.5

    def test_environment_missing_binding_is_none(self, amap):
        env = amap.environment(D2, {"coverage": Q.Coverage})
        assert env["coverage"] is None


class TestStructural:
    def test_merge_union_and_override(self, amap):
        other = AnnotationMap([D3])
        other.set_evidence(D1, Q.HitRatio, 0.99)
        amap.merge(other)
        assert amap.items() == [D1, D2, D3]
        assert amap.get_evidence(D1, Q.HitRatio) == 0.99

    def test_subset_preserves_order_and_content(self, amap):
        sub = amap.subset([D2, D1])
        assert sub.items() == [D1, D2]
        assert sub.get_tag(D1, "HR MC").plain() == 65.0

    def test_subset_excludes_others(self, amap):
        sub = amap.subset([D2])
        assert D1 not in sub

    def test_copy_is_deep_enough(self, amap):
        clone = amap.copy()
        clone.set_evidence(D1, Q.HitRatio, 0.0)
        assert amap.get_evidence(D1, Q.HitRatio) == 0.8

    def test_equality(self, amap):
        assert amap.copy() == amap
        other = amap.copy()
        other.set_tag(D2, "x", 1)
        assert other != amap
