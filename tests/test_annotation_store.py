"""Tests for RDF-backed annotation repositories and the manager."""

import pytest

from repro.annotation import AnnotationMap, AnnotationStore, RepositoryManager
from repro.annotation.functions import CallableAnnotationFunction
from repro.rdf import Literal, Q, RDF, URIRef
from repro.rdf.lsid import uniprot_lsid

D1 = uniprot_lsid("P00001")
D2 = uniprot_lsid("P00002")


@pytest.fixture()
def store(iq_model):
    return AnnotationStore("test", iq_model=iq_model)


class TestAnnotate:
    def test_lookup_returns_value(self, store):
        store.annotate(D1, Q.HitRatio, 0.8)
        assert store.lookup(D1, Q.HitRatio) == 0.8

    def test_lookup_missing_is_none(self, store):
        assert store.lookup(D1, Q.HitRatio) is None

    def test_annotation_is_rdf_per_fig2(self, store, iq_model):
        node = store.annotate(
            D1, Q.HitRatio, 0.8,
            data_class=iq_model.ImprintHitEntry,
            function=iq_model.ImprintOutputAnnotation,
        )
        g = store.graph
        assert (D1, Q["contains-evidence"], node) in g
        assert (node, RDF.type, Q.HitRatio) in g
        assert (node, Q.value, Literal(0.8)) in g
        assert (node, Q.computedBy, iq_model.ImprintOutputAnnotation) in g
        assert (D1, RDF.type, iq_model.ImprintHitEntry) in g

    def test_rejects_undeclared_evidence_type(self, store):
        with pytest.raises(ValueError):
            store.annotate(D1, Q.NotEvidence, 1)

    def test_untyped_store_accepts_anything(self):
        free = AnnotationStore("free")
        free.annotate(D1, Q.Whatever, 1)
        assert free.lookup(D1, Q.Whatever) == 1

    def test_lookup_all(self, store):
        store.annotate(D1, Q.HitRatio, 0.8)
        store.annotate(D1, Q.Coverage, 0.5)
        assert store.lookup_all(D1) == {Q.HitRatio: 0.8, Q.Coverage: 0.5}

    def test_remove_annotations(self, store):
        store.annotate(D1, Q.HitRatio, 0.8)
        store.annotate(D2, Q.HitRatio, 0.3)
        store.remove_annotations(D1)
        assert store.lookup(D1, Q.HitRatio) is None
        assert store.lookup(D2, Q.HitRatio) == 0.3


class TestMapIntegration:
    def test_annotate_map_roundtrip(self, store):
        amap = AnnotationMap([D1, D2])
        amap.set_evidence(D1, Q.HitRatio, 0.9)
        amap.set_evidence(D2, Q.Coverage, 0.4)
        written = store.annotate_map(amap)
        assert written == 2
        out = store.enrich(AnnotationMap(), [D1, D2], [Q.HitRatio, Q.Coverage])
        assert out.get_evidence(D1, Q.HitRatio) == 0.9
        assert out.get_evidence(D2, Q.Coverage) == 0.4
        assert out.get_evidence(D1, Q.Coverage) is None

    def test_annotate_map_skips_nulls(self, store):
        amap = AnnotationMap([D1])
        amap.set_evidence(D1, Q.HitRatio, None)
        assert store.annotate_map(amap) == 0

    def test_annotated_items_and_types(self, store):
        store.annotate(D1, Q.HitRatio, 0.8)
        assert store.annotated_items() == {D1}
        assert store.evidence_types_present() == {Q.HitRatio}


class TestPersistence:
    def test_save_load_roundtrip(self, store, iq_model):
        store.annotate(D1, Q.HitRatio, 0.8)
        text = store.save()
        fresh = AnnotationStore("test", iq_model=iq_model)
        fresh.load(text)
        assert fresh.lookup(D1, Q.HitRatio) == 0.8

    def test_load_keeps_node_ids_fresh(self, store, iq_model):
        store.annotate(D1, Q.HitRatio, 0.8)
        fresh = AnnotationStore("test", iq_model=iq_model)
        fresh.load(store.save())
        fresh.annotate(D2, Q.HitRatio, 0.2)
        # both values retrievable: no node-id collision overwrote anything
        assert fresh.lookup(D1, Q.HitRatio) == 0.8
        assert fresh.lookup(D2, Q.HitRatio) == 0.2


class TestRepositoryManager:
    def test_cache_exists_by_default(self):
        manager = RepositoryManager()
        cache = manager.repository("cache")
        assert not cache.persistent

    def test_create_and_get(self):
        manager = RepositoryManager()
        manager.create("curated", persistent=True)
        assert manager.repository("curated").persistent
        assert "curated" in manager

    def test_duplicate_create_rejected(self):
        manager = RepositoryManager()
        with pytest.raises(ValueError):
            manager.create("cache")

    def test_unknown_repository_error_lists_known(self):
        manager = RepositoryManager()
        with pytest.raises(KeyError, match="cache"):
            manager.repository("nope")

    def test_clear_transient_only(self):
        manager = RepositoryManager()
        manager.create("curated", persistent=True)
        manager.repository("cache").annotate(D1, Q.HitRatio, 1)
        manager.repository("curated").annotate(D1, Q.HitRatio, 1)
        manager.clear_transient()
        assert manager.repository("cache").lookup(D1, Q.HitRatio) is None
        assert manager.repository("curated").lookup(D1, Q.HitRatio) == 1

    def test_cache_cannot_be_dropped(self):
        manager = RepositoryManager()
        with pytest.raises(ValueError):
            manager.drop("cache")


class TestAnnotationFunctions:
    def test_callable_adapter(self, store):
        fn = CallableAnnotationFunction(
            Q["Imprint-output-annotation"],
            [Q.HitRatio],
            lambda item, ctx: {Q.HitRatio: 0.7},
        )
        amap = fn.annotate_into(store, [D1], {Q.HitRatio})
        assert amap.get_evidence(D1, Q.HitRatio) == 0.7
        assert store.lookup(D1, Q.HitRatio) == 0.7

    def test_unsupported_evidence_rejected(self, store):
        fn = CallableAnnotationFunction(
            Q["Imprint-output-annotation"],
            [Q.HitRatio],
            lambda item, ctx: {},
        )
        with pytest.raises(ValueError):
            fn.annotate_into(store, [D1], {Q.Coverage})

    def test_restricts_to_requested_evidence(self):
        fn = CallableAnnotationFunction(
            Q["Imprint-output-annotation"],
            [Q.HitRatio, Q.Coverage],
            lambda item, ctx: {Q.HitRatio: 1.0, Q.Coverage: 0.5},
        )
        amap = fn.annotate([D1], {Q.HitRatio})
        assert amap.get_evidence(D1, Q.Coverage) is None
