"""Tests for the binding model and semantic registry (paper Secs. 3, 6)."""

import pytest

from repro.binding import (
    BindingError,
    BindingRegistry,
    DataResource,
    LocatorType,
    ServiceResource,
)
from repro.rdf import Q, QB, RDF


class TestResources:
    def test_service_resource(self):
        resource = ServiceResource("http://host/svc")
        assert resource.endpoint == "http://host/svc"
        assert resource.is_service()

    def test_data_resource_kinds(self):
        for kind in (LocatorType.XPATH, LocatorType.SQL, LocatorType.URL):
            resource = DataResource("loc", kind)
            assert not resource.is_service()

    def test_data_resource_rejects_endpoint_kind(self):
        with pytest.raises(ValueError):
            DataResource("x", LocatorType.SERVICE_ENDPOINT)


class TestRegistry:
    def test_bind_and_resolve_service(self, iq_model):
        registry = BindingRegistry(iq_model.ontology)
        registry.bind_service(Q.UniversalPIScore2, "http://host/upis2")
        assert registry.resolve_endpoint(Q.UniversalPIScore2) == "http://host/upis2"

    def test_bindings_are_rdf(self, iq_model):
        registry = BindingRegistry(iq_model.ontology)
        registry.bind_service(Q.HRScore, "http://host/hr")
        assert (None, RDF.type, QB.Binding) in registry.graph
        assert (None, QB.concept, Q.HRScore) in registry.graph

    def test_unbound_concept_raises(self, iq_model):
        registry = BindingRegistry(iq_model.ontology)
        with pytest.raises(BindingError):
            registry.resolve(Q.HRScore)

    def test_inheritance_from_superclass(self, iq_model):
        # UniversalPIScore2 subclasses UniversalPIScore: binding the
        # parent serves unbound specialisations (paper: user-defined
        # specialisations of operator classes).
        registry = BindingRegistry(iq_model.ontology)
        registry.bind_service(Q.UniversalPIScore, "http://host/upis")
        assert (
            registry.resolve_endpoint(Q.UniversalPIScore2) == "http://host/upis"
        )

    def test_nearest_binding_wins(self, iq_model):
        registry = BindingRegistry(iq_model.ontology)
        registry.bind_service(Q.UniversalPIScore, "http://host/parent")
        registry.bind_service(Q.UniversalPIScore2, "http://host/child")
        assert (
            registry.resolve_endpoint(Q.UniversalPIScore2) == "http://host/child"
        )

    def test_ambiguous_direct_bindings_raise(self, iq_model):
        registry = BindingRegistry(iq_model.ontology)
        registry.bind_service(Q.HRScore, "http://a")
        registry.bind_service(Q.HRScore, "http://b")
        with pytest.raises(BindingError):
            registry.resolve(Q.HRScore)

    def test_data_binding_not_a_service(self, iq_model):
        registry = BindingRegistry(iq_model.ontology)
        registry.bind_data(Q.EvidenceCode, "SELECT ...", LocatorType.SQL)
        with pytest.raises(BindingError):
            registry.resolve_endpoint(Q.EvidenceCode)

    def test_is_bound(self, iq_model):
        registry = BindingRegistry(iq_model.ontology)
        assert not registry.is_bound(Q.HRScore)
        registry.bind_service(Q.HRScore, "http://a")
        assert registry.is_bound(Q.HRScore)

    def test_without_ontology_no_inheritance(self):
        registry = BindingRegistry()
        registry.bind_service(Q.UniversalPIScore, "http://host/upis")
        with pytest.raises(BindingError):
            registry.resolve(Q.UniversalPIScore2)
