"""Randomized compile differentials: optimized vs reference pipeline.

The staged compiler's contract (``repro.qv.passes``): with default
options every workflow output — including the serialized annotation
map — is byte-identical to the single-shot reference translation; with
``observed_outputs`` declared, the observed outputs still are.  This
file drives a seeded generator over the space of views the proteomics
scenario can execute (annotator subsets, QA mixes with fusable
duplicates, filter/splitter actions with random conditions) and checks
that contract under both the serial and the wavefront enactor, plus
the invocation-saving guarantee on the deterministic pushdown
workload.
"""

import random

import pytest

from repro.core.ispider import LiveImprintAnnotator, ResultSetHolder
from repro.qv import parse_quality_view
from repro.qv.diff import same_compiled_view
from repro.qv.passes import CompileOptions
from repro.runtime.parallel import ParallelEnactor
from repro.services.messages import AnnotationMapMessage
from repro.workflow.enactor import Enactor

from tests.test_compiler_ir import OBSERVED, PUSHDOWN_XML, Counter

N_VIEWS = 50
SEED = 20260806

#: QA types with the variable names their operators require.
QA_TYPES = {
    "q:HRScore": ("hitRatio",),
    "q:UniversalPIScore": ("hitRatio", "coverage"),
    "q:UniversalPIScore2": ("hitRatio", "coverage", "peptidesCount"),
    "q:PIScoreClassifier": ("coverage", "hitRatio"),
}
VARIABLE_EVIDENCE = {
    "hitRatio": "q:hitRatio",
    "coverage": "q:coverage",
    "peptidesCount": "q:peptidesCount",
}
EXTRA_EVIDENCE = ("q:masses",)


def _escape(text):
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _random_condition(rng, score_tags, class_tags):
    atoms = []
    for tag in score_tags:
        atoms.append(f"{tag} > {rng.choice([10, 25, 40, 60])}")
    for tag in class_tags:
        atoms.append(f"{tag} in {rng.choice(['q:high', 'q:high, q:mid'])}")
    atoms.append(f"hitRatio > 0.{rng.randint(1, 7)}")
    picked = rng.sample(atoms, min(len(atoms), rng.randint(1, 2)))
    return f" {rng.choice(['and', 'or'])} ".join(picked)


def generate_view(rng, index):
    """One random-but-valid view over the proteomics services."""
    lines = [f'<QualityView name="rand-{index}">']

    n_assertions = rng.randint(1, 3)
    assertions = []
    score_tags, class_tags = [], []
    for i in range(n_assertions):
        qa_type = rng.choice(sorted(QA_TYPES))
        tag = f"T{i}"
        if qa_type == "q:PIScoreClassifier":
            class_tags.append(tag)
            syn = ('tagSynType="q:class" '
                   'tagSemType="q:PIScoreClassification"')
        else:
            score_tags.append(tag)
            syn = 'tagSynType="q:score"'
        assertions.append((f"qa {i}", qa_type, tag, syn))

    needed = {
        VARIABLE_EVIDENCE[v] for _, qa_type, _, _ in assertions
        for v in QA_TYPES[qa_type]
    }
    # The first annotator covers everything the QAs read (plus random
    # extras); an optional second declares a random subset — often
    # fully unconsumed, which is what evidence pruning looks for.
    first = sorted(needed | set(rng.sample(EXTRA_EVIDENCE, rng.randint(0, 1))))
    pool = sorted(set(VARIABLE_EVIDENCE.values()) | set(EXTRA_EVIDENCE))
    annotators = [("ImprintOutputAnnotator", first)]
    if rng.random() < 0.5:
        annotators.append(
            ("EldpAnnotator", sorted(rng.sample(pool, rng.randint(1, 2))))
        )
    for name, evidence in annotators:
        lines.append(
            f'<Annotator serviceName="{name}" '
            f'serviceType="q:Imprint-output-annotation">'
        )
        lines.append('<variables repositoryRef="cache" persistent="false">')
        lines.extend(f'<var evidence="{e}"/>' for e in evidence)
        lines.append("</variables></Annotator>")

    for name, qa_type, tag, syn in assertions:
        lines.append(
            f'<QualityAssertion serviceName="{name}" '
            f'serviceType="{qa_type}" tagName="{tag}" {syn}>'
        )
        lines.append('<variables repositoryRef="cache">')
        lines.extend(
            f'<var variableName="{v}" evidence="{VARIABLE_EVIDENCE[v]}"/>'
            for v in QA_TYPES[qa_type]
        )
        lines.append("</variables></QualityAssertion>")

    for j in range(rng.randint(1, 2)):
        condition = _escape(_random_condition(rng, score_tags, class_tags))
        if rng.random() < 0.7:
            lines.append(
                f'<action name="act {j}"><filter>'
                f"<condition>{condition}</condition>"
                f"</filter></action>"
            )
        else:
            other = _escape(_random_condition(rng, score_tags, class_tags))
            lines.append(
                f'<action name="act {j}"><splitter>'
                f'<group name="strong"><condition>{condition}</condition>'
                f"</group>"
                f'<group name="weak"><condition>{other}</condition></group>'
                f"</splitter></action>"
            )
    lines.append("</QualityView>")
    return "\n".join(lines)


def snapshot(workflow, outputs, observed=None):
    """Comparable, serialized view of a run's (observed) outputs."""
    snap = {}
    for name in workflow.outputs:
        if observed is not None and name not in observed:
            continue
        value = outputs.get(name)
        if name == "annotationMap":
            snap[name] = AnnotationMapMessage(value).to_xml()
        else:
            snap[name] = list(value or [])
    return snap


def run(framework, workflow, items, enactor):
    framework.repositories.clear_transient()
    return enactor.run(workflow, {"dataSet": list(items)})


@pytest.fixture()
def loaded_framework(framework, result_set):
    holder = ResultSetHolder()
    holder.set(result_set)
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", LiveImprintAnnotator(holder)
    )
    return framework


@pytest.fixture()
def items(result_set, imprint_runs):
    return list(result_set.items_of_run(imprint_runs[0].run_id))[:10]


class TestRandomizedDifferential:
    def test_corpus_byte_equal_under_both_enactors(
        self, loaded_framework, items
    ):
        rng = random.Random(SEED)
        compiler = loaded_framework.compiler
        serial, wavefront = Enactor(), ParallelEnactor(max_workers=4)
        fired = set()
        observed_arms = 0
        for index in range(N_VIEWS):
            spec = parse_quality_view(generate_view(rng, index))
            reference = compiler.compile(spec, optimize=False)
            optimized, report = compiler.compile_with_report(spec)
            fired.update(report.fired())
            assert same_compiled_view(reference, optimized), index

            baseline = snapshot(
                reference, run(loaded_framework, reference, items, serial)
            )
            for enactor in (serial, wavefront):
                outputs = run(loaded_framework, optimized, items, enactor)
                assert snapshot(optimized, outputs) == baseline, (
                    f"view {index} diverged under "
                    f"{type(enactor).__name__}"
                )

            # Declare only the action verdicts observed: the aggressive
            # passes may now rewrite the plan, but those outputs must
            # still match the reference run exactly.
            observed = frozenset(
                name for name in reference.outputs if name != "annotationMap"
            )
            aggressive, report = compiler.compile_with_report(
                spec, options=CompileOptions(observed_outputs=observed)
            )
            fired.update(report.fired())
            observed_arms += 1
            expected = {k: v for k, v in baseline.items() if k in observed}
            for enactor in (serial, wavefront):
                outputs = run(loaded_framework, aggressive, items, enactor)
                assert snapshot(aggressive, outputs, observed) == expected, (
                    f"view {index} (observed mode) diverged under "
                    f"{type(enactor).__name__}"
                )
        # the corpus must actually exercise the optimizer
        assert {"qa-fusion", "enrichment-batching"} <= fired, fired
        assert observed_arms == N_VIEWS


class TestPushdownWorkload:
    """The deterministic workload behind the E17 acceptance numbers."""

    def test_all_four_passes_fire(self, loaded_framework):
        spec = parse_quality_view(PUSHDOWN_XML)
        _, report = loaded_framework.compiler.compile_with_report(
            spec, options=OBSERVED
        )
        assert report.fired() == [
            "evidence-pruning", "qa-fusion", "filter-pushdown",
            "enrichment-batching",
        ]

    def test_invocation_saving_with_equal_verdicts(
        self, loaded_framework, items
    ):
        spec = parse_quality_view(PUSHDOWN_XML)
        counter = Counter()
        for service in loaded_framework.services:
            service.fault_injector = counter
        reference = loaded_framework.compiler.compile(spec, optimize=False)
        optimized = loaded_framework.compiler.compile(spec, options=OBSERVED)

        for enactor in (Enactor(), ParallelEnactor(max_workers=4)):
            counter.n = 0
            ref_out = run(loaded_framework, reference, items, enactor)
            ref_calls = counter.n
            counter.n = 0
            opt_out = run(loaded_framework, optimized, items, enactor)
            opt_calls = counter.n
            assert (
                opt_out["keep_good_accepted"] == ref_out["keep_good_accepted"]
            )
            saving = 1 - opt_calls / ref_calls
            assert saving >= 0.25, (
                f"{type(enactor).__name__}: {ref_calls} -> {opt_calls} "
                f"({saving:.0%} saved)"
            )
