"""Tests for the staged compiler: frontend IR, passes, backend, schedule.

The reference pipeline (``optimize=False``) is the differential
baseline; these tests pin down the staged pipeline's own machinery —
lowering and canonical signatures, pass toggling and gating, the fused
/ gated / batched processors the backend emits, and the wavefront
schedule annotation the parallel enactor consumes.  End-to-end
output equivalence over randomized views lives in
``tests/test_compile_differential.py``.
"""

import pytest

from repro.core.ispider import (
    LiveImprintAnnotator,
    ResultSetHolder,
    example_quality_view_xml,
)
from repro.qv import parse_quality_view
from repro.qv.backend import (
    FILTER_GATE,
    BatchEnrichmentProcessor,
    FilterGateProcessor,
    FusedAssertionProcessor,
    emit_workflow,
)
from repro.qv.compiler import (
    CONSOLIDATE,
    DATA_ENRICHMENT,
    AssertionProcessor,
    CompilationError,
    DataEnrichmentProcessor,
)
from repro.qv.diff import same_compiled_view
from repro.qv.ir import canonical_condition, lower_view, view_fingerprint
from repro.qv.passes import PASS_NAMES, CompileOptions, default_passes
from repro.rdf import Q
from repro.services.messages import AnnotationMapMessage
from repro.workflow.enactor import Enactor
from repro.workflow.model import Workflow, WorkflowError
from repro.workflow.processors import PythonProcessor
from repro.runtime.parallel import ParallelEnactor

#: A workload shaped so that *every* pass can fire: a second annotator
#: producing evidence nothing consumes (pruning), two assertions on the
#: same deployed HRScore service (fusion), and a pure-filter action
#: whose leading conjunct reads a single early tag (pushdown).
PUSHDOWN_XML = """
<QualityView name="pushdown-workload">
  <Annotator serviceName="ImprintOutputAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:coverage"/>
      <var evidence="q:hitRatio"/>
      <var evidence="q:peptidesCount"/>
    </variables>
  </Annotator>
  <Annotator serviceName="EldpAnnotator"
             serviceType="q:Imprint-output-annotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:masses"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="HR score" serviceType="q:HRScore"
                    tagName="HR" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="HR score b" serviceType="q:HRScore"
                    tagName="HRB" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:hitRatio"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="HR MC score"
                    serviceType="q:UniversalPIScore2"
                    tagName="HRMC" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:coverage"/>
      <var variableName="hitRatio" evidence="q:hitRatio"/>
      <var variableName="peptidesCount" evidence="q:peptidesCount"/>
    </variables>
  </QualityAssertion>
  <action name="keep good">
    <filter><condition>HR &gt; 40 and HRMC &gt; 30</condition></filter>
  </action>
</QualityView>
"""

#: Only the filter verdicts are consumed: unlocks pushdown + pruning.
OBSERVED = CompileOptions(observed_outputs=frozenset({"keep_good_accepted"}))


class Counter:
    """Counts service round trips via the fault-injector hook."""

    def __init__(self):
        self.n = 0

    def on_invocation(self, service):
        self.n += 1


@pytest.fixture()
def loaded_framework(framework, result_set):
    holder = ResultSetHolder()
    holder.set(result_set)
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", LiveImprintAnnotator(holder)
    )
    return framework


@pytest.fixture()
def items(result_set, imprint_runs):
    return list(result_set.items_of_run(imprint_runs[0].run_id))


class TestFrontendLowering:
    def test_example_view_inventory(self, loaded_framework):
        spec = parse_quality_view(example_quality_view_xml())
        ir = lower_view(spec, loaded_framework.compiler)
        assert [a.name for a in ir.annotators] == ["ImprintOutputAnnotator"]
        assert [b.name for b in ir.bundles] == [
            "HR MC score", "HR score", "PIScoreClassifier"
        ]
        assert all(not b.fused for b in ir.bundles)
        assert [a.name for a in ir.actions] == ["filter top k score"]
        assert ir.gate is None
        assert ir.enrichment.plan is None
        # evidence URIs are canonicalised during lowering
        assert Q.HitRatio in ir.enrichment.columns

    def test_verification_absorbed_into_frontend(self, loaded_framework):
        spec = parse_quality_view(example_quality_view_xml())
        ir = lower_view(spec, loaded_framework.compiler)
        assert any("verified against the IQ model" in n
                   for n in ir.frontend_notes)
        bad = parse_quality_view(
            example_quality_view_xml().replace("q:hitRatio", "q:Bogus")
        )
        with pytest.raises(Exception):
            lower_view(bad, loaded_framework.compiler)

    def test_assertion_indices_keep_declaration_order(self, loaded_framework):
        spec = parse_quality_view(PUSHDOWN_XML)
        ir = lower_view(spec, loaded_framework.compiler)
        assert [(m.index, m.name) for m in ir.assertions()] == [
            (0, "HR score"), (1, "HR score b"), (2, "HR MC score")
        ]

    def test_duplicate_assertion_names_rejected(self, loaded_framework):
        spec = parse_quality_view(example_quality_view_xml())
        spec.assertions.append(spec.assertions[0])
        with pytest.raises(CompilationError, match="share the name"):
            lower_view(spec, loaded_framework.compiler, validate=False)

    def test_fingerprint_stable_under_formatting(self):
        a = parse_quality_view(
            example_quality_view_xml("ScoreClass in q:high")
        )
        b = parse_quality_view(
            example_quality_view_xml("ScoreClass   in\n      q:high")
        )
        assert view_fingerprint(a) == view_fingerprint(b)

    def test_fingerprint_tracks_semantic_edits(self):
        a = parse_quality_view(example_quality_view_xml("ScoreClass in q:high"))
        b = parse_quality_view(example_quality_view_xml("ScoreClass in q:mid"))
        assert view_fingerprint(a) != view_fingerprint(b)

    def test_canonical_condition_round_trip(self):
        assert canonical_condition("HR   >   40") == canonical_condition(
            "HR > 40"
        )
        # unparseable text falls back to whitespace collapsing
        assert canonical_condition("not ) a condition") == "not ) a condition"


class TestPassToggles:
    def test_pipeline_has_the_documented_passes(self):
        assert tuple(p.name for p in default_passes(CompileOptions())) == (
            PASS_NAMES
        )

    def test_unknown_disabled_pass_rejected(self):
        with pytest.raises(CompilationError, match="no-such-pass"):
            default_passes(
                CompileOptions(disabled_passes=frozenset({"no-such-pass"}))
            )

    def test_disabled_pass_is_not_run(self, loaded_framework):
        spec = parse_quality_view(example_quality_view_xml())
        options = CompileOptions(
            disabled_passes=frozenset({"enrichment-batching"})
        )
        workflow, report = loaded_framework.compiler.compile_with_report(
            spec, options=options
        )
        assert "enrichment-batching" not in [run.name for run in report.runs]
        de = workflow.processors[DATA_ENRICHMENT]
        assert type(de) is DataEnrichmentProcessor

    def test_default_contract_keeps_unsound_passes_off(self, loaded_framework):
        """annotationMap observed => no pruning, no pushdown."""
        spec = parse_quality_view(PUSHDOWN_XML)
        workflow, report = loaded_framework.compiler.compile_with_report(spec)
        assert "evidence-pruning" not in report.fired()
        assert "filter-pushdown" not in report.fired()
        assert "qa-fusion" in report.fired()
        assert "EldpAnnotator" in workflow.processors
        assert FILTER_GATE not in workflow.processors

    def test_observed_contract_arms_all_passes(self, loaded_framework):
        spec = parse_quality_view(PUSHDOWN_XML)
        workflow, report = loaded_framework.compiler.compile_with_report(
            spec, options=OBSERVED
        )
        assert report.fired() == list(PASS_NAMES)
        text = report.render()
        assert "fired" in text and "frontend:" in text

    def test_reference_pipeline_rejects_options(self, loaded_framework):
        spec = parse_quality_view(example_quality_view_xml())
        with pytest.raises(CompilationError, match="optimize=True"):
            loaded_framework.compiler.compile(
                spec, optimize=False, options=CompileOptions()
            )


class TestFusionEmission:
    def test_fused_processor_shape(self, loaded_framework):
        spec = parse_quality_view(PUSHDOWN_XML)
        workflow = loaded_framework.compiler.compile(spec)
        fused = workflow.processors["HR score + HR score b"]
        assert isinstance(fused, FusedAssertionProcessor)
        assert set(fused.output_ports) == {"annotationMap0", "annotationMap1"}
        assert [c["tag_name"] for c in fused.member_configs] == ["HR", "HRB"]
        # the unfusable third QA stays a standalone processor
        assert isinstance(
            workflow.processors["HR MC score"], AssertionProcessor
        )

    def test_consolidation_keeps_declaration_slots(self, loaded_framework):
        spec = parse_quality_view(PUSHDOWN_XML)
        workflow = loaded_framework.compiler.compile(spec)
        feeders = {
            link.sink.port: (link.source.processor, link.source.port)
            for link in workflow.incoming_links(CONSOLIDATE)
        }
        assert feeders == {
            "map0": ("HR score + HR score b", "annotationMap0"),
            "map1": ("HR score + HR score b", "annotationMap1"),
            "map2": ("HR MC score", "annotationMap"),
        }

    def test_fusion_saves_one_invocation_and_stays_byte_equal(
        self, loaded_framework, items
    ):
        spec = parse_quality_view(PUSHDOWN_XML)
        counter = Counter()
        for service in loaded_framework.services:
            service.fault_injector = counter

        reference = loaded_framework.compiler.compile(spec, optimize=False)
        optimized = loaded_framework.compiler.compile(spec)

        loaded_framework.repositories.clear_transient()
        counter.n = 0
        ref_out = Enactor().run(reference, {"dataSet": items})
        ref_calls = counter.n

        loaded_framework.repositories.clear_transient()
        counter.n = 0
        opt_out = Enactor().run(optimized, {"dataSet": items})
        opt_calls = counter.n

        assert opt_calls == ref_calls - 1  # the two HRScore QAs fused
        assert (
            AnnotationMapMessage(opt_out["annotationMap"]).to_xml()
            == AnnotationMapMessage(ref_out["annotationMap"]).to_xml()
        )
        assert opt_out["keep_good_accepted"] == ref_out["keep_good_accepted"]


class TestFilterGateEmission:
    def compile_observed(self, framework):
        spec = parse_quality_view(PUSHDOWN_XML)
        return framework.compiler.compile_with_report(spec, options=OBSERVED)

    def test_gate_present_and_offline(self, loaded_framework):
        workflow, _ = self.compile_observed(loaded_framework)
        gate = workflow.processors[FILTER_GATE]
        assert isinstance(gate, FilterGateProcessor)
        assert gate.predicate == "HR > 40"
        # no remote call behind the gate: resilience must leave it alone
        assert not hasattr(gate, "service")

    def test_gated_assertion_skips_empty_data_sets(self, loaded_framework):
        workflow, _ = self.compile_observed(loaded_framework)
        fused = workflow.processors["HR score + HR score b"]
        gated = workflow.processors["HR MC score"]
        assert fused.skip_on_empty is False  # the producer runs ungated
        assert gated.skip_on_empty is True
        feeders = {
            link.sink.port: link.source.processor
            for link in workflow.incoming_links("HR MC score")
        }
        assert feeders["dataSet"] == FILTER_GATE

    def test_pruning_removed_the_dead_annotator(self, loaded_framework):
        workflow, report = self.compile_observed(loaded_framework)
        assert "EldpAnnotator" not in workflow.processors
        de = workflow.processors[DATA_ENRICHMENT]
        assert isinstance(de, BatchEnrichmentProcessor)
        assert Q.Masses not in de.sources
        notes = [n for run in report.runs for n in run.notes]
        assert any("EldpAnnotator" in note for note in notes)

    def test_pushdown_refuses_collection_relative_qas(self, loaded_framework):
        """PIScoreClassifier scores against the whole collection, so it
        cannot be gated: the pass must leave the plan alone."""
        text = PUSHDOWN_XML.replace(
            'serviceName="HR MC score"\n                    '
            'serviceType="q:UniversalPIScore2"\n                    '
            'tagName="HRMC" tagSynType="q:score"',
            'serviceName="HR MC score" serviceType="q:PIScoreClassifier"\n'
            '                    tagName="HRMC" tagSynType="q:class"\n'
            '                    tagSemType="q:PIScoreClassification"',
        )
        text = text.replace(
            "<condition>HR &gt; 40 and HRMC &gt; 30</condition>",
            "<condition>HR &gt; 40 and HRMC in q:high</condition>",
        )
        spec = parse_quality_view(text)
        workflow, report = loaded_framework.compiler.compile_with_report(
            spec, options=OBSERVED
        )
        assert "filter-pushdown" not in report.fired()
        assert FILTER_GATE not in workflow.processors


class TestWavefrontSchedule:
    def test_compiled_workflow_carries_a_schedule(self, loaded_framework):
        spec = parse_quality_view(example_quality_view_xml())
        workflow = loaded_framework.compiler.compile(spec)
        schedule = workflow.schedule
        assert schedule is not None
        assert schedule.stages == (
            ("ImprintOutputAnnotator",),
            (DATA_ENRICHMENT,),
            ("HR MC score", "HR score", "PIScoreClassifier"),
            (CONSOLIDATE,),
            ("filter top k score",),
        )
        assert schedule.dependencies[DATA_ENRICHMENT] == frozenset(
            {"ImprintOutputAnnotator"}
        )
        assert CONSOLIDATE in schedule.dependents["HR score"]

    def test_structural_edits_invalidate_the_schedule(self, loaded_framework):
        spec = parse_quality_view(example_quality_view_xml())
        workflow = loaded_framework.compiler.compile(spec)
        assert workflow.schedule is not None
        workflow.add_processor(
            PythonProcessor("extra", lambda: 0, output_ports={"out": 0})
        )
        assert workflow.schedule is None
        refreshed = workflow.ensure_schedule()
        assert "extra" in refreshed.dependencies
        assert workflow.schedule is refreshed

    def test_cycles_are_rejected(self):
        workflow = Workflow("cyclic")
        for name in ("a", "b"):
            workflow.add_processor(PythonProcessor(name, lambda: 0))
        workflow.control("a", "b")
        workflow.control("b", "a")
        with pytest.raises(WorkflowError):
            workflow.compute_schedule()

    def test_parallel_enactor_consumes_the_cached_schedule(
        self, loaded_framework, items, monkeypatch
    ):
        spec = parse_quality_view(example_quality_view_xml())
        workflow = loaded_framework.compiler.compile(spec)
        assert workflow.schedule is not None

        def boom():
            raise AssertionError("schedule should have been reused")

        monkeypatch.setattr(workflow, "compute_schedule", boom)
        outputs = ParallelEnactor(max_workers=4).run(
            workflow, {"dataSet": items}
        )
        assert outputs["annotationMap"] is not None

    def test_parallel_enactor_recomputes_stale_schedules(self, items):
        workflow = Workflow("hand-built")
        workflow.add_input("xs")
        workflow.add_output("ys")
        workflow.add_processor(
            PythonProcessor("double", lambda xs: [x * 2 for x in xs],
                            input_ports={"xs": 1}, output_ports={"ys": 1})
        )
        workflow.connect("", "xs", "double", "xs")
        workflow.connect("double", "ys", "", "ys")
        assert workflow.schedule is None  # never compiled: no schedule
        outputs = ParallelEnactor(max_workers=2).run(workflow, {"xs": [1, 2]})
        assert outputs["ys"] == [2, 4]


class TestProvenance:
    def test_both_pipelines_stamp_the_same_fingerprint(self, loaded_framework):
        spec = parse_quality_view(PUSHDOWN_XML)
        reference = loaded_framework.compiler.compile(spec, optimize=False)
        optimized = loaded_framework.compiler.compile(spec, options=OBSERVED)
        assert reference.compile_mode == "reference"
        assert optimized.compile_mode == "optimized"
        assert same_compiled_view(reference, optimized)

    def test_different_views_do_not_compare_equal(self, loaded_framework):
        a = loaded_framework.compiler.compile(
            parse_quality_view(PUSHDOWN_XML)
        )
        b = loaded_framework.compiler.compile(
            parse_quality_view(example_quality_view_xml())
        )
        assert not same_compiled_view(a, b)

    def test_hand_built_workflows_have_no_provenance(self, loaded_framework):
        compiled = loaded_framework.compiler.compile(
            parse_quality_view(example_quality_view_xml())
        )
        assert not same_compiled_view(Workflow("adhoc"), compiled)
        assert not same_compiled_view(Workflow("adhoc"), Workflow("adhoc"))

    def test_quality_view_compile_forwards_options(self, loaded_framework):
        view = loaded_framework.quality_view(PUSHDOWN_XML)
        assert view.compile(optimize=False).compile_mode == "reference"
        optimized = view.compile(force=True, options=OBSERVED)
        assert optimized.compile_mode == "optimized"
        assert FILTER_GATE in optimized.processors


class TestExplainCLI:
    def test_compile_explain_renders_passes_and_schedule(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "view.xml"
        path.write_text(PUSHDOWN_XML)
        assert main([
            "compile", str(path), "--explain",
            "--observed-outputs", "keep_good_accepted",
        ]) == 0
        out = capsys.readouterr().out
        assert "fingerprint:" in out
        for name in PASS_NAMES:
            assert name in out
        assert "wave 0:" in out
        assert FILTER_GATE in out

    def test_disable_pass_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "view.xml"
        path.write_text(PUSHDOWN_XML)
        assert main([
            "compile", str(path), "--explain",
            "--disable-pass", "qa-fusion",
        ]) == 0
        assert "qa-fusion" not in capsys.readouterr().out

    def test_explain_conflicts_with_no_optimize(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "view.xml"
        path.write_text(PUSHDOWN_XML)
        assert main(["compile", str(path), "--explain",
                     "--no-optimize"]) == 2
        assert "drop --no-optimize" in capsys.readouterr().err


class TestBackendFallbacks:
    def test_emit_workflow_without_assertions(self, loaded_framework):
        text = """
        <QualityView name="bare">
          <Annotator serviceName="ImprintOutputAnnotator"
                     serviceType="q:Imprint-output-annotation">
            <variables repositoryRef="cache" persistent="false">
              <var evidence="q:hitRatio"/>
            </variables>
          </Annotator>
        </QualityView>
        """
        ir = lower_view(parse_quality_view(text), loaded_framework.compiler)
        workflow = emit_workflow(ir)
        assert CONSOLIDATE in workflow.processors
        workflow.validate()
