"""Tests for the condition expression language (paper Secs. 4.1, 5.1)."""

import pytest

from repro.process.conditions import Condition, ConditionError, parse_condition
from repro.process.conditions.ast import referenced_names
from repro.rdf import Q


class TestParsing:
    def test_paper_example_parses(self):
        node = parse_condition("scoreClass in q:high, q:mid and HR MC > 20")
        assert referenced_names(node) == {"scoreClass", "HR MC"}

    def test_paper_braced_membership(self):
        node = parse_condition("PIScoreClassification IN { 'high', 'mid' }")
        assert referenced_names(node) == {"PIScoreClassification"}

    def test_relational_example(self):
        node = parse_condition("score < 3.2")
        assert referenced_names(node) == {"score"}

    def test_multiword_identifier(self):
        node = parse_condition("HR MC score >= 10")
        assert referenced_names(node) == {"HR MC score"}

    def test_empty_rejected(self):
        with pytest.raises(ConditionError):
            parse_condition("   ")

    @pytest.mark.parametrize(
        "bad",
        [
            "score >",
            "and score > 1",
            "score in",
            "(score > 1",
            "score > 1 )",
            "score ~ 3",
            "in q:high",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ConditionError):
            parse_condition(bad)

    def test_operator_normalisation(self):
        c = Condition("x == 1 or y <> 2")
        assert c.evaluate({"x": 1, "y": 2})
        assert c.evaluate({"x": 0, "y": 3})
        assert not c.evaluate({"x": 0, "y": 2})


class TestEvaluation:
    def test_paper_example_semantics(self):
        c = Condition("scoreClass in q:high, q:mid and HR MC > 20")
        assert c({"scoreClass": Q.high, "HR MC": 25.0})
        assert c({"scoreClass": Q.mid, "HR MC": 20.5})
        assert not c({"scoreClass": Q.low, "HR MC": 99.0})
        assert not c({"scoreClass": Q.high, "HR MC": 20.0})

    def test_uri_vs_string_fragment_match(self):
        c = Condition("cls = 'high'")
        assert c({"cls": Q.high})
        assert not c({"cls": Q.low})

    def test_membership_with_strings(self):
        c = Condition("cls in { 'high', 'mid' }")
        assert c({"cls": Q.mid})
        assert not c({"cls": Q.low})

    def test_not_in(self):
        c = Condition("cls not in q:low")
        assert c({"cls": Q.high})
        assert not c({"cls": Q.low})

    def test_numeric_comparisons(self):
        env = {"score": 10}
        assert Condition("score >= 10")(env)
        assert Condition("score <= 10")(env)
        assert not Condition("score != 10")(env)
        assert Condition("score > 9.5")(env)

    def test_negative_numbers(self):
        assert Condition("x > -2")({"x": 0})
        assert not Condition("x > -2")({"x": -3})

    def test_boolean_literals(self):
        assert Condition("flag = true")({"flag": True})
        assert Condition("flag = false")({"flag": False})
        assert not Condition("flag = true")({"flag": False})

    def test_not_operator(self):
        assert Condition("not (score > 5)")({"score": 3})

    def test_precedence_and_binds_tighter_than_or(self):
        c = Condition("a = 1 or b = 1 and c = 1")
        assert c({"a": 1, "b": 0, "c": 0})
        assert not c({"a": 0, "b": 1, "c": 0})

    def test_parentheses_override(self):
        c = Condition("(a = 1 or b = 1) and c = 1")
        assert not c({"a": 1, "b": 0, "c": 0})
        assert c({"a": 0, "b": 1, "c": 1})

    def test_bare_identifier_truthiness(self):
        c = Condition("flag")
        assert c({"flag": True})
        assert not c({"flag": False})
        assert not c({})


class TestNullSemantics:
    def test_missing_value_fails_comparisons(self):
        assert not Condition("score > 1")({})
        assert not Condition("score < 1")({})
        assert not Condition("score = 1")({})
        assert not Condition("score != 1")({})

    def test_missing_value_fails_membership(self):
        assert not Condition("cls in q:high")({})

    def test_is_null(self):
        assert Condition("score is null")({})
        assert not Condition("score is null")({"score": 1})

    def test_is_not_null(self):
        assert Condition("score is not null")({"score": 1})
        assert not Condition("score is not null")({})

    def test_explicit_null_literal(self):
        assert not Condition("score = null")({"score": 1})


class TestTypeHandling:
    def test_ordering_mixed_types_raises(self):
        with pytest.raises(ConditionError):
            Condition("x > 5")({"x": "high"})

    def test_bool_does_not_equal_number(self):
        assert not Condition("x = 1")({"x": True})

    def test_unknown_prefix_treated_as_opaque(self):
        c = Condition("cls = zz:thing")
        assert c({"cls": "zz:thing"})
