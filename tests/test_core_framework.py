"""Tests for the framework facade and quality-view lifecycle."""

import pytest

from repro.core import QuratorError, QuratorFramework
from repro.core.ispider import (
    LiveImprintAnnotator,
    ResultSetHolder,
    example_quality_view_xml,
)
from repro.rdf import Q


class TestFrameworkSetup:
    def test_standard_services_deployed_and_bound(self, framework):
        for name, concept in [
            ("UniversalPIScore2", Q.UniversalPIScore2),
            ("HRScore", Q.HRScore),
            ("PIScoreClassifier", Q.PIScoreClassifier),
        ]:
            assert name in framework.services
            assert framework.bindings.resolve_endpoint(concept).endswith(name)

    def test_register_standard_services_idempotent(self, framework):
        n = len(framework.services)
        framework.register_standard_services()
        assert len(framework.services) == n

    def test_cache_repository_available(self, framework):
        assert not framework.cache.persistent

    def test_create_repository(self, framework):
        store = framework.create_repository("curated", persistent=True)
        assert framework.repositories.repository("curated") is store
        assert framework.create_repository("curated") is store

    def test_scavenger_sees_deployed_services(self, framework):
        assert "HRScore" in framework.scavenger

    def test_annotation_service_deployment(self, framework):
        holder = ResultSetHolder()
        service = framework.deploy_annotation_service(
            "Ann", LiveImprintAnnotator(holder)
        )
        assert framework.services.by_name("Ann") is service
        assert framework.bindings.resolve_endpoint(
            Q["Imprint-output-annotation"]
        ) == service.endpoint
        assert "Ann" in framework.scavenger

    def test_end_execution_clears_cache(self, framework):
        from repro.rdf import URIRef

        framework.cache.annotate(URIRef("urn:lsid:t:d:1"), Q.HitRatio, 1.0)
        framework.end_execution()
        assert len(framework.cache) == 0


class TestQualityViewLifecycle:
    def test_parse_error_wrapped(self, framework):
        with pytest.raises(QuratorError, match="cannot parse"):
            framework.quality_view("<broken")

    def test_compile_error_wrapped(self, framework):
        # no annotation service deployed -> compilation must fail
        view = framework.quality_view(example_quality_view_xml())
        with pytest.raises(QuratorError, match="cannot compile"):
            view.compile()

    def test_compile_caches_workflow(self, framework):
        holder = ResultSetHolder()
        framework.deploy_annotation_service(
            "ImprintOutputAnnotator", LiveImprintAnnotator(holder)
        )
        view = framework.quality_view(example_quality_view_xml())
        assert view.compile() is view.compile()
        view.invalidate()
        assert view.compile() is not None

    def test_validation_report_accessible(self, framework):
        view = framework.quality_view(example_quality_view_xml())
        report = view.validate()
        assert report.ok()

    def test_view_xml_roundtrip(self, framework):
        view = framework.quality_view(example_quality_view_xml())
        again = framework.quality_view(view.to_xml())
        assert again.spec.tag_names() == view.spec.tag_names()
