"""Tests for decoy-FDR estimation, OWL disjointness, nested workflows."""

import pytest

from repro.ontology import Ontology, build_iq_model
from repro.proteomics import (
    Imprint,
    ImprintSettings,
    MassSpectrometer,
    SpectrometerSettings,
    generate_reference_database,
)
from repro.proteomics.decoy import (
    DecoyFDRAnnotator,
    DecoySearcher,
    FDREstimate,
    declare_decoy_evidence,
    decoy_database,
    estimate_fdr,
    hit_level_fdr,
    DECOY_FDR,
)
from repro.proteomics.results import ImprintResultSet
from repro.rdf import Namespace, Q, RDF, URIRef
from repro.workflow import (
    Enactor,
    NestedWorkflowProcessor,
    PythonProcessor,
    Workflow,
)

EX = Namespace("http://example.org/onto#")


class TestDecoyDatabase:
    @pytest.fixture(scope="class")
    def database(self):
        return generate_reference_database(60, seed=77)

    def test_decoy_mirrors_target(self, database):
        decoys = decoy_database(database)
        assert len(decoys) == len(database)
        original = database.get("P00001")
        decoy = decoys.get("DECOY_P00001")
        assert decoy.sequence == original.sequence[::-1]
        assert len(decoy) == len(original)

    def test_fdr_estimate_properties(self):
        assert FDREstimate(10.0, 100, 5).fdr == pytest.approx(0.05)
        assert FDREstimate(10.0, 0, 0).fdr == 0.0
        assert FDREstimate(10.0, 2, 10).fdr == 1.0  # capped

    def test_true_hits_get_low_fdr(self, database):
        """A clean spectrum's top (true) hit must carry near-zero FDR;
        weak hits carry higher FDR."""
        engine = Imprint(database)
        searcher = DecoySearcher(database)
        settings = SpectrometerSettings(
            detection_rate=0.85, mass_error_ppm=10.0, noise_peaks=12,
            contaminant_rate=0.0,
        )
        peaks = MassSpectrometer(settings, seed=3).acquire(
            [database.get("P00009")]
        )
        run = engine.identify(peaks, run_id="r1")
        assert run.top().accession == "P00009"
        per_rank = searcher.fdr_for_run(run, peaks)
        assert per_rank[1] <= 0.2
        # FDR is monotone non-decreasing down the ranked list
        values = [per_rank[hit.rank] for hit in run.hits]
        assert values == sorted(values)

    def test_estimate_fdr_threshold_monotone(self, database):
        engine = Imprint(database)
        decoy_engine = Imprint(decoy_database(database))
        peaks = MassSpectrometer(seed=4).acquire([database.get("P00010")])
        target = engine.identify(peaks, "t")
        decoy = decoy_engine.identify(peaks, "d")
        low = estimate_fdr(target, decoy, threshold=5.0)
        high = estimate_fdr(target, decoy, threshold=100.0)
        assert high.fdr <= low.fdr

    def test_decoy_annotator(self, database):
        engine = Imprint(database)
        searcher = DecoySearcher(database)
        peaks = MassSpectrometer(seed=5).acquire([database.get("P00011")])
        run = engine.identify(peaks, run_id="r1")
        results = ImprintResultSet([run])
        fdr_by_run = {"r1": searcher.fdr_for_run(run, peaks)}
        annotator = DecoyFDRAnnotator(results, fdr_by_run)
        amap = annotator.annotate(results.items(), {DECOY_FDR})
        for item in results.items():
            value = amap.get_evidence(item, DECOY_FDR)
            assert value is not None
            assert 0.0 <= value <= 1.0

    def test_declare_decoy_evidence_extends_iq_model(self):
        iq_model = build_iq_model()
        declare_decoy_evidence(iq_model)
        assert iq_model.is_evidence_type(DECOY_FDR)
        assert iq_model.is_annotation_function(Q.DecoyFDRAnnotation)
        # idempotent
        declare_decoy_evidence(iq_model)


class TestDisjointness:
    def test_declared_disjointness_symmetric(self):
        o = Ontology()
        o.add_class(EX.A)
        o.add_class(EX.B)
        o.declare_disjoint(EX.A, EX.B)
        assert o.are_disjoint(EX.A, EX.B)
        assert o.are_disjoint(EX.B, EX.A)

    def test_inherited_disjointness(self):
        o = Ontology()
        o.add_class(EX.A)
        o.add_class(EX.B)
        o.add_class(EX.A1, (EX.A,))
        o.add_class(EX.B1, (EX.B,))
        o.declare_disjoint(EX.A, EX.B)
        assert o.are_disjoint(EX.A1, EX.B1)

    def test_self_disjointness_rejected(self):
        o = Ontology()
        o.add_class(EX.A)
        with pytest.raises(Exception):
            o.declare_disjoint(EX.A, EX.A)

    def test_violation_detection(self):
        o = Ontology()
        o.add_class(EX.A)
        o.add_class(EX.B)
        o.declare_disjoint(EX.A, EX.B)
        o.add_individual(EX.x, EX.A)
        o.add_individual(EX.x, EX.B)
        problems = o.find_disjointness_violations()
        assert len(problems) == 1
        assert "EX" not in problems[0]  # message uses full URIs

    def test_iq_model_declares_root_disjointness(self, iq_model):
        o = iq_model.ontology
        assert o.are_disjoint(iq_model.DataEntity, iq_model.QualityEvidence)
        assert o.are_disjoint(iq_model.HitRatio, iq_model.ImprintHitEntry)
        assert o.find_disjointness_violations() == []

    def test_unrelated_classes_not_disjoint(self, iq_model):
        o = iq_model.ontology
        assert not o.are_disjoint(
            iq_model.HitRatio, iq_model.MassCoverage
        )


class TestNestedWorkflows:
    def inner(self):
        wf = Workflow("inner")
        wf.add_input("xs")
        wf.add_output("doubled")
        wf.add_processor(
            PythonProcessor("dbl", lambda v: v * 2,
                            input_ports={"v": 0}, output_ports={"out": 0})
        )
        wf.connect("", "xs", "dbl", "v")
        wf.connect("dbl", "out", "", "doubled")
        return wf

    def test_nested_workflow_as_processor(self):
        outer = Workflow("outer")
        outer.add_input("data")
        outer.add_output("result")
        outer.add_processor(NestedWorkflowProcessor("nested", self.inner()))
        outer.add_processor(
            PythonProcessor("total", lambda xs: sum(xs),
                            input_ports={"xs": 1}, output_ports={"out": 0})
        )
        outer.connect("", "data", "nested", "xs")
        outer.connect("nested", "doubled", "total", "xs")
        outer.connect("total", "out", "", "result")
        assert Enactor().run(outer, {"data": [1, 2, 3]}) == {"result": 12}

    def test_nested_ports_mirror_inner_workflow(self):
        nested = NestedWorkflowProcessor("nested", self.inner())
        assert set(nested.input_ports) == {"xs"}
        assert set(nested.output_ports) == {"doubled"}

    def test_nested_failure_propagates(self):
        broken = Workflow("broken")
        broken.add_output("y")
        broken.add_processor(
            PythonProcessor("boom", lambda: 1 / 0, output_ports={"out": 0})
        )
        broken.connect("boom", "out", "", "y")
        outer = Workflow("outer")
        outer.add_output("z")
        outer.add_processor(NestedWorkflowProcessor("nested", broken))
        outer.connect("nested", "y", "", "z")
        from repro.workflow import EnactmentError

        with pytest.raises(EnactmentError, match="nested"):
            Enactor().run(outer, {})
