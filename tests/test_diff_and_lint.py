"""Tests for quality-view diffing and workflow depth linting."""

import pytest

from repro.core.ispider import example_quality_view_xml
from repro.qv import parse_quality_view
from repro.qv.diff import diff_views, render_diff
from repro.workflow import PythonProcessor, Workflow


class TestViewDiff:
    def spec(self, condition="ScoreClass in q:high"):
        return parse_quality_view(example_quality_view_xml(condition))

    def test_identical_views_empty_diff(self):
        diff = diff_views(self.spec(), self.spec())
        assert diff.is_empty()
        assert "identical" in render_diff(diff)

    def test_condition_edit_detected(self):
        old = self.spec("ScoreClass in q:high")
        new = self.spec("ScoreClass in q:high, q:mid and HR MC > 20")
        diff = diff_views(old, new)
        assert not diff.is_empty()
        (change,) = diff.changed_conditions.values()
        assert change[0] == ["ScoreClass in q:high"]
        assert "HR MC > 20" in change[1][0]
        text = render_diff(diff)
        assert "- ScoreClass in q:high" in text
        assert "+ ScoreClass in q:high, q:mid and HR MC > 20" in text

    def test_removed_assertion_detected(self):
        old = self.spec()
        new = self.spec()
        new.assertions = new.assertions[:2]  # drop the classifier
        diff = diff_views(old, new)
        assert diff.removed_assertions == ["PIScoreClassifier"]
        assert diff.added_assertions == []

    def test_added_annotator_detected(self):
        old = self.spec()
        new = self.spec()
        old.annotators = []
        diff = diff_views(old, new)
        assert diff.added_annotators == ["ImprintOutputAnnotator"]

    def test_variable_binding_change_detected(self):
        from dataclasses import replace

        old = self.spec()
        new = self.spec()
        assertion = new.assertions[1]  # HR score
        changed = replace(
            assertion,
            variables=tuple(
                replace(v, repository_ref="curated") for v in assertion.variables
            ),
        )
        new.assertions[1] = changed
        diff = diff_views(old, new)
        assert diff.changed_assertions == ["HR score"]

    def test_formatting_only_edit_registers_no_change(self):
        """Canonicalised conditions: whitespace edits do not diff."""
        old = self.spec("ScoreClass in q:high")
        new = self.spec("ScoreClass   in\n      q:high")
        assert diff_views(old, new).is_empty()

    def test_optimized_and_reference_compilations_stay_comparable(
        self, framework
    ):
        """Pass-induced reordering must not register as a view change:
        both pipelines stamp the same canonical fingerprint, and the
        spec-level diff of the (unchanged) view stays empty."""
        from repro.core.ispider import LiveImprintAnnotator, ResultSetHolder
        from repro.qv.diff import same_compiled_view

        framework.deploy_annotation_service(
            "ImprintOutputAnnotator", LiveImprintAnnotator(ResultSetHolder())
        )
        spec = self.spec()
        reference = framework.compiler.compile(spec, optimize=False)
        optimized = framework.compiler.compile(spec)
        assert reference.processors.keys() == optimized.processors.keys()
        assert same_compiled_view(reference, optimized)
        assert diff_views(spec, self.spec()).is_empty()

    def test_action_rename_is_remove_plus_add(self):
        old = self.spec()
        new = self.spec()
        from dataclasses import replace

        new.actions[0] = replace(new.actions[0], name="renamed")
        diff = diff_views(old, new)
        assert diff.added_actions == ["renamed"]
        assert diff.removed_actions == ["filter top k score"]


class TestDepthLint:
    def build(self, out_depth, in_depth):
        wf = Workflow("lint")
        wf.add_processor(
            PythonProcessor("src", lambda: 0, output_ports={"out": out_depth})
        )
        wf.add_processor(
            PythonProcessor("dst", lambda x: x,
                            input_ports={"x": in_depth},
                            output_ports={"y": 0})
        )
        wf.connect("src", "out", "dst", "x")
        return wf

    def test_matching_depths_clean(self):
        assert self.build(0, 0).depth_warnings() == []
        assert self.build(1, 1).depth_warnings() == []

    def test_list_into_scalar_warns_iteration(self):
        (warning,) = self.build(1, 0).depth_warnings()
        assert "implicit iteration" in warning

    def test_scalar_into_list_warns(self):
        (warning,) = self.build(0, 1).depth_warnings()
        assert "scalar" in warning

    def test_workflow_level_links_skipped(self):
        wf = Workflow("w")
        wf.add_input("x")
        wf.add_processor(
            PythonProcessor("p", lambda v: v,
                            input_ports={"v": 0}, output_ports={"o": 0})
        )
        wf.connect("", "x", "p", "v")
        assert wf.depth_warnings() == []

    def test_compiled_quality_view_is_depth_clean(self, framework):
        from repro.core.ispider import (
            LiveImprintAnnotator,
            ResultSetHolder,
            example_quality_view_xml,
        )

        framework.deploy_annotation_service(
            "ImprintOutputAnnotator", LiveImprintAnnotator(ResultSetHolder())
        )
        view = framework.quality_view(example_quality_view_xml())
        assert view.compile().depth_warnings() == []
