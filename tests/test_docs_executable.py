"""The documentation must stay truthful: execute its code blocks."""

import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).parent.parent / "docs"
README = pathlib.Path(__file__).parent.parent / "README.md"


def python_blocks(path: pathlib.Path):
    return re.findall(r"```python\n(.*?)```", path.read_text(), re.S)


class TestTutorial:
    def test_tutorial_blocks_execute_in_order(self):
        blocks = python_blocks(DOCS / "tutorial.md")
        assert len(blocks) >= 6
        namespace = {}
        for index, block in enumerate(blocks, start=1):
            exec(  # noqa: S102 - executing our own documentation
                compile(block, f"<tutorial block {index}>", "exec"), namespace
            )
        # the walkthrough reached the embedded-run stage
        assert "filtered" in namespace
        assert namespace["kept"]


class TestReadme:
    def test_readme_quickstart_executes(self):
        blocks = python_blocks(README)
        assert blocks, "README must contain a quickstart block"
        namespace = {}
        exec(compile(blocks[0], "<readme quickstart>", "exec"), namespace)
        assert namespace["kept"]

    def test_readme_mentions_every_top_level_package(self):
        text = README.read_text()
        import repro

        base = pathlib.Path(repro.__file__).parent
        for package in sorted(p.name for p in base.iterdir() if p.is_dir()):
            if package.startswith("__"):
                continue
            assert f"repro.{package}" in text, (
                f"README does not document repro.{package}"
            )
