"""Edge-case coverage across subsystems."""

import pytest

from repro.annotation import AnnotationMap
from repro.core.ispider import ResultSetHolder
from repro.proteomics.results import ImprintResultSet
from repro.qv import parse_quality_view
from repro.rdf import Graph, Literal, Namespace, Q, RDF, URIRef
from repro.rdf.sparql import evaluate
from repro.services.messages import DataSetMessage

EX = Namespace("http://example.org/")


class TestSparqlEdgeCases:
    @pytest.fixture()
    def graph(self):
        g = Graph()
        g.add(EX.a, EX.kind, Literal("x"))
        g.add(EX.b, EX.kind, Literal("y"))
        g.add(EX.c, EX.kind, Literal("x"))
        g.add(EX.a, EX.score, Literal(10))
        g.add(EX.b, EX.score, Literal(20))
        return g

    def test_union_with_shared_filter(self, graph):
        res = evaluate(graph, """
            PREFIX ex: <http://example.org/>
            SELECT ?s WHERE {
              { ?s ex:kind "x" } UNION { ?s ex:kind "y" }
              ?s ex:score ?v .
              FILTER (?v >= 10)
            }
        """)
        assert {row[0] for row in res} == {EX.a, EX.b}

    def test_nested_optional(self, graph):
        graph.add(EX.a, EX.extra, EX.z)
        res = evaluate(graph, """
            PREFIX ex: <http://example.org/>
            SELECT ?s ?e ?v WHERE {
              ?s ex:kind "x" .
              OPTIONAL { ?s ex:extra ?e . OPTIONAL { ?e ex:score ?v } }
            }
        """)
        bindings = {row[0]: (row[1], row[2]) for row in res}
        assert bindings[EX.a][0] == EX.z
        assert bindings[EX.c] == (None, None)

    def test_distinct_with_order_and_limit(self, graph):
        res = evaluate(graph, """
            PREFIX ex: <http://example.org/>
            SELECT DISTINCT ?k WHERE { ?s ex:kind ?k } ORDER BY ?k LIMIT 1
        """)
        assert [str(row[0]) for row in res] == ["x"]

    def test_empty_group_pattern(self, graph):
        res = evaluate(graph, "SELECT * WHERE { }")
        assert len(res) == 1  # one empty solution, per SPARQL semantics

    def test_ask_on_empty_graph(self):
        assert evaluate(Graph(), "ASK { ?s ?p ?o }").boolean is False

    def test_filter_regex_flags(self, graph):
        res = evaluate(graph, """
            PREFIX ex: <http://example.org/>
            SELECT ?s WHERE { ?s ex:kind ?k . FILTER REGEX(?k, "^X$", "i") }
        """)
        assert {row[0] for row in res} == {EX.a, EX.c}

    def test_self_join_same_predicate(self, graph):
        res = evaluate(graph, """
            PREFIX ex: <http://example.org/>
            SELECT ?s ?t WHERE {
              ?s ex:kind ?k . ?t ex:kind ?k .
              FILTER (?s != ?t)
            }
        """)
        assert {frozenset((row[0], row[1])) for row in res} == {
            frozenset((EX.a, EX.c))
        }


class TestQVParsingEdgeCases:
    def test_var_level_repository_override(self):
        text = """
        <QualityView name="override">
          <QualityAssertion serviceName="s" serviceType="q:HRScore" tagName="T">
            <variables repositoryRef="cache">
              <var variableName="a" evidence="q:HitRatio"/>
              <var variableName="b" evidence="q:Coverage" repositoryRef="curated"/>
            </variables>
          </QualityAssertion>
        </QualityView>
        """
        spec = parse_quality_view(text)
        variables = spec.assertions[0].variables
        assert variables[0].repository_ref == "cache"
        assert variables[1].repository_ref == "curated"

    def test_variable_name_defaults_to_fragment(self):
        text = """
        <QualityView name="default-name">
          <QualityAssertion serviceName="s" serviceType="q:HRScore" tagName="T">
            <variables><var evidence="q:HitRatio"/></variables>
          </QualityAssertion>
        </QualityView>
        """
        spec = parse_quality_view(text)
        assert spec.assertions[0].variables[0].name == "HitRatio"

    def test_repository_for_prefers_assertion_side(self):
        text = """
        <QualityView name="two-sides">
          <Annotator serviceName="a" serviceType="q:Imprint-output-annotation">
            <variables repositoryRef="writer"><var evidence="q:HitRatio"/></variables>
          </Annotator>
          <QualityAssertion serviceName="s" serviceType="q:HRScore" tagName="T">
            <variables repositoryRef="reader">
              <var variableName="hitRatio" evidence="q:HitRatio"/>
            </variables>
          </QualityAssertion>
        </QualityView>
        """
        spec = parse_quality_view(text)
        assert spec.repository_for(Q.HitRatio) == "reader"


class TestHolderAndMessages:
    def test_holder_requires_results(self):
        holder = ResultSetHolder()
        with pytest.raises(RuntimeError, match="before the identification"):
            holder.require()

    def test_holder_set_then_require(self, imprint_runs):
        holder = ResultSetHolder()
        results = ImprintResultSet(imprint_runs[:1])
        holder.set(results)
        assert holder.require() is results

    def test_dataset_message_preserves_duplicates_and_order(self):
        items = [EX.a, EX.b, EX.a]
        parsed = DataSetMessage.from_xml(DataSetMessage(items).to_xml())
        assert parsed.items == items


class TestAnnotationMapEdgeCases:
    def test_environment_tag_shadows_evidence_fragment(self):
        amap = AnnotationMap([EX.d])
        amap.set_evidence(EX.d, Q.HitRatio, 0.5)
        amap.set_tag(EX.d, "HitRatio", 99)  # same name as the fragment
        env = amap.environment(EX.d)
        assert env["HitRatio"] == 99  # tags win: they're computed later

    def test_subset_of_unknown_items_is_empty(self):
        amap = AnnotationMap([EX.d])
        assert len(amap.subset([EX.other])) == 0

    def test_evidence_overwrite_in_place(self):
        amap = AnnotationMap([EX.d])
        amap.set_evidence(EX.d, Q.HitRatio, 0.5)
        amap.set_evidence(EX.d, Q.HitRatio, 0.7)
        assert amap.get_evidence(EX.d, Q.HitRatio) == 0.7

    def test_literal_evidence_unwrapped_in_environment(self):
        amap = AnnotationMap([EX.d])
        amap.set_evidence(EX.d, Q.HitRatio, Literal(0.5))
        assert amap.environment(EX.d)["HitRatio"] == 0.5
