"""Tests for iteration strategies, fault tolerance, SPARQL aggregates,
the condition unparser, and quality reports."""

import pytest

from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.core.report import render_report, routing_summary, tag_statistics
from repro.process.conditions import Condition, parse_condition
from repro.process.conditions.printer import unparse
from repro.rdf import Graph, Literal, Namespace, Q, URIRef
from repro.workflow import Enactor, EnactmentError, PythonProcessor, Workflow

EX = Namespace("http://example.org/")


class TestIterationStrategies:
    def build(self, strategy):
        wf = Workflow("iter")
        wf.add_input("a")
        wf.add_input("b")
        wf.add_output("c")
        processor = PythonProcessor(
            "pair", lambda x, y: f"{x}{y}",
            input_ports={"x": 0, "y": 0}, output_ports={"out": 0},
        ).with_iteration(strategy)
        wf.add_processor(processor)
        wf.connect("", "a", "pair", "x")
        wf.connect("", "b", "pair", "y")
        wf.connect("pair", "out", "", "c")
        return wf

    def test_cross_product_default(self):
        result = Enactor().run(self.build("cross"), {"a": [1, 2], "b": "uv"})
        # note: b is a string (scalar), so only a iterates
        assert result["c"] == ["1uv", "2uv"]

    def test_cross_product_two_lists(self):
        result = Enactor().run(
            self.build("cross"), {"a": [1, 2], "b": ["u", "v"]}
        )
        assert result["c"] == ["1u", "1v", "2u", "2v"]

    def test_dot_product(self):
        result = Enactor().run(
            self.build("dot"), {"a": [1, 2, 3], "b": ["u", "v", "w"]}
        )
        assert result["c"] == ["1u", "2v", "3w"]

    def test_dot_product_length_mismatch(self):
        with pytest.raises(EnactmentError, match="differing"):
            Enactor().run(self.build("dot"), {"a": [1, 2], "b": ["u"]})

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            PythonProcessor("p", lambda: 0).with_iteration("diagonal")


class TestFaultTolerance:
    def flaky(self, fail_times):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise RuntimeError(f"failure {calls['n']}")
            return "ok"

        return fn, calls

    def build(self, processor):
        wf = Workflow("ft")
        wf.add_output("y")
        wf.add_processor(processor)
        wf.connect(processor.name, "out", "", "y")
        return wf

    def test_retry_recovers(self):
        fn, calls = self.flaky(2)
        processor = PythonProcessor(
            "p", fn, output_ports={"out": 0}
        ).with_fault_tolerance(retries=2)
        assert Enactor().run(self.build(processor), {}) == {"y": "ok"}
        assert calls["n"] == 3

    def test_retries_exhausted_raises(self):
        fn, _ = self.flaky(5)
        processor = PythonProcessor(
            "p", fn, output_ports={"out": 0}
        ).with_fault_tolerance(retries=1)
        with pytest.raises(EnactmentError, match="failure 2"):
            Enactor().run(self.build(processor), {})

    def test_alternate_processor_used(self):
        fn, _ = self.flaky(99)
        alternate = PythonProcessor(
            "backup", lambda: "from-backup", output_ports={"out": 0}
        )
        processor = PythonProcessor(
            "p", fn, output_ports={"out": 0}
        ).with_fault_tolerance(retries=1, alternate=alternate)
        assert Enactor().run(self.build(processor), {}) == {"y": "from-backup"}

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            PythonProcessor("p", lambda: 0).with_fault_tolerance(retries=-1)


class TestAggregates:
    @pytest.fixture()
    def graph(self):
        g = Graph()
        for i in range(9):
            s = EX[f"s{i}"]
            g.add(s, EX.group, Literal("even" if i % 2 == 0 else "odd"))
            g.add(s, EX.score, Literal(float(i)))
        return g

    def test_group_by_with_count_and_avg(self, graph):
        res = graph.query("""
            PREFIX ex: <http://example.org/>
            SELECT ?g (COUNT(?s) AS ?n) (AVG(?v) AS ?a) WHERE {
              ?s ex:group ?g ; ex:score ?v .
            } GROUP BY ?g ORDER BY ?g
        """)
        rows = list(res)
        assert [str(r[0]) for r in rows] == ["even", "odd"]
        assert [r[1].value for r in rows] == [5, 4]
        assert rows[0][2].value == pytest.approx(4.0)
        assert rows[1][2].value == pytest.approx(4.0)

    def test_count_star(self, graph):
        res = graph.query("""
            PREFIX ex: <http://example.org/>
            SELECT (COUNT(*) AS ?n) WHERE { ?s ex:score ?v }
        """)
        assert list(res)[0][0].value == 9

    def test_count_over_empty_is_zero(self, graph):
        res = graph.query("""
            PREFIX ex: <http://example.org/>
            SELECT (COUNT(?s) AS ?n) WHERE {
              ?s ex:score ?v . FILTER (?v > 1000)
            }
        """)
        assert list(res)[0][0].value == 0

    def test_min_max_sum(self, graph):
        res = graph.query("""
            PREFIX ex: <http://example.org/>
            SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) (SUM(?v) AS ?total)
            WHERE { ?s ex:score ?v }
        """)
        (row,) = list(res)
        assert row[0].value == 0.0
        assert row[1].value == 8.0
        assert row[2].value == 36.0

    def test_count_distinct(self, graph):
        graph.add(EX.extra, EX.group, Literal("even"))
        res = graph.query("""
            PREFIX ex: <http://example.org/>
            SELECT (COUNT(DISTINCT ?g) AS ?n) WHERE { ?s ex:group ?g }
        """)
        assert list(res)[0][0].value == 2

    def test_projection_must_be_grouped(self, graph):
        from repro.rdf.sparql import SPARQLSyntaxError

        with pytest.raises(SPARQLSyntaxError, match="GROUP BY"):
            graph.query("""
                PREFIX ex: <http://example.org/>
                SELECT ?s (COUNT(?v) AS ?n) WHERE { ?s ex:score ?v }
                GROUP BY ?g
            """)

    def test_star_only_for_count(self, graph):
        from repro.rdf.sparql import SPARQLSyntaxError

        with pytest.raises(SPARQLSyntaxError):
            graph.query("SELECT (SUM(*) AS ?x) WHERE { ?s ?p ?o }")


class TestUnparser:
    @pytest.mark.parametrize(
        "text",
        [
            "scoreClass in q:high, q:mid and HR MC > 20",
            "score < 3.2",
            "a = 1 or b = 2 and c = 3",
            "(a = 1 or b = 2) and c = 3",
            "not (a = 1 or b = 2)",
            "x is null",
            "x is not null and y not in { 'p', 'q' }",
            "flag = true or other = false",
            "name = 'it''s ok'".replace("''", "\\'"),
        ],
    )
    def test_roundtrip_ast_equality(self, text):
        node = parse_condition(text)
        assert parse_condition(unparse(node)) == node

    def test_roundtrip_preserves_semantics(self):
        text = "scoreClass in q:high, q:mid and HR MC > 20"
        original = Condition(text)
        rendered = Condition(unparse(parse_condition(text)))
        for env in (
            {"scoreClass": Q.high, "HR MC": 25.0},
            {"scoreClass": Q.low, "HR MC": 25.0},
            {},
        ):
            assert original(env) == rendered(env)


class TestQualityReport:
    @pytest.fixture(scope="class")
    def result(self, scenario, result_set):
        framework, holder = setup_framework(scenario)
        holder.set(result_set)
        view = framework.quality_view(example_quality_view_xml())
        return view.run(result_set.items())

    def test_tag_statistics_structure(self, result):
        stats = tag_statistics(result)
        assert stats["HR MC"]["kind"] == "score"
        assert stats["HR MC"]["count"] > 0
        assert stats["ScoreClass"]["kind"] == "class"
        assert set(stats["ScoreClass"]["counts"]) <= {"low", "mid", "high"}

    def test_routing_summary_counts(self, result):
        routing = routing_summary(result)
        (groups,) = routing.values()
        assert sum(groups.values()) <= len(result.items)

    def test_rendered_report_contains_sections(self, result):
        text = render_report(result)
        assert "quality assertions" in text
        assert "actions" in text
        assert "HR MC" in text
        assert "%" in text
