"""Tests for the Imprint PMF search engine and result sets."""

import pytest

from repro.proteomics import (
    Imprint,
    ImprintSettings,
    MassSpectrometer,
    SpectrometerSettings,
    generate_reference_database,
)
from repro.proteomics.results import ImprintResultSet
from repro.proteomics.spectrometer import PeakList
from repro.rdf.lsid import imprint_hit_lsid


@pytest.fixture(scope="module")
def database():
    return generate_reference_database(60, seed=21)


@pytest.fixture(scope="module")
def engine(database):
    return Imprint(database)


class TestIdentification:
    def test_clean_spectrum_identifies_truth_at_rank_one(self, database, engine):
        protein = database.get("P00007")
        settings = SpectrometerSettings(
            detection_rate=0.9, mass_error_ppm=5.0, noise_peaks=2,
            contaminant_rate=0.0,
        )
        peaks = MassSpectrometer(settings, seed=1).acquire([protein])
        run = engine.identify(peaks, run_id="clean")
        assert run.top().accession == "P00007"

    def test_indicators_in_valid_ranges(self, database, engine):
        protein = database.get("P00010")
        peaks = MassSpectrometer(seed=2).acquire([protein])
        run = engine.identify(peaks)
        for hit in run.hits:
            assert 0.0 <= hit.hit_ratio <= 1.0
            assert 0.0 <= hit.mass_coverage <= 1.0
            assert hit.score >= 0.0
            assert hit.peptides_count >= engine.settings.min_matched_peptides
            assert hit.masses <= hit.peptides_count

    def test_ranks_are_sequential_and_scores_descend(self, database, engine):
        peaks = MassSpectrometer(seed=3).acquire([database.get("P00020")])
        run = engine.identify(peaks)
        assert [h.rank for h in run.hits] == list(range(1, len(run.hits) + 1))
        scores = [h.score for h in run.hits]
        assert scores == sorted(scores, reverse=True)

    def test_max_hits_respected(self, database):
        engine = Imprint(database, ImprintSettings(max_hits=3))
        peaks = MassSpectrometer(seed=4).acquire([database.get("P00030")])
        assert len(engine.identify(peaks)) <= 3

    def test_empty_peak_list(self, engine):
        assert engine.identify(PeakList([])).hits == []

    def test_pure_noise_gives_weak_hits(self, engine, database):
        import random

        rng = random.Random(99)
        noise = PeakList([rng.uniform(700, 3500) for _ in range(15)])
        run = engine.identify(noise)
        truth_peaks = MassSpectrometer(
            SpectrometerSettings(detection_rate=0.9, mass_error_ppm=5.0,
                                 noise_peaks=0, contaminant_rate=0.0),
            seed=5,
        ).acquire([database.get("P00007")])
        true_run = engine.identify(truth_peaks)
        best_noise = run.hits[0].score if run.hits else 0.0
        assert true_run.top().score > 3 * best_noise

    def test_deterministic(self, engine, database):
        peaks = MassSpectrometer(seed=6).acquire([database.get("P00011")])
        a = engine.identify(peaks, "r")
        b = engine.identify(peaks, "r")
        assert a.hits == b.hits

    def test_mixture_sample_finds_both(self, database, engine):
        settings = SpectrometerSettings(
            detection_rate=0.9, mass_error_ppm=5.0, noise_peaks=2,
            contaminant_rate=0.0,
        )
        proteins = [database.get("P00012"), database.get("P00013")]
        peaks = MassSpectrometer(settings, seed=7).acquire(proteins)
        accessions = engine.identify(peaks).accessions()[:2]
        assert set(accessions) == {"P00012", "P00013"}

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            ImprintSettings(tolerance_ppm=0)
        with pytest.raises(ValueError):
            ImprintSettings(max_hits=0)


class TestResultSet:
    @pytest.fixture(scope="class")
    def runs(self, database):
        engine = Imprint(database)
        runs = []
        for i, accession in enumerate(["P00001", "P00002"], start=1):
            peaks = MassSpectrometer(seed=30 + i).acquire(
                [database.get(accession)]
            )
            runs.append(engine.identify(peaks, run_id=f"run-{i}"))
        return runs

    def test_items_are_lsids_in_order(self, runs):
        results = ImprintResultSet(runs)
        expected_first = imprint_hit_lsid("run-1", 1)
        assert results.items()[0] == expected_first
        assert len(results) == sum(len(r) for r in runs)

    def test_reference_roundtrip(self, runs):
        results = ImprintResultSet(runs)
        for item in results:
            ref = results.reference(item)
            assert results.accession(item) == ref.hit.accession
            assert results.run_id(item) in ("run-1", "run-2")

    def test_indicators_match_hit(self, runs):
        results = ImprintResultSet(runs)
        item = results.items()[0]
        hit = results.hit(item)
        indicators = results.indicators(item)
        assert indicators["hitRatio"] == hit.hit_ratio
        assert indicators["coverage"] == hit.mass_coverage
        assert indicators["eldp"] == float(hit.eldp)

    def test_items_of_run(self, runs):
        results = ImprintResultSet(runs)
        assert len(results.items_of_run("run-1")) == len(runs[0])

    def test_unknown_item_raises(self, runs):
        results = ImprintResultSet(runs)
        with pytest.raises(KeyError):
            results.reference(imprint_hit_lsid("ghost", 1))

    def test_accessions_subset(self, runs):
        results = ImprintResultSet(runs)
        subset = results.items()[:3]
        assert results.accessions(subset) == [
            results.accession(i) for i in subset
        ]
