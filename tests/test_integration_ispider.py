"""Integration tests: the full Figure-6/Figure-7 experiment end to end."""

import pytest

from repro.core.ispider import (
    FILTER_ACTION,
    build_deployment,
    example_quality_view_xml,
    setup_framework,
)
from repro.proteomics.results import ImprintResultSet
from repro.proteomics.workflows import go_term_frequencies
from repro.qv.deployment import DeploymentError
from repro.rdf import Q


@pytest.fixture(scope="module")
def deployment(scenario):
    return build_deployment(scenario)


@pytest.fixture(scope="module")
def outputs(deployment):
    return deployment.run()


@pytest.fixture(scope="module")
def baseline(deployment):
    return deployment.run_unfiltered()


class TestEmbeddedWorkflow:
    def test_embedded_structure_contains_both_flows(self, deployment):
        names = set(deployment.embedded.processors)
        assert "ProteinIdentification" in names  # host
        assert "DataEnrichment" in names  # quality
        assert "ImprintToDataSet" in names  # adapter
        assert "AcceptedToAccessions" in names  # adapter

    def test_replaced_host_link_is_cut(self, deployment):
        for link in deployment.embedded.data_links:
            assert not (
                link.source.processor == "CollectAccessions"
                and link.sink.processor == "GORetrieval"
            )

    def test_filtering_reduces_go_occurrences(self, outputs, baseline):
        assert 0 < len(outputs["goTerms"]) < len(baseline["goTerms"])

    def test_identifications_unchanged_by_quality_view(self, outputs, baseline):
        assert [len(r.hits) for r in outputs["identifications"]] == [
            len(r.hits) for r in baseline["identifications"]
        ]

    def test_filtered_terms_subset_of_baseline(self, outputs, baseline):
        base = go_term_frequencies(baseline["goTerms"])
        filtered = go_term_frequencies(outputs["goTerms"])
        assert set(filtered) <= set(base)
        assert all(filtered[t] <= base[t] for t in filtered)


class TestQualityEffectiveness:
    def test_surviving_ids_enriched_in_true_positives(
        self, scenario, deployment, outputs, baseline
    ):
        runs = baseline["identifications"]
        results = ImprintResultSet(runs)

        def precision(accession_pairs):
            true = sum(
                1 for run_id, accession in accession_pairs
                if scenario.is_true_positive(run_id, accession)
            )
            return true / max(1, len(accession_pairs))

        all_pairs = [
            (results.run_id(i), results.accession(i)) for i in results
        ]
        # re-run the view stand-alone to recover the surviving item set
        view = deployment.view
        deployment.holder.set(results)
        result = view.run(results.items())
        surviving = result.surviving(FILTER_ACTION)
        surviving_pairs = [
            (results.run_id(i), results.accession(i)) for i in surviving
        ]
        assert precision(surviving_pairs) > 2 * precision(all_pairs)

    def test_true_functions_enriched_after_filtering(
        self, scenario, outputs, baseline
    ):
        true_terms = set()
        for accessions in scenario.ground_truth.values():
            for accession in accessions:
                true_terms.update(scenario.goa.terms_of(accession))
        filtered = go_term_frequencies(outputs["goTerms"])
        base = go_term_frequencies(baseline["goTerms"])
        frac_filtered = sum(
            c for t, c in filtered.items() if t in true_terms
        ) / sum(filtered.values())
        frac_base = sum(c for t, c in base.items() if t in true_terms) / sum(
            base.values()
        )
        assert frac_filtered > frac_base

    def test_significance_ratio_reranks_terms(self, outputs, baseline):
        """The paper's Fig. 7 effect: ratio ranking != frequency ranking."""
        base = go_term_frequencies(baseline["goTerms"])
        filtered = go_term_frequencies(outputs["goTerms"])
        by_ratio = sorted(
            base, key=lambda t: filtered.get(t, 0) / base[t], reverse=True
        )
        by_frequency = sorted(base, key=lambda t: base[t], reverse=True)
        assert by_ratio[:10] != by_frequency[:10]


class TestRepeatedExecution:
    def test_editing_the_condition_between_runs(self, scenario):
        """Sec. 4: action conditions can change from one execution to the
        next so users can observe alternative filtering options."""
        strict = build_deployment(scenario, filter_condition="ScoreClass in q:high")
        lenient = build_deployment(
            scenario, filter_condition="ScoreClass in q:high, q:mid"
        )
        n_strict = len(strict.run()["goTerms"])
        n_lenient = len(lenient.run()["goTerms"])
        assert n_strict < n_lenient

    def test_runs_are_reproducible(self, deployment, outputs):
        again = deployment.run()
        assert again["goTerms"] == outputs["goTerms"]


class TestStandaloneView:
    def test_view_run_produces_tags_and_groups(self, scenario, result_set):
        framework, holder = setup_framework(scenario)
        holder.set(result_set)
        view = framework.quality_view(example_quality_view_xml())
        result = view.run(result_set.items())
        assert result.actions() == [FILTER_ACTION]
        item = result_set.items()[0]
        assert result.tag_of(item, "HR MC") is not None
        assert result.tag_of(item, "ScoreClass") in (Q.low, Q.mid, Q.high)

    def test_view_is_data_independent(self, scenario, imprint_runs):
        """The same (compiled) view runs unchanged on different data sets."""
        framework, holder = setup_framework(scenario)
        view = framework.quality_view(example_quality_view_xml())
        first = ImprintResultSet(imprint_runs[:2])
        second = ImprintResultSet(imprint_runs[2:4])
        holder.set(first)
        result_a = view.run(first.items())
        holder.set(second)
        result_b = view.run(second.items())
        assert set(result_a.items).isdisjoint(result_b.items)
        assert result_b.actions() == [FILTER_ACTION]

    def test_transient_cache_cleared_between_runs(self, scenario, result_set):
        framework, holder = setup_framework(scenario)
        holder.set(result_set)
        view = framework.quality_view(example_quality_view_xml())
        view.run(result_set.items())
        size_after_first = len(framework.cache)
        view.run(result_set.items())
        assert len(framework.cache) == size_after_first
