"""Tests for the IQ semantic model (paper Sec. 3)."""

import pytest

from repro.rdf import Q, URIRef


class TestTaxonomy:
    def test_root_classes_exist(self, iq_model):
        o = iq_model.ontology
        for root in (
            iq_model.DataEntity,
            iq_model.QualityEvidence,
            iq_model.AnnotationFunction,
            iq_model.QualityAssertion,
            iq_model.ClassificationModel,
            iq_model.QualityDimension,
        ):
            assert o.is_class(root), root

    def test_evidence_taxonomy(self, iq_model):
        assert iq_model.is_evidence_type(iq_model.HitRatio)
        assert iq_model.is_evidence_type(iq_model.MassCoverage)
        assert iq_model.is_evidence_type(iq_model.ELDP)
        assert not iq_model.is_evidence_type(iq_model.ImprintHitEntry)

    def test_data_entity_taxonomy(self, iq_model):
        assert iq_model.ontology.is_subclass(
            iq_model.ImprintHitEntry, iq_model.DataEntity
        )

    def test_assertion_taxonomy_with_specialisation(self, iq_model):
        # UniversalPIScore2 specialises UniversalPIScore (operators are
        # classes so users can specialise them, Sec. 4.1).
        assert iq_model.ontology.is_subclass(
            iq_model.UniversalPIScore2, iq_model.UniversalPIScore
        )
        assert iq_model.is_assertion_type(iq_model.UniversalPIScore2)

    def test_annotation_functions(self, iq_model):
        assert iq_model.is_annotation_function(iq_model.ImprintOutputAnnotation)

    def test_no_cycles(self, iq_model):
        assert iq_model.ontology.find_subclass_cycles() == []


class TestClassificationModels:
    def test_members_are_enumerated_individuals(self, iq_model):
        members = iq_model.classification_members(iq_model.PIScoreClassification)
        assert members == {iq_model.low, iq_model.mid, iq_model.high}

    def test_pimatch_classification(self, iq_model):
        members = iq_model.classification_members(iq_model.PIMatchClassification)
        assert Q["average-to-low"] in members

    def test_is_classification_model(self, iq_model):
        assert iq_model.is_classification_model(iq_model.PIScoreClassification)
        assert not iq_model.is_classification_model(iq_model.HitRatio)


class TestDimensions:
    def test_standard_dimensions_present(self, iq_model):
        names = {d.fragment() for d in iq_model.dimensions()}
        assert {"Accuracy", "Completeness", "Currency"} <= names


class TestEvidenceRequirements:
    def test_declared_requirements(self, iq_model):
        required = iq_model.required_evidence(iq_model.UniversalPIScore)
        assert required == {iq_model.HitRatio, iq_model.MassCoverage}

    def test_requirements_inherited_by_specialisation(self, iq_model):
        required = iq_model.required_evidence(iq_model.UniversalPIScore2)
        assert required == {
            iq_model.HitRatio,
            iq_model.MassCoverage,
            iq_model.PeptidesCount,
        }


class TestUserExtension:
    def test_declare_new_evidence_type(self, iq_model):
        new_type = iq_model.declare_evidence_type(
            Q.TestNewEvidence, label="test evidence"
        )
        assert iq_model.is_evidence_type(new_type)

    def test_declare_new_assertion_type(self, iq_model):
        new_qa = iq_model.declare_assertion_type(
            Q.TestNewAssertion,
            evidence={iq_model.ELDP},
            dimension=iq_model.Reliability,
        )
        assert iq_model.is_assertion_type(new_qa)
        assert iq_model.required_evidence(new_qa) == {iq_model.ELDP}

    def test_contains_evidence_property_schema(self, iq_model):
        o = iq_model.ontology
        assert o.property_domain(iq_model.contains_evidence) == iq_model.DataEntity
        assert o.property_range(iq_model.contains_evidence) == iq_model.QualityEvidence
