"""Unit tests of ``repro.observability``: registry, spans, events, export.

Includes the concurrency guarantees the subsystem advertises: the
8-thread hammer pinning exact counter/histogram totals, and the
root-attribution semantics of spans across thread hops.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.observability import (
    CallbackSink,
    EventLog,
    JsonLinesFileSink,
    METRIC_NAME_RE,
    MetricError,
    MetricRegistry,
    NullEventLog,
    NullRegistry,
    RingBufferSink,
    clear_recorded_spans,
    current_span,
    disable,
    get_registry,
    json_snapshot,
    recent_spans,
    render_prometheus,
    restore,
    set_default_registry,
    set_tracing,
    start_span,
    use_span,
    write_telemetry,
)
from repro.observability.registry import _NULL_METRIC
from repro.workflow.trace import EnactmentTrace, TraceEvent


@pytest.fixture
def registry():
    return MetricRegistry()


@pytest.fixture
def swapped(registry):
    """Install a fresh default registry for the test, then restore."""
    previous = set_default_registry(registry)
    yield registry
    set_default_registry(previous)


# -- counters, gauges, histograms --------------------------------------------


class TestCounter:
    def test_inc_accumulates(self, registry):
        counter = registry.counter("repro_test_things_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_labelled_children_are_independent(self, registry):
        counter = registry.counter(
            "repro_test_things_total", "help", labels=("kind",)
        )
        counter.labels(kind="a").inc(2)
        counter.labels(kind="b").inc(3)
        assert counter.labels(kind="a").value == 2
        assert counter.labels(kind="b").value == 3

    def test_negative_increment_refused(self, registry):
        counter = registry.counter("repro_test_things_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_wrong_label_set_refused(self, registry):
        counter = registry.counter(
            "repro_test_things_total", labels=("kind",)
        )
        with pytest.raises(MetricError):
            counter.labels(other="x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_test_depth", "help")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self, registry):
        histogram = registry.histogram(
            "repro_test_wait_seconds", buckets=(0.1, 1.0)
        )
        histogram.observe(0.1)   # lands in le=0.1 (le is inclusive)
        histogram.observe(0.5)   # lands in le=1.0
        histogram.observe(99.0)  # lands only in +Inf
        buckets, total, count = histogram.labels().reading()
        assert buckets == [(0.1, 1), (1.0, 2), (math.inf, 3)]
        assert count == 3
        assert total == pytest.approx(99.6)

    def test_bucket_validation(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("repro_test_a_seconds", buckets=())
        with pytest.raises(MetricError):
            registry.histogram(
                "repro_test_b_seconds", buckets=(1.0, float("inf"))
            )
        with pytest.raises(MetricError):
            registry.histogram("repro_test_c_seconds", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        first = registry.counter("repro_test_things_total", "help")
        second = registry.counter("repro_test_things_total", "ignored")
        assert first is second
        assert first.help == "help"

    def test_kind_mismatch_refused(self, registry):
        registry.counter("repro_test_things_total")
        with pytest.raises(MetricError):
            registry.gauge("repro_test_things_total")

    def test_label_schema_mismatch_refused(self, registry):
        registry.counter("repro_test_things_total", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("repro_test_things_total", labels=("b",))

    def test_name_convention_enforced(self, registry):
        for bad in ("things_total", "repro_x", "repro_Upper_total", "repro"):
            with pytest.raises(MetricError):
                registry.counter(bad)
        relaxed = MetricRegistry(strict_names=False)
        relaxed.counter("anything_goes")  # does not raise

    def test_collect_is_sorted_by_name(self, registry):
        registry.counter("repro_test_b_total").inc()
        registry.counter("repro_test_a_total").inc()
        names = [family.name for family in registry.collect()]
        assert names == sorted(names)

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        metric = null.counter("not even a valid name")
        assert metric is _NULL_METRIC
        metric.inc()
        metric.labels(anything="x").observe(1.0)
        assert metric.value == 0.0
        assert null.collect() == []

    def test_default_registry_swap(self, registry):
        previous = set_default_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            set_default_registry(previous)
        assert get_registry() is previous

    def test_disable_and_restore(self):
        state = disable()
        try:
            assert isinstance(get_registry(), NullRegistry)
            get_registry().counter("repro_test_things_total").inc()
            assert get_registry().collect() == []
        finally:
            restore(state)
        assert not isinstance(get_registry(), NullRegistry)


class TestConcurrency:
    """Hammer the registry from 8 threads; totals must be exact."""

    def test_counter_and_histogram_totals_are_exact(self, registry):
        n_threads, per_thread = 8, 5000
        counter = registry.counter("repro_test_hits_total")
        labelled = registry.counter(
            "repro_test_kinds_total", labels=("kind",)
        )
        histogram = registry.histogram(
            "repro_test_lat_seconds", buckets=(0.5,)
        )
        gauge = registry.gauge("repro_test_level")
        barrier = threading.Barrier(n_threads)

        def hammer(index: int) -> None:
            barrier.wait()
            child = labelled.labels(kind=f"k{index % 2}")
            for _ in range(per_thread):
                counter.inc()
                child.inc()
                histogram.observe(0.25)
                gauge.inc()
                gauge.dec()

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = n_threads * per_thread
        assert counter.value == total
        assert labelled.labels(kind="k0").value == total / 2
        assert labelled.labels(kind="k1").value == total / 2
        buckets, _, count = histogram.labels().reading()
        assert count == total
        assert buckets == [(0.5, total), (math.inf, total)]
        assert gauge.value == 0


# -- spans -------------------------------------------------------------------


class TestSpans:
    def test_nesting_links_parent_and_trace(self):
        with start_span("outer") as outer:
            with start_span("inner") as inner:
                assert current_span() is inner
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
        assert current_span() is None
        assert outer.status == "ok"
        assert outer.duration is not None

    def test_error_marks_span(self):
        with pytest.raises(RuntimeError):
            with start_span("doomed") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert "boom" in span.error

    def test_counters_accumulate_on_root_across_threads(self):
        with start_span("root") as root:
            with start_span("child") as child:
                captured = current_span()

            def worker():
                with use_span(captured):
                    current_span().add("cache.lookups", 3)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            child.add("cache.lookups", 1)
        assert root.counter("cache.lookups") == 4
        assert child.counter("cache.lookups") == 4  # reads the root

    def test_boundary_span_isolates_counters(self):
        with start_span("submitter") as submitter:
            with start_span("job-a", boundary=True) as job_a:
                job_a.add("cache.lookups", 2)
            with start_span("job-b", boundary=True) as job_b:
                job_b.add("cache.lookups", 5)
            submitter.add("cache.lookups", 1)
        assert job_a.counter("cache.lookups") == 2
        assert job_b.counter("cache.lookups") == 5
        assert submitter.counter("cache.lookups") == 1
        # lineage is preserved even though attribution is split
        assert job_a.trace_id == submitter.trace_id
        assert job_a.parent_id == submitter.span_id

    def test_disabled_tracing_yields_null_span_that_delegates(self):
        previous = set_tracing(False)
        try:
            with start_span("invisible") as span:
                assert span.trace_id is None
            with start_span("job", always=True) as job:
                with start_span("nested") as null_child:
                    null_child.add("cache.lookups", 2)
                assert job.counter("cache.lookups") == 2
        finally:
            set_tracing(previous)

    def test_recorder_keeps_finished_spans(self):
        clear_recorded_spans()
        with start_span("recorded", workflow="wf"):
            pass
        spans = recent_spans()
        assert spans[-1]["name"] == "recorded"
        assert spans[-1]["attributes"] == {"workflow": "wf"}

    def test_use_span_accepts_none(self):
        with use_span(None) as nothing:
            assert nothing is None
            assert current_span() is None


# -- events ------------------------------------------------------------------


class TestEvents:
    def test_ring_buffer_bounds_and_order(self):
        ring = RingBufferSink(capacity=3)
        log = EventLog(ring)
        for index in range(5):
            log.emit("tick", index=index)
        kept = [event["index"] for event in log.recent()]
        assert kept == [2, 3, 4]
        assert log.recent(limit=1)[0]["index"] == 4

    def test_ring_buffer_limit_zero_returns_nothing(self):
        # regression: events[-0:] is the whole deque, not zero events
        ring = RingBufferSink()
        log = EventLog(ring)
        for index in range(3):
            log.emit("tick", index=index)
        assert ring.events(limit=0) == []
        assert log.recent(limit=0) == []
        assert len(ring.events(limit=2)) == 2
        assert len(ring.events()) == 3

    def test_events_are_stamped_with_span_context(self):
        log = EventLog()
        with start_span("spanning") as span:
            event = log.emit("inside")
        assert event["trace_id"] == span.trace_id
        assert event["span_id"] == span.span_id
        assert event["ts"] > 0

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonLinesFileSink(str(path))
        log = EventLog(sink)
        log.emit("first", value=1)
        log.emit("second", value=2)
        sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [line["event"] for line in lines] == ["first", "second"]

    def test_faulty_sink_is_dropped_not_fatal(self):
        ring = RingBufferSink()

        def explode(event):
            raise RuntimeError("sink down")

        log = EventLog(CallbackSink(explode), ring)
        log.emit("one")
        log.emit("two")
        assert [event["event"] for event in log.recent()] == ["one", "two"]

    def test_null_event_log_drops_everything(self):
        log = NullEventLog()
        assert log.emit("anything") == {}
        assert log.recent() == []


# -- exporters ---------------------------------------------------------------


class TestPrometheusExport:
    def test_counter_and_gauge_rendering(self, registry):
        registry.counter(
            "repro_test_things_total", "How many\nthings.", labels=("kind",)
        ).labels(kind='we"ird\\').inc(3)
        registry.gauge("repro_test_depth", "Depth.").set(2.5)
        text = render_prometheus(registry)
        assert "# HELP repro_test_things_total How many\\nthings." in text
        assert "# TYPE repro_test_things_total counter" in text
        assert (
            'repro_test_things_total{kind="we\\"ird\\\\"} 3' in text
        )
        assert "repro_test_depth 2.5" in text
        assert text.endswith("\n")

    def test_histogram_rendering(self, registry):
        registry.histogram(
            "repro_test_wait_seconds", "Waits.", buckets=(0.1, 1.0)
        ).observe(0.5)
        text = render_prometheus(registry)
        assert 'repro_test_wait_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_test_wait_seconds_bucket{le="1"} 1' in text
        assert 'repro_test_wait_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_test_wait_seconds_sum 0.5" in text
        assert "repro_test_wait_seconds_count 1" in text

    def test_integers_render_without_decimal_point(self, registry):
        registry.counter("repro_test_things_total").inc(7)
        assert "repro_test_things_total 7\n" in render_prometheus(registry)


class TestJsonSnapshot:
    def test_health_and_runtime_are_joined_in(self, registry):
        from repro.resilience.breaker import BreakerSnapshot, BreakerState

        registry.counter("repro_test_things_total").inc()

        class FakeServices:
            def health(self):
                return {
                    "http://x": BreakerSnapshot(
                        endpoint="http://x",
                        state=BreakerState.OPEN,
                        consecutive_failures=5,
                        failures=7,
                        successes=2,
                        rejections=1,
                        opened_count=1,
                    )
                }

        document = json_snapshot(registry, services=FakeServices())
        assert document["metrics"]["repro_test_things_total"]["samples"][0][
            "value"
        ] == 1
        health = document["health"]["http://x"]
        assert health["state"] == "open"
        assert health["consecutive_failures"] == 5
        assert health["opened_count"] == 1
        json.dumps(document, default=str)  # must be JSON-serialisable

    def test_write_telemetry_round_trips(self, registry, tmp_path):
        registry.gauge("repro_test_depth").set(4)
        path = tmp_path / "telemetry.json"
        write_telemetry(str(path), registry)
        document = json.loads(path.read_text())
        assert document["metrics"]["repro_test_depth"]["samples"][0]["value"] == 4


# -- trace serialization (satellite: EnactmentTrace round-trip) --------------


class TestTraceRoundTrip:
    def _sample_trace(self) -> EnactmentTrace:
        trace = EnactmentTrace("wf")
        done = trace.start("annotate")
        trace.complete(done, iterations=3)
        degraded = trace.start("score")
        trace.degrade(degraded, "ServiceFault: flaky", iterations=2)
        failed = trace.start("filter")
        trace.fail(failed, "ValueError: bad condition")
        trace.events.append(
            TraceEvent("running", "scheduled", started_at=1.0)
        )
        return trace

    def test_round_trip_preserves_every_event(self):
        trace = self._sample_trace()
        rebuilt = EnactmentTrace.from_dict(trace.to_dict())
        assert rebuilt.workflow == trace.workflow
        assert rebuilt.events == trace.events
        assert [e.status for e in rebuilt.events] == [
            "completed", "degraded", "failed", "scheduled"
        ]
        assert rebuilt.degraded()[0].error == "ServiceFault: flaky"
        assert rebuilt.events[0].iterations == 3

    def test_round_trip_survives_json(self):
        trace = self._sample_trace()
        rebuilt = EnactmentTrace.from_dict(
            json.loads(json.dumps(trace.to_dict()))
        )
        assert rebuilt.events == trace.events

    def test_name_regex_is_exported(self):
        assert METRIC_NAME_RE.match("repro_runtime_job_run_seconds")
        assert not METRIC_NAME_RE.match("repro_X")


# -- the metrics HTTP endpoint -----------------------------------------------


class TestMetricsServer:
    """HTTP behaviour of :func:`serve_metrics` and the shutdown path."""

    @pytest.fixture
    def served(self, registry):
        from urllib.error import HTTPError
        from urllib.request import urlopen

        from repro.observability import serve_in_background, serve_metrics

        registry.counter("repro_test_hits_total", "hits").inc(3)
        server = serve_metrics(registry, port=0)
        serve_in_background(server)
        base = f"http://127.0.0.1:{server.server_address[1]}"

        def fetch(path):
            try:
                with urlopen(base + path, timeout=5) as response:
                    return response.status, response.read().decode("utf-8")
            except HTTPError as error:
                return error.code, error.read().decode("utf-8", "replace")

        yield fetch
        server.shutdown()
        server.server_close()

    def test_unknown_path_is_404(self, served):
        status, body = served("/nope")
        assert status == 404
        assert "/metrics" in body  # the error hints at the real routes

    def test_query_string_is_ignored_in_routing(self, served):
        status, body = served("/metrics?format=prometheus&x=1")
        assert status == 200
        assert "repro_test_hits_total 3" in body
        status, body = served("/metrics.json?pretty")
        assert status == 200
        assert json.loads(body)["metrics"]

    def test_query_string_on_unknown_path_still_404(self, served):
        status, _ = served("/metricsx?y=/metrics")
        assert status == 404

    def test_serve_until_interrupt_maps_ctrl_c_to_clean_exit(self):
        from repro.observability import serve_until_interrupt

        calls = []

        class FakeServer:
            def serve_forever(self):
                calls.append("serve_forever")
                raise KeyboardInterrupt

            def shutdown(self):
                calls.append("shutdown")

            def server_close(self):
                calls.append("server_close")

        assert serve_until_interrupt(FakeServer()) == 0
        assert calls == ["serve_forever", "shutdown", "server_close"]

    def test_serve_until_interrupt_closes_socket_on_normal_return(self):
        from repro.observability import serve_until_interrupt

        calls = []

        class FakeServer:
            def serve_forever(self):
                calls.append("serve_forever")

            def shutdown(self):  # pragma: no cover - not reached
                calls.append("shutdown")

            def server_close(self):
                calls.append("server_close")

        assert serve_until_interrupt(FakeServer()) == 0
        assert calls == ["serve_forever", "server_close"]
