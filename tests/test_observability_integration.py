"""Observability across the execution stack.

Pins the two cross-layer guarantees the subsystem exists for:

* **Exact per-job cache attribution** — two jobs running concurrently
  against the shared annotation repositories each report precisely
  their own lookup/hit counts (the old window-delta accounting
  cross-talked here), because every read accumulates on the reading
  job's span root across all thread hops.
* **Strategy-independent firing metrics** — the serial enactor and the
  wavefront ``ParallelEnactor`` publish identical per-processor firing
  counts for the same workflow, since both route through the shared
  ``traced_firing`` path.
"""

from __future__ import annotations

import pytest

from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.observability import (
    MetricRegistry,
    clear_recorded_spans,
    recent_spans,
    set_default_registry,
    start_span,
)
from repro.runtime import ParallelEnactor, RuntimeConfig
from repro.workflow.enactor import Enactor


@pytest.fixture
def fresh_registry():
    registry = MetricRegistry()
    previous = set_default_registry(registry)
    yield registry
    set_default_registry(previous)


@pytest.fixture
def qv_world(scenario, result_set):
    framework, holder = setup_framework(scenario)
    holder.set(result_set)
    view = framework.quality_view(example_quality_view_xml())
    view.compile()
    return framework, view, result_set


def _firing_counts(registry):
    family = registry.get("repro_workflow_processor_firings_total")
    assert family is not None, "no firings were recorded"
    return {
        tuple(sorted(sample.labels.items())): sample.value
        for sample in family.snapshot().samples
    }


class TestExactCacheAttribution:
    """Satellite: span-attributed cache counts replace window deltas."""

    def _solo_counts(self, framework, view, dataset):
        with framework.runtime(RuntimeConfig(workers=1)) as service:
            handle = service.submit(view, dataset, clear_cache=True)
            handle.wait()
        return handle.metrics.cache_lookups, handle.metrics.cache_hits

    def test_two_concurrent_jobs_report_exact_counts(
        self, fresh_registry, qv_world
    ):
        framework, view, results = qv_world
        assert len(results.runs) >= 2, "need two runs for two jobs"
        dataset_a = results.items_of_run(results.runs[0].run_id)
        dataset_b = results.items_of_run(results.runs[1].run_id)

        # Ground truth: each dataset's counts when its job runs alone.
        solo_a = self._solo_counts(framework, view, dataset_a)
        solo_b = self._solo_counts(framework, view, dataset_b)
        assert solo_a[0] > 0 and solo_b[0] > 0

        # Slow every service call down so the two jobs demonstrably
        # overlap on the two workers, then assert their observed
        # windows really did overlap — the scenario the old
        # repository-wide window deltas could not attribute.
        for service_obj in framework.services:
            service_obj.with_latency(0.02)
        try:
            framework.repositories.clear_transient()
            with framework.runtime(RuntimeConfig(workers=2)) as service:
                handle_a = service.submit(view, dataset_a, clear_cache=False)
                handle_b = service.submit(view, dataset_b, clear_cache=False)
                handle_a.wait()
                handle_b.wait()
        finally:
            for service_obj in framework.services:
                service_obj.with_latency(0.0)

        metrics_a, metrics_b = handle_a.metrics, handle_b.metrics
        overlap_start = max(metrics_a.started_at, metrics_b.started_at)
        overlap_end = min(metrics_a.finished_at, metrics_b.finished_at)
        assert overlap_start < overlap_end, "jobs did not overlap"

        assert (metrics_a.cache_lookups, metrics_a.cache_hits) == solo_a
        assert (metrics_b.cache_lookups, metrics_b.cache_hits) == solo_b

    def test_concurrent_counts_partition_the_store_totals(
        self, fresh_registry, qv_world
    ):
        framework, view, results = qv_world
        datasets = [
            results.items_of_run(run.run_id) for run in results.runs[:2]
        ]
        before = framework.repositories.lookup_stats()
        framework.repositories.clear_transient()
        with framework.runtime(RuntimeConfig(workers=2)) as service:
            batch = service.submit_many(view, datasets, clear_cache=False)
            batch.wait()
        after = framework.repositories.lookup_stats()
        total_lookups = sum(h.metrics.cache_lookups for h in batch)
        total_hits = sum(h.metrics.cache_hits for h in batch)
        assert total_lookups == after[0] - before[0]
        assert total_hits == after[1] - before[1]


class TestDifferentialFiringCounts:
    """Satellite: serial and wavefront emit identical firing metrics."""

    def test_serial_and_wavefront_counts_are_identical(self, qv_world):
        framework, view, results = qv_world
        items = results.items()

        serial_registry = MetricRegistry()
        previous = set_default_registry(serial_registry)
        try:
            framework.repositories.clear_transient()
            view.run(items, enactor=Enactor(), clear_cache=False)
        finally:
            set_default_registry(previous)

        wavefront_registry = MetricRegistry()
        previous = set_default_registry(wavefront_registry)
        try:
            framework.repositories.clear_transient()
            view.run(
                items,
                enactor=ParallelEnactor(max_workers=4, iteration_workers=2),
                clear_cache=False,
            )
        finally:
            set_default_registry(previous)

        serial_counts = _firing_counts(serial_registry)
        wavefront_counts = _firing_counts(wavefront_registry)
        assert serial_counts == wavefront_counts
        assert serial_counts, "expected at least one processor firing"
        assert all(
            dict(key)["status"] == "completed" for key in serial_counts
        )

    def test_enactments_total_labels_the_strategy(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        registry = MetricRegistry()
        previous = set_default_registry(registry)
        try:
            framework.repositories.clear_transient()
            view.run(items, enactor=Enactor(), clear_cache=False)
            framework.repositories.clear_transient()
            view.run(
                items, enactor=ParallelEnactor(max_workers=2),
                clear_cache=False,
            )
        finally:
            set_default_registry(previous)
        family = registry.get("repro_workflow_enactments_total")
        by_kind = {
            sample.labels["enactor"]: sample.value
            for sample in family.snapshot().samples
        }
        assert by_kind == {"serial": 1, "wavefront": 1}


class TestSpanPropagation:
    def test_job_span_parents_under_submitter_span(
        self, fresh_registry, qv_world
    ):
        framework, view, results = qv_world
        dataset = results.items_of_run(results.runs[0].run_id)
        clear_recorded_spans()
        with start_span("submitter") as submitter:
            with framework.runtime(RuntimeConfig(workers=1)) as service:
                handle = service.submit(view, dataset, clear_cache=True)
                handle.wait()
        job_spans = [
            span for span in recent_spans()
            if span["name"].startswith("job:")
        ]
        assert job_spans, "the job span was not recorded"
        job_span = job_spans[-1]
        assert job_span["trace_id"] == submitter.trace_id
        assert job_span["parent_id"] == submitter.span_id

        # ... and the firings that ran on worker/pool threads landed in
        # the same trace, through every hop.
        fire_spans = [
            span for span in recent_spans()
            if span["name"].startswith("fire:")
            and span["trace_id"] == submitter.trace_id
        ]
        assert fire_spans, "no firing spans joined the submitter's trace"

    def test_runtime_gauges_settle_to_idle(self, fresh_registry, qv_world):
        framework, view, results = qv_world
        datasets = [
            results.items_of_run(run.run_id) for run in results.runs[:2]
        ]
        with framework.runtime(RuntimeConfig(workers=2)) as service:
            service.submit_many(view, datasets, clear_cache=True).wait()
            service.drain()
        name = service.config.name
        queue_depth = fresh_registry.gauge(
            "repro_runtime_queue_depth", labels=("runtime",)
        ).labels(runtime=name)
        workers_busy = fresh_registry.gauge(
            "repro_runtime_workers_busy", labels=("runtime",)
        ).labels(runtime=name)
        assert queue_depth.value == 0
        assert workers_busy.value == 0
        jobs_total = fresh_registry.counter(
            "repro_runtime_jobs_total", labels=("runtime", "outcome")
        )
        assert jobs_total.labels(runtime=name, outcome="completed").value == 2
