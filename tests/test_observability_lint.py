"""Metric-name hygiene and the Prometheus scrape contract.

Two enforcement passes:

* a source lint — every ``repro_*`` metric-name literal anywhere under
  ``src/repro`` must follow ``repro_<subsystem>_<name>[_unit]``;
* a scrape check — ``python -m repro metrics --oneshot`` must print
  Prometheus text format 0.0.4 that parses line by line, and must
  include at least one counter, one gauge, and one histogram from each
  of the workflow, runtime, and resilience subsystems.
"""

from __future__ import annotations

import pathlib
import re

import pytest

import repro
from repro.cli import main
from repro.observability import METRIC_NAME_RE

SRC_ROOT = pathlib.Path(repro.__file__).parent

#: Any double-quoted literal that looks like a metric (or metric-ish)
#: name.  Catching every ``repro_*`` literal keeps the lint robust to
#: helper indirection (e.g. ``_endpoint_counter``) — a misnamed metric
#: cannot hide behind a wrapper.
_NAME_LITERAL_RE = re.compile(r'"(repro_[A-Za-z0-9_]+)"')

#: Prometheus text-format line shapes (exposition format 0.0.4).
_HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$")
_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$"
)
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|NaN|[+-]Inf)$"
)


class TestMetricNameLint:
    def test_every_metric_literal_follows_the_convention(self):
        violations = []
        names = set()
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for name in _NAME_LITERAL_RE.findall(path.read_text()):
                names.add(name)
                if not METRIC_NAME_RE.match(name):
                    violations.append(f"{path.relative_to(SRC_ROOT)}: {name}")
        assert not violations, (
            "metric names violating repro_<subsystem>_<name>[_unit]:\n  "
            + "\n  ".join(violations)
        )
        # the lint must actually be scanning the instrumented tree
        assert len(names) >= 20, sorted(names)

    def test_instrumented_subsystems_declare_expected_metrics(self):
        text = "\n".join(
            path.read_text() for path in sorted(SRC_ROOT.rglob("*.py"))
        )
        for expected in (
            "repro_workflow_processor_firings_total",
            "repro_workflow_processor_fire_seconds",
            "repro_runtime_jobs_total",
            "repro_runtime_queue_depth",
            "repro_runtime_job_run_seconds",
            "repro_runtime_proc_workers",
            "repro_runtime_proc_chunks_total",
            "repro_runtime_proc_chunk_items_total",
            "repro_runtime_proc_stage_seconds",
            "repro_runtime_proc_worker_restarts_total",
            "repro_runtime_proc_messages_total",
            "repro_resilience_invocations_total",
            "repro_resilience_breaker_state",
            "repro_resilience_retries_total",
            "repro_rdf_sparql_query_seconds",
            "repro_annotation_store_lookups_total",
            "repro_rdf_plan_cache_hits_total",
            "repro_rdf_plan_cache_misses_total",
            "repro_rdf_plan_cache_evictions_total",
            "repro_rdf_plan_cache_entries",
            "repro_rdf_plan_compile_seconds",
            "repro_rdf_plan_executions_total",
            "repro_qv_compile_runs_total",
            "repro_qv_compile_pass_seconds",
            "repro_qv_compile_processors_eliminated_total",
            "repro_qv_compile_invocations_saved_total",
            "repro_serving_http_requests_total",
            "repro_serving_http_request_seconds",
            "repro_serving_plan_cache_hits_total",
            "repro_serving_plan_cache_misses_total",
            "repro_serving_plan_cache_entries",
            "repro_serving_plan_compile_seconds",
            "repro_serving_quota_rejections_total",
            "repro_serving_enactments_total",
            "repro_serving_views_registered",
            "repro_stream_deltas_total",
            "repro_stream_memo_hits_total",
            "repro_stream_memo_misses_total",
            "repro_stream_reannotated_items_total",
            "repro_stream_processors_fired_total",
            "repro_stream_apply_seconds",
            "repro_stream_drift_events_total",
            "repro_stream_records_total",
        ):
            assert expected in text, f"metric {expected} is not declared"

    def test_lint_covers_the_query_planner_module(self):
        """The planner is instrumented; the lint must be scanning it."""
        plan_source = SRC_ROOT / "rdf" / "sparql" / "plan.py"
        names = set(_NAME_LITERAL_RE.findall(plan_source.read_text()))
        assert {
            "repro_rdf_plan_cache_hits_total",
            "repro_rdf_plan_cache_misses_total",
            "repro_rdf_plan_compile_seconds",
        } <= names
        for name in names:
            assert METRIC_NAME_RE.match(name), name

    def test_lint_covers_the_compiler_passes(self):
        """The pass manager is instrumented; the lint must scan it."""
        names = set()
        for path in sorted((SRC_ROOT / "qv").rglob("*.py")):
            names.update(_NAME_LITERAL_RE.findall(path.read_text()))
        assert {
            "repro_qv_compile_runs_total",
            "repro_qv_compile_pass_seconds",
            "repro_qv_compile_processors_eliminated_total",
            "repro_qv_compile_invocations_saved_total",
        } <= names
        for name in names:
            assert METRIC_NAME_RE.match(name), name

    def test_lint_covers_the_stream_module(self):
        """The streaming tier is instrumented; the lint must scan it."""
        names = set()
        for path in sorted((SRC_ROOT / "stream").rglob("*.py")):
            names.update(_NAME_LITERAL_RE.findall(path.read_text()))
        assert {
            "repro_stream_deltas_total",
            "repro_stream_memo_hits_total",
            "repro_stream_memo_misses_total",
            "repro_stream_reannotated_items_total",
            "repro_stream_apply_seconds",
            "repro_stream_drift_events_total",
            "repro_stream_records_total",
        } <= names
        for name in names:
            assert METRIC_NAME_RE.match(name), name

    def test_lint_covers_the_serving_module(self):
        """The serving tier is instrumented; the lint must scan it."""
        names = set()
        for path in sorted((SRC_ROOT / "serving").rglob("*.py")):
            names.update(_NAME_LITERAL_RE.findall(path.read_text()))
        assert {
            "repro_serving_http_requests_total",
            "repro_serving_plan_cache_hits_total",
            "repro_serving_plan_cache_misses_total",
            "repro_serving_quota_rejections_total",
            "repro_serving_enactments_total",
        } <= names
        for name in names:
            assert METRIC_NAME_RE.match(name), name


@pytest.fixture(scope="module")
def scrape():
    """One ``repro metrics --oneshot`` scrape (shared by the checks)."""
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        status = main(
            ["metrics", "--oneshot", "--spots", "2", "--proteins", "60"]
        )
    assert status == 0
    return buffer.getvalue()


class TestPrometheusScrape:
    def test_every_line_parses(self, scrape):
        assert scrape.strip(), "empty scrape"
        for line in scrape.strip().splitlines():
            assert (
                _HELP_RE.match(line)
                or _TYPE_RE.match(line)
                or _SAMPLE_RE.match(line)
            ), f"unparseable exposition line: {line!r}"

    def test_samples_belong_to_typed_families(self, scrape):
        kinds = {}
        for line in scrape.strip().splitlines():
            typed = _TYPE_RE.match(line)
            if typed:
                kinds[typed.group(1)] = typed.group(2)
        assert kinds, "no # TYPE lines in the scrape"
        for line in scrape.strip().splitlines():
            sample = _SAMPLE_RE.match(line)
            if not sample:
                continue
            name = sample.group(1)
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert name in kinds or (
                base in kinds and kinds[base] == "histogram"
            ), f"sample {name!r} has no # TYPE declaration"

    def test_each_subsystem_exposes_all_three_kinds(self, scrape):
        kinds = {}
        for line in scrape.strip().splitlines():
            typed = _TYPE_RE.match(line)
            if typed:
                kinds.setdefault(typed.group(1), typed.group(2))
        for subsystem in ("workflow", "runtime", "resilience"):
            present = {
                kind
                for name, kind in kinds.items()
                if name.startswith(f"repro_{subsystem}_")
            }
            assert {"counter", "gauge", "histogram"} <= present, (
                f"subsystem {subsystem!r} exposes only {sorted(present)}"
            )

    def test_histograms_carry_the_full_triplet(self, scrape):
        lines = scrape.strip().splitlines()
        histograms = {
            match.group(1)
            for match in (_TYPE_RE.match(line) for line in lines)
            if match and match.group(2) == "histogram"
        }
        assert histograms
        text = "\n".join(lines)
        for name in histograms:
            assert f'{name}_bucket' in text
            assert f'le="+Inf"' in text
            assert f"{name}_sum" in text
            assert f"{name}_count" in text
