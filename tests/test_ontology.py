"""Tests for the ontology engine and reasoner."""

import pytest

from repro.ontology import Ontology, OntologyError, PropertyKind, Reasoner
from repro.rdf import Graph, Literal, Namespace, RDF, URIRef

EX = Namespace("http://example.org/onto#")


@pytest.fixture()
def ontology():
    o = Ontology()
    o.add_class(EX.Animal, label="Animal")
    o.add_class(EX.Mammal, (EX.Animal,))
    o.add_class(EX.Dog, (EX.Mammal,))
    o.add_class(EX.Cat, (EX.Mammal,))
    o.add_class(EX.Robot)
    o.add_property(EX.owns, PropertyKind.OBJECT, domain=EX.Animal, range=EX.Animal)
    o.add_property(EX.age, PropertyKind.DATATYPE, domain=EX.Animal)
    o.add_individual(EX.rex, EX.Dog)
    o.add_individual(EX.tom, EX.Cat)
    return o


class TestSubsumption:
    def test_reflexive(self, ontology):
        assert ontology.is_subclass(EX.Dog, EX.Dog)

    def test_transitive(self, ontology):
        assert ontology.is_subclass(EX.Dog, EX.Animal)
        assert not ontology.is_subclass(EX.Animal, EX.Dog)

    def test_unrelated(self, ontology):
        assert not ontology.is_subclass(EX.Robot, EX.Animal)

    def test_superclasses_closure(self, ontology):
        assert ontology.superclasses(EX.Dog) == {EX.Mammal, EX.Animal}

    def test_subclasses_closure(self, ontology):
        assert ontology.subclasses(EX.Animal) == {EX.Mammal, EX.Dog, EX.Cat}

    def test_direct_subclasses(self, ontology):
        assert ontology.subclasses(EX.Animal, direct=True) == {EX.Mammal}

    def test_cache_invalidated_on_new_edge(self, ontology):
        assert not ontology.is_subclass(EX.Robot, EX.Animal)
        ontology.add_subclass_of(EX.Robot, EX.Animal)
        assert ontology.is_subclass(EX.Robot, EX.Animal)

    def test_self_subclass_rejected(self, ontology):
        with pytest.raises(OntologyError):
            ontology.add_subclass_of(EX.Dog, EX.Dog)


class TestInstances:
    def test_is_instance_through_hierarchy(self, ontology):
        assert ontology.is_instance(EX.rex, EX.Dog)
        assert ontology.is_instance(EX.rex, EX.Animal)
        assert not ontology.is_instance(EX.rex, EX.Cat)

    def test_individuals_of_includes_subclasses(self, ontology):
        assert ontology.individuals_of(EX.Animal) == {EX.rex, EX.tom}

    def test_individuals_of_direct(self, ontology):
        assert ontology.individuals_of(EX.Animal, direct=True) == set()

    def test_add_individual_requires_declared_class(self, ontology):
        with pytest.raises(OntologyError):
            ontology.add_individual(EX.x, EX.UndeclaredClass)

    def test_label_and_comment(self, ontology):
        assert ontology.label_of(EX.Animal) == "Animal"
        assert ontology.comment_of(EX.Animal) is None


class TestValidation:
    def test_valid_statement(self, ontology):
        ontology.validate_statement(EX.rex, EX.owns, EX.tom)

    def test_domain_violation(self, ontology):
        ontology.add_individual(EX.r2d2, EX.Robot)
        with pytest.raises(OntologyError):
            ontology.validate_statement(EX.r2d2, EX.owns, EX.tom)

    def test_range_violation(self, ontology):
        ontology.add_individual(EX.r2d2, EX.Robot)
        with pytest.raises(OntologyError):
            ontology.validate_statement(EX.rex, EX.owns, EX.r2d2)

    def test_literal_in_object_range_rejected(self, ontology):
        with pytest.raises(OntologyError):
            ontology.validate_statement(EX.rex, EX.owns, Literal(3))

    def test_untyped_subject_passes(self, ontology):
        ontology.validate_statement(EX.unknown, EX.owns, EX.tom)

    def test_datatype_property_accepts_literal(self, ontology):
        ontology.validate_statement(EX.rex, EX.age, Literal(3))


class TestCycles:
    def test_no_cycles_in_tree(self, ontology):
        assert ontology.find_subclass_cycles() == []

    def test_detects_cycle(self):
        o = Ontology()
        o.add_class(EX.A)
        o.add_class(EX.B, (EX.A,))
        o.graph.add(EX.A, URIRef("http://www.w3.org/2000/01/rdf-schema#subClassOf"), EX.B)
        o._invalidate()
        assert o.find_subclass_cycles()


class TestReasoner:
    @pytest.fixture()
    def reasoner(self, ontology):
        data = Graph()
        data.add(EX.fido, RDF.type, EX.Dog)
        data.add(EX.fido, EX.owns, EX.tom)
        return Reasoner(ontology, data)

    def test_inferred_types(self, reasoner):
        assert reasoner.inferred_types(EX.fido) == {EX.Dog, EX.Mammal, EX.Animal}

    def test_is_instance_from_data_graph(self, reasoner):
        assert reasoner.is_instance(EX.fido, EX.Animal)

    def test_instances_of_spans_graphs(self, reasoner):
        assert EX.fido in reasoner.instances_of(EX.Animal)
        assert EX.rex in reasoner.instances_of(EX.Animal)

    def test_materialise_types(self, reasoner):
        entailed = reasoner.materialise_types()
        assert (EX.fido, RDF.type, EX.Animal) in entailed

    def test_entailed_triples_include_data(self, reasoner):
        triples = list(reasoner.entailed_triples())
        assert (EX.fido, EX.owns, EX.tom) in triples
        assert (EX.fido, RDF.type, EX.Mammal) in triples

    def test_validate_data_clean(self, reasoner):
        assert reasoner.validate_data() == []

    def test_validate_data_detects_domain_violation(self, ontology):
        data = Graph()
        data.add(EX.c3po, RDF.type, EX.Robot)
        data.add(EX.c3po, EX.owns, EX.tom)
        problems = Reasoner(ontology, data).validate_data()
        assert len(problems) == 1
        assert "domain" in problems[0]
