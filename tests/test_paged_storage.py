"""Unit tests for the paged storage engine (ISSUE 10 tentpole).

Covers the layers below the differential suite: the immutable run /
term-bank file formats, the bounded block cache, size-tiered
compaction with tombstone garbage collection, offline verification,
and the probe-API source lint — no module outside ``rdf/graph.py``
and the storage package may reach into the raw ``_spo``/``_pos``/
``_osp`` index dictionaries.
"""

from __future__ import annotations

import json
import pathlib
import re
import shutil

import pytest

from repro.observability import get_registry, render_prometheus
from repro.rdf import Graph, Literal, URIRef
from repro.storage import (
    DiskBackend,
    MemoryBackend,
    PagedBackend,
    detect_engine,
    open_backend,
    open_store,
)
from repro.storage import records
from repro.storage.errors import SnapshotMismatch, StorageError
from repro.storage.pages import (
    BLOCK_BYTES,
    RECORDS_PER_BLOCK,
    BlockCache,
    RunReader,
    TermBankReader,
    write_run,
    write_term_bank,
)
from repro.storage.verify import verify_store

EX = "http://example.org/"


def triple(i: int):
    return (
        URIRef(f"{EX}s{i % 11}"),
        URIRef(f"{EX}p{i % 3}"),
        Literal(i),
    )


def populated_paged_graph(directory: str, n: int = 20, **kwargs) -> Graph:
    graph = Graph(backend=PagedBackend(directory, **kwargs))
    graph.add_all(triple(i) for i in range(n))
    return graph


class TestRunFormat:
    ENTRIES = [
        (1, 10, 100, 1),
        (1, 10, 101, 1),
        (2, 10, 100, 1),
        (2, 11, 100, 0),  # a tombstone
        (3, 12, 103, 1),
    ]

    def write(self, tmp_path) -> pathlib.Path:
        path = tmp_path / "run-000007.run"
        entry = write_run(path, seq=7, level=2, entries=self.ENTRIES)
        assert entry["file"] == path.name
        assert entry["seq"] == 7 and entry["level"] == 2
        assert entry["records"] == 5
        assert entry["adds"] == 4 and entry["tombstones"] == 1
        assert entry["bytes"] == path.stat().st_size
        return path

    def test_round_trip_and_point_lookups(self, tmp_path):
        path = self.write(tmp_path)
        reader = RunReader(path, BlockCache(4))
        assert reader.seq == 7 and reader.level == 2
        assert reader.records == 5
        # Full scans of each permutation come back in sorted key order
        # and carry the original triples.
        spo = list(reader.scan(0, ()))
        assert spo == sorted(spo)
        assert {(a, b, c) for a, b, c, _ in spo} == {
            (s, p, o) for s, p, o, _ in self.ENTRIES
        }
        for s, p, o, flag in self.ENTRIES:
            assert reader.point(s, p, o) == flag
        assert reader.point(9, 9, 9) is None
        # Prefix ranges: subject 1 has two triples, (1, 10) both.
        assert reader.range_size(0, (1,)) == 2
        assert reader.range_size(0, (1, 10)) == 2
        assert reader.range_size(0, (2, 11, 100)) == 1
        assert reader.range_size(0, (42,)) == 0
        # POS section keys are (p, o, s); map back to (s, p, o).
        pos = [(c_, a_, b_) for a_, b_, c_, _ in reader.scan(1, (10,))]
        assert sorted(pos) == [(1, 10, 100), (1, 10, 101), (2, 10, 100)]
        assert reader.distinct_first(0) == 3  # subjects 1, 2, 3
        assert reader.distinct_first(1) == 3  # predicates 10, 11, 12
        reader.verify()
        reader.close()

    def test_multi_block_runs_use_fence_keys(self, tmp_path):
        n = RECORDS_PER_BLOCK * 3 + 17  # spans four blocks
        entries = [(i, i % 7, i % 13, 1) for i in range(n)]
        path = tmp_path / "run-000001.run"
        write_run(path, seq=1, level=1, entries=entries)
        reader = RunReader(path, BlockCache(8))
        assert reader.records == n
        for probe in (0, RECORDS_PER_BLOCK - 1, RECORDS_PER_BLOCK, n - 1):
            assert reader.point(probe, probe % 7, probe % 13) == 1
        assert reader.range_size(0, ()) == n
        reader.verify()
        reader.close()

    def test_corruption_fails_crc(self, tmp_path):
        path = self.write(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[12] ^= 0xFF  # inside the SPO section
        path.write_bytes(bytes(blob))
        reader = RunReader(path, BlockCache(4))
        with pytest.raises(SnapshotMismatch):
            reader.verify()
        reader.close()


class TestTermBankFormat:
    TERMS = [
        URIRef(f"{EX}alpha"),
        Literal("beta"),
        Literal(42),
        URIRef(f"{EX}gamma"),
    ]

    def test_round_trip_and_find(self, tmp_path):
        path = tmp_path / "terms-000001.tb"
        entry = write_term_bank(path, base=3, terms=self.TERMS)
        assert entry["base"] == 3 and entry["count"] == 4
        reader = TermBankReader(path)
        for offset, term in enumerate(self.TERMS):
            assert reader.term(3 + offset) == term
            assert reader.find(records.encode_term(term)) == 3 + offset
        assert reader.find(records.encode_term(Literal("absent"))) is None
        reader.verify()
        reader.close()

    def test_corruption_fails_crc(self, tmp_path):
        path = tmp_path / "terms-000001.tb"
        write_term_bank(path, base=0, terms=self.TERMS)
        blob = bytearray(path.read_bytes())
        blob[12] ^= 0xFF  # inside the first term's payload
        path.write_bytes(bytes(blob))
        reader = TermBankReader(path)
        with pytest.raises(SnapshotMismatch):
            reader.verify()
        reader.close()


class TestBlockCache:
    def test_capped_cache_stays_correct_under_eviction(self, tmp_path):
        """A cache far smaller than the run must still answer every
        probe correctly — only the metrics differ."""
        n = RECORDS_PER_BLOCK * 8
        entries = [(i, 1, i, 1) for i in range(n)]
        path = tmp_path / "run-000001.run"
        write_run(path, seq=1, level=1, entries=entries)
        cache = BlockCache(2)
        reader = RunReader(path, cache)
        # Sweep forwards and backwards so every block is evicted and
        # refetched at least once.
        for i in list(range(0, n, 97)) + list(range(n - 1, 0, -101)):
            assert reader.point(i, 1, i) == 1
        stats = cache.stats()
        assert stats["evictions"] > 0
        assert stats["resident_blocks"] <= 2
        assert stats["misses"] > stats["resident_blocks"]
        reader.close()

    def test_purge_drops_only_one_readers_blocks(self, tmp_path):
        cache = BlockCache(64)
        paths = []
        for seq in (1, 2):
            path = tmp_path / f"run-00000{seq}.run"
            write_run(path, seq=seq, level=1, entries=[(seq, 1, 1, 1)])
            paths.append(path)
        first = RunReader(paths[0], cache)
        second = RunReader(paths[1], cache)
        assert first.point(1, 1, 1) == 1
        assert second.point(2, 1, 1) == 1
        assert len(cache) == 2
        first.close()  # purges its token
        assert len(cache) == 1
        assert second.point(2, 1, 1) == 1
        second.close()
        assert len(cache) == 0

    def test_backend_exports_page_metrics(self, tmp_path):
        graph = populated_paged_graph(str(tmp_path / "s"), sync="none")
        graph.backend.checkpoint()
        assert len(graph) == 20
        list(graph.triples())
        graph.close()
        text = render_prometheus(get_registry())
        assert "repro_storage_page_hits_total" in text
        assert "repro_storage_page_misses_total" in text
        assert "repro_storage_page_cache_blocks" in text


class TestCompaction:
    def make_backend(self, tmp_path, **kwargs) -> PagedBackend:
        kwargs.setdefault("sync", "none")
        return PagedBackend(str(tmp_path / "store"), **kwargs)

    def test_size_tiered_merge_promotes_a_level(self, tmp_path):
        backend = self.make_backend(tmp_path, tier_fanout=4)
        graph = Graph(backend=backend)
        for round_no in range(3):
            graph.add_all(
                triple(i) for i in range(round_no * 10, round_no * 10 + 10)
            )
            assert backend.checkpoint()
        # Three level-0 overlay runs: below the fanout, no merge yet.
        assert [run.level for run in backend.runs] == [0, 0, 0]
        assert backend.maybe_compact() is False
        graph.add_all(triple(i) for i in range(30, 40))
        # The fourth checkpoint sees a full fan and merges it into one
        # level-1 run as its trailing (off-write-path) merge step.
        assert backend.checkpoint()
        assert [run.level for run in backend.runs] == [1]
        assert len(graph) == 40
        assert sorted(graph.triples(), key=repr) == sorted(
            (triple(i) for i in range(40)), key=repr
        )
        assert backend.describe()["compactions"] >= 1
        graph.close()

    def test_checkpoint_runs_one_merge_step(self, tmp_path):
        backend = self.make_backend(tmp_path, tier_fanout=2)
        graph = Graph(backend=backend)
        for round_no in range(2):
            graph.add_all(
                triple(i) for i in range(round_no * 5, round_no * 5 + 5)
            )
            assert backend.checkpoint()
        # The second checkpoint found two level-0 runs and merged them
        # off the write path.
        assert [run.level for run in backend.runs] == [1]
        assert backend.describe()["compactions"] >= 1
        graph.close()

    def test_compact_drops_tombstones(self, tmp_path):
        backend = self.make_backend(tmp_path, tier_fanout=100)
        graph = Graph(backend=backend)
        graph.add_all(triple(i) for i in range(12))
        backend.checkpoint()
        for i in range(0, 12, 2):
            graph.remove(*triple(i))
        backend.checkpoint()
        assert sum(run.tombstones for run in backend.runs) > 0
        backend.compact()
        assert len(backend.runs) == 1
        assert backend.runs[0].tombstones == 0
        assert backend.runs[0].records == 6
        survivors = sorted(graph.triples(), key=repr)
        assert survivors == sorted(
            (triple(i) for i in range(1, 12, 2)), key=repr
        )
        graph.close()
        # The dropped victims are gone from disk too.
        run_files = list((tmp_path / "store").glob("run-*.run"))
        assert len(run_files) == 1

    def test_cold_open_reads_no_triples_from_wal(self, tmp_path):
        """O(segments) cold open: after a clean close every triple
        lives in runs, so reopen replays zero WAL records."""
        directory = str(tmp_path / "store")
        graph = populated_paged_graph(directory, n=25, sync="none")
        graph.close()
        backend = PagedBackend(directory, sync="none")
        recovery = backend.describe()["recovery"]
        assert recovery["wal_records_replayed"] == 0
        assert recovery["outcome"] == "clean"
        assert backend.size == 25
        backend.close()

    def test_auto_checkpoint_bounds_the_wal(self, tmp_path):
        backend = self.make_backend(tmp_path, checkpoint_bytes=2048)
        graph = Graph(backend=backend)
        for i in range(400):
            graph.add(*triple(i + 1000))
        assert backend.runs, "auto-checkpoint must have produced runs"
        assert backend.wal_size() < 4096
        graph.close()


class TestEngineDispatch:
    def test_detect_and_open(self, tmp_path):
        paged_dir = str(tmp_path / "paged")
        disk_dir = str(tmp_path / "disk")
        populated_paged_graph(paged_dir, n=5, sync="none").close()
        disk_graph = Graph(backend=DiskBackend(disk_dir, sync="none"))
        disk_graph.add(*triple(1))
        disk_graph.close()
        assert detect_engine(paged_dir) == "paged"
        assert detect_engine(disk_dir) == "disk"
        assert detect_engine(str(tmp_path / "missing")) is None
        for directory, kind in ((paged_dir, "paged"), (disk_dir, "disk")):
            backend = open_backend(directory, sync="none")
            assert backend.kind == kind
            backend.close()
        with open_store(paged_dir, sync="none") as graph:
            assert len(graph) == 5

    def test_engine_conflict_is_rejected(self, tmp_path):
        directory = str(tmp_path / "store")
        populated_paged_graph(directory, n=3, sync="none").close()
        with pytest.raises(StorageError):
            open_backend(directory, engine="disk", sync="none")
        with pytest.raises(SnapshotMismatch):
            DiskBackend(directory, sync="none")

    def test_unknown_engine_is_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            open_backend(str(tmp_path / "s"), engine="granite")

    def test_copy_state_both_directions(self, tmp_path):
        from repro.storage.backend import copy_state

        memory = MemoryBackend()
        source = Graph(backend=memory)
        source.add_all(triple(i) for i in range(9))
        backend = PagedBackend(str(tmp_path / "store"), sync="none")
        copy_state(memory, backend)
        clone = Graph(backend=backend)
        assert sorted(clone.triples(), key=repr) == sorted(
            source.triples(), key=repr
        )
        # And back out of the non-dict-indexed paged backend.
        round_trip = MemoryBackend()
        copy_state(backend, round_trip)
        assert sorted(Graph(backend=round_trip).triples(), key=repr) == (
            sorted(source.triples(), key=repr)
        )
        clone.close()


class TestVerifyStore:
    def test_clean_paged_store_verifies(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_paged_graph(directory, n=15, sync="none")
        graph.backend.checkpoint()
        graph.add(*triple(900))  # leave a live WAL tail too
        graph.close()
        report = verify_store(directory)
        assert report["ok"] is True
        assert report["engine"] == "paged"
        kinds = {c["kind"] for c in report["checked"]}
        assert kinds == {"run", "term_bank", "wal"}
        assert report["wal"]["status"] == "clean"

    def test_corrupt_run_is_first_failure(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_paged_graph(directory, n=15, sync="none")
        graph.backend.checkpoint()
        graph.close()
        run_path = next(pathlib.Path(directory).glob("run-*.run"))
        blob = bytearray(run_path.read_bytes())
        blob[16] ^= 0xFF
        run_path.write_bytes(bytes(blob))
        report = verify_store(directory)
        assert report["ok"] is False
        assert report["failure"]["file"] == run_path.name
        assert "CRC" in report["failure"]["error"]
        # The report is machine-readable as-is.
        json.dumps(report)

    def crash_image(self, tmp_path) -> pathlib.Path:
        """A copy of a live store directory — close() checkpoints, so
        a crash image is the only store with a populated WAL."""
        directory = str(tmp_path / "store")
        graph = populated_paged_graph(directory, n=6, sync="always")
        crashed = tmp_path / "crashed"
        shutil.copytree(directory, crashed)
        graph.close()
        assert (crashed / "store.wal").stat().st_size > 3
        return crashed

    def test_torn_wal_tail_is_a_note_not_a_failure(self, tmp_path):
        crashed = self.crash_image(tmp_path)
        wal_path = crashed / "store.wal"
        wal_path.write_bytes(wal_path.read_bytes()[:-3])
        report = verify_store(str(crashed))
        assert report["ok"] is True
        assert report["wal"]["status"] == "torn"
        assert report["wal"]["torn_bytes"] > 0

    def test_corrupt_wal_interior_fails(self, tmp_path):
        crashed = self.crash_image(tmp_path)
        wal_path = crashed / "store.wal"
        blob = bytearray(wal_path.read_bytes())
        blob[10] ^= 0xFF
        wal_path.write_bytes(bytes(blob))
        report = verify_store(str(crashed))
        assert report["ok"] is False
        assert report["failure"]["file"] == "store.wal"

    def test_disk_store_verifies_too(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = Graph(backend=DiskBackend(directory, sync="none"))
        graph.add_all(triple(i) for i in range(8))
        graph.backend.compact()  # fold the WAL into a segment
        graph.close()
        report = verify_store(directory)
        assert report["ok"] is True and report["engine"] == "disk"
        segment = next(pathlib.Path(directory).glob("seg-*.seg"))
        blob = bytearray(segment.read_bytes())
        blob[20] ^= 0xFF
        segment.write_bytes(bytes(blob))
        report = verify_store(directory)
        assert report["ok"] is False
        assert report["failure"]["file"] == segment.name

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(StorageError):
            verify_store(str(tmp_path / "nope"))


class TestProbeSourceLint:
    """Acceptance: no module outside ``rdf/graph.py`` and the backend
    implementations may touch the raw index dictionaries — everything
    else goes through the ``IndexProbe`` protocol."""

    PATTERN = re.compile(r"\.\s*_(?:spo|pos|osp)\b")
    ALLOWED = {
        pathlib.PurePosixPath("repro/rdf/graph.py"),
        pathlib.PurePosixPath("repro/storage/backend.py"),
        pathlib.PurePosixPath("repro/storage/disk.py"),
        pathlib.PurePosixPath("repro/storage/paged.py"),
        pathlib.PurePosixPath("repro/storage/probe.py"),
    }

    def test_no_direct_index_access_outside_backends(self):
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            relative = pathlib.PurePosixPath(
                path.relative_to(src).as_posix()
            )
            if relative in self.ALLOWED:
                continue
            for line_no, line in enumerate(
                path.read_text("utf-8").splitlines(), start=1
            ):
                if self.PATTERN.search(line):
                    offenders.append(f"{relative}:{line_no}: {line.strip()}")
        assert not offenders, (
            "direct _spo/_pos/_osp index access outside the storage "
            "layer:\n" + "\n".join(offenders)
        )
