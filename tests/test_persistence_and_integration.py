"""Repository persistence, SCUFL round-trips of compiled views, and
full-pipeline trace/XML-path integration checks."""

import pytest

from repro.annotation import RepositoryManager
from repro.annotation.map import AnnotationMap
from repro.core.ispider import (
    LiveImprintAnnotator,
    ResultSetHolder,
    build_deployment,
    example_quality_view_xml,
    setup_framework,
)
from repro.rdf import Q, URIRef
from repro.rdf.lsid import uniprot_lsid
from repro.services.messages import AnnotationMapMessage, DataSetMessage
from repro.workflow.scufl import workflow_from_xml, workflow_to_xml

D1 = uniprot_lsid("P00001")
D2 = uniprot_lsid("P00002")


class TestRepositoryPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        manager = RepositoryManager()
        curated = manager.create("curated", persistent=True)
        curated.annotate(D1, Q.HitRatio, 0.8)
        curated.annotate(D2, Q.EvidenceCode, 4)
        manager.repository("cache").annotate(D1, Q.Masses, 9)
        paths = manager.save_all(str(tmp_path))
        assert any(p.endswith("curated.nt") for p in paths)
        assert any(p.endswith("repositories.json") for p in paths)
        # the transient cache is not persisted
        assert not any("cache" in p for p in paths)

        fresh = RepositoryManager()
        restored = fresh.load_all(str(tmp_path))
        assert restored == ["curated"]
        assert fresh.repository("curated").lookup(D1, Q.HitRatio) == 0.8
        assert fresh.repository("curated").lookup(D2, Q.EvidenceCode) == 4

    def test_load_into_existing_repository(self, tmp_path):
        manager = RepositoryManager()
        manager.create("curated", persistent=True).annotate(D1, Q.HitRatio, 0.8)
        manager.save_all(str(tmp_path))
        target = RepositoryManager()
        target.create("curated", persistent=True).annotate(D2, Q.HitRatio, 0.2)
        target.load_all(str(tmp_path))
        store = target.repository("curated")
        assert store.lookup(D1, Q.HitRatio) == 0.8
        assert store.lookup(D2, Q.HitRatio) == 0.2

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RepositoryManager().load_all(str(tmp_path))

    def test_loaded_store_continues_annotating(self, tmp_path):
        manager = RepositoryManager()
        manager.create("curated", persistent=True).annotate(D1, Q.HitRatio, 0.8)
        manager.save_all(str(tmp_path))
        fresh = RepositoryManager()
        fresh.load_all(str(tmp_path))
        fresh.repository("curated").annotate(D2, Q.HitRatio, 0.3)
        assert fresh.repository("curated").lookup(D1, Q.HitRatio) == 0.8
        assert fresh.repository("curated").lookup(D2, Q.HitRatio) == 0.3


class TestCompiledViewScufl:
    def test_compiled_quality_workflow_structure_roundtrips(self, framework):
        holder = ResultSetHolder()
        framework.deploy_annotation_service(
            "ImprintOutputAnnotator", LiveImprintAnnotator(holder)
        )
        view = framework.quality_view(example_quality_view_xml())
        workflow = view.compile()
        restored = workflow_from_xml(workflow_to_xml(workflow))
        assert set(restored.processors) == set(workflow.processors)
        assert len(restored.data_links) == len(workflow.data_links)
        assert len(restored.control_links) == len(workflow.control_links)
        assert restored.topological_order() == workflow.topological_order()


class TestEnactmentTraceIntegration:
    def test_embedded_run_trace_covers_every_processor(self, scenario):
        deployment = build_deployment(scenario)
        deployment.run()
        trace = deployment.framework.enactor.last_trace
        assert set(trace.order()) == set(deployment.embedded.processors)
        assert trace.failed() == []
        # the identification step iterated once per sample
        by_name = {event.processor: event for event in trace.events}
        assert by_name["ProteinIdentification"].iterations == len(
            scenario.pedro
        )


class TestXMLMessagePath:
    def test_qa_service_full_xml_invocation(self, framework):
        """Exercise the serialise -> invoke -> serialise wire path with a
        real QA over real-looking evidence."""
        service = framework.services.by_name("PIScoreClassifier")
        items = [uniprot_lsid(f"P{i:05d}") for i in range(1, 7)]
        amap = AnnotationMap(items)
        for index, item in enumerate(items):
            amap.set_evidence(item, Q.HitRatio, 0.1 + index * 0.15)
            amap.set_evidence(item, Q.Coverage, 0.1 + index * 0.15)
        service.build_operator = lambda **cfg: _classifier(cfg)
        out_xml = service.invoke_xml(
            DataSetMessage(items).to_xml(), AnnotationMapMessage(amap).to_xml()
        )
        out = AnnotationMapMessage.from_xml(out_xml).amap
        labels = {out.get_tag(i, "ScoreClass").plain() for i in items}
        assert labels <= {Q.low, Q.mid, Q.high}
        assert len(labels) >= 2


def _classifier(config):
    from repro.qa.classifier import PIScoreClassifierQA

    return PIScoreClassifierQA(
        name=config.get("name", "c"),
        tag_name=config.get("tag_name", "ScoreClass"),
        variables=config.get(
            "variables", {"hitRatio": Q.HitRatio, "coverage": Q.Coverage}
        ),
    )
