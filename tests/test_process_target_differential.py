"""Tests for the alternative process target + differential testing.

The same quality-view spec compiled for the workflow environment and
for the direct process interpreter must route identical items to
identical groups — the strongest check that the compiler rules preserve
the abstract-process semantics.
"""

import pytest

from repro.core.ispider import (
    FILTER_ACTION,
    LiveImprintAnnotator,
    ResultSetHolder,
    example_quality_view_xml,
    setup_framework,
)
from repro.qv import parse_quality_view
from repro.qv.compiler import CompilationError
from repro.qv.process_target import ProcessTargetCompiler


@pytest.fixture()
def loaded(scenario, result_set):
    framework, holder = setup_framework(scenario)
    holder.set(result_set)
    return framework, holder, result_set


def process_compiler(framework) -> ProcessTargetCompiler:
    return ProcessTargetCompiler(
        framework.iq_model,
        framework.services,
        framework.bindings,
        framework.repositories,
    )


class TestProcessTarget:
    def test_compiles_the_example_view(self, loaded):
        framework, _, __ = loaded
        spec = parse_quality_view(example_quality_view_xml())
        process = process_compiler(framework).compile(spec)
        assert len(process.annotators) == 1
        assert process.enrichment is not None
        assert len(process.assertions) == 3
        assert len(process.actions) == 1

    def test_executes_end_to_end(self, loaded):
        framework, _, results = loaded
        spec = parse_quality_view(example_quality_view_xml())
        process = process_compiler(framework).compile(spec)
        framework.repositories.clear_transient()
        result = process.execute(results.items())
        assert result.consolidated.tag_names() == {"HR MC", "HR", "ScoreClass"}
        assert result.outcomes[FILTER_ACTION].surviving()

    def test_unresolvable_service_rejected(self, scenario):
        framework, _ = setup_framework(scenario)
        framework.services.undeploy("ImprintOutputAnnotator")
        spec = parse_quality_view(example_quality_view_xml())
        with pytest.raises(CompilationError):
            process_compiler(framework).compile(spec)

    def test_validation_enforced(self, loaded):
        framework, _, __ = loaded
        bad = example_quality_view_xml().replace("q:hitRatio", "q:Bogus")
        with pytest.raises(ValueError, match="validation"):
            process_compiler(framework).compile(parse_quality_view(bad))


class TestDifferential:
    @pytest.mark.parametrize(
        "condition",
        [
            "ScoreClass in q:high",
            "ScoreClass in q:high, q:mid",
            "ScoreClass in q:high, q:mid and HR MC > 20",
            "HR MC > 35",
            "HR > 20 and ScoreClass not in q:low",
        ],
    )
    def test_both_targets_agree(self, loaded, condition):
        framework, holder, results = loaded
        spec = parse_quality_view(example_quality_view_xml(condition))
        items = results.items()

        # workflow target
        view = framework.quality_view(spec)
        workflow_result = view.run(items)
        workflow_kept = workflow_result.surviving(FILTER_ACTION)

        # process target
        framework.repositories.clear_transient()
        process = process_compiler(framework).compile(spec)
        process_result = process.execute(items)
        process_kept = process_result.surviving(FILTER_ACTION)

        assert workflow_kept == process_kept
        # tags agree item-by-item
        for item in items:
            for tag in ("HR MC", "HR", "ScoreClass"):
                workflow_tag = workflow_result.annotation_map.get_tag(item, tag)
                process_tag = process_result.consolidated.get_tag(item, tag)
                assert (workflow_tag is None) == (process_tag is None)
                if workflow_tag is not None:
                    assert workflow_tag.plain() == process_tag.plain()

    def test_splitter_differential(self, loaded):
        framework, holder, results = loaded
        xml = """
        <QualityView name="split-differential">
          <Annotator serviceName="ImprintOutputAnnotator"
                     serviceType="q:Imprint-output-annotation">
            <variables repositoryRef="cache" persistent="false">
              <var evidence="q:hitRatio"/>
              <var evidence="q:coverage"/>
            </variables>
          </Annotator>
          <QualityAssertion serviceName="PIScoreClassifier"
                            serviceType="q:PIScoreClassifier"
                            tagSemType="q:PIScoreClassification"
                            tagName="ScoreClass" tagSynType="q:class">
            <variables repositoryRef="cache">
              <var variableName="hitRatio" evidence="q:hitRatio"/>
              <var variableName="coverage" evidence="q:coverage"/>
            </variables>
          </QualityAssertion>
          <action name="route">
            <splitter>
              <group name="top"><condition>ScoreClass = 'high'</condition></group>
              <group name="usable"><condition>ScoreClass in q:high, q:mid</condition></group>
            </splitter>
          </action>
        </QualityView>
        """
        spec = parse_quality_view(xml)
        items = results.items()
        view = framework.quality_view(spec)
        workflow_result = view.run(items)
        framework.repositories.clear_transient()
        process_result = process_compiler(framework).compile(spec).execute(items)
        for group in ("top", "usable", "default"):
            assert workflow_result.group("route", group) == (
                process_result.outcomes["route"].items(group)
            )
