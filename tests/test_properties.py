"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.annotation import AnnotationMap
from repro.process.actions import DEFAULT_GROUP, FilterAction, SplitterAction
from repro.proteomics.digest import tryptic_digest
from repro.proteomics.masses import RESIDUE_MONO, WATER_MONO, peptide_mass
from repro.qa.classifier import mean_and_stddev
from repro.rdf import Graph, Literal, Namespace, Triple, URIRef
from repro.rdf.serializer import parse_ntriples, to_ntriples

EX = Namespace("http://example.org/")

# -- strategies ---------------------------------------------------------------

uri_names = st.text(
    alphabet=string.ascii_letters + string.digits, min_size=1, max_size=8
)
uris = uri_names.map(lambda n: EX[n])
literal_values = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
)
rdf_objects = st.one_of(uris, literal_values.map(Literal))
triples = st.builds(Triple, uris, uris, rdf_objects)
sequences = st.text(alphabet="".join(RESIDUE_MONO), min_size=1, max_size=200)


# -- graph invariants -----------------------------------------------------------


@given(st.lists(triples, max_size=60))
def test_graph_len_equals_distinct_triples(triple_list):
    g = Graph()
    g.add_all(triple_list)
    assert len(g) == len(set(triple_list))


@given(st.lists(triples, max_size=40))
def test_graph_ntriples_roundtrip(triple_list):
    g = Graph()
    g.add_all(triple_list)
    g2 = Graph()
    for t in parse_ntriples(to_ntriples(g)):
        g2.add(t)
    assert g2 == g


@given(st.lists(triples, max_size=40), st.lists(triples, max_size=40))
def test_graph_set_operations_are_set_semantics(a_list, b_list):
    a, b = Graph().add_all(a_list), Graph().add_all(b_list)
    sa, sb = set(a), set(b)
    assert set(a + b) == sa | sb
    assert set(a - b) == sa - sb
    assert set(a & b) == sa & sb


@given(st.lists(triples, min_size=1, max_size=40), st.data())
def test_graph_pattern_matches_are_consistent(triple_list, data):
    g = Graph().add_all(triple_list)
    target = data.draw(st.sampled_from(triple_list))
    assert target in g
    assert target in set(g.triples((target.subject, None, None)))
    assert target in set(g.triples((None, target.predicate, None)))
    assert target in set(g.triples((None, None, target.object)))


@given(st.lists(triples, max_size=40))
def test_graph_remove_then_absent(triple_list):
    g = Graph().add_all(triple_list)
    for t in triple_list:
        g.remove(*t)
    assert len(g) == 0


# -- mass/digest invariants -------------------------------------------------------


@given(sequences)
def test_peptide_mass_positive_and_additive(sequence):
    mass = peptide_mass(sequence)
    assert mass > WATER_MONO
    if len(sequence) > 1:
        left = peptide_mass(sequence[:1])
        right = peptide_mass(sequence[1:])
        assert abs((left + right - WATER_MONO) - mass) < 1e-6


@given(sequences, st.integers(min_value=0, max_value=3))
def test_digest_fragments_are_substrings(sequence, missed):
    for peptide in tryptic_digest(sequence, missed_cleavages=missed, min_length=1):
        assert sequence[peptide.start:peptide.end] == peptide.sequence
        assert peptide.missed_cleavages <= missed


@given(sequences)
def test_limit_digest_is_a_partition(sequence):
    peptides = tryptic_digest(
        sequence, missed_cleavages=0, min_length=1, max_length=10**6
    )
    reconstructed = "".join(p.sequence for p in peptides)
    assert reconstructed == sequence


@given(sequences, st.integers(min_value=1, max_value=3))
def test_digest_monotone_in_missed_cleavages(sequence, missed):
    fewer = tryptic_digest(sequence, missed_cleavages=missed - 1, min_length=1)
    more = tryptic_digest(sequence, missed_cleavages=missed, min_length=1)
    assert {p.sequence for p in fewer} <= {p.sequence for p in more}


# -- statistics --------------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_mean_stddev_bounds(values):
    mean, std = mean_and_stddev(values)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
    assert std >= 0.0


@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
    st.floats(min_value=-50, max_value=50),
)
def test_mean_shift_invariance(values, shift):
    mean_a, std_a = mean_and_stddev(values)
    mean_b, std_b = mean_and_stddev([v + shift for v in values])
    assert abs((mean_a + shift) - mean_b) < 1e-6
    assert abs(std_a - std_b) < 1e-6


# -- action invariants ----------------------------------------------------------------


items_and_scores = st.lists(
    st.tuples(uri_names, st.floats(min_value=0, max_value=100)),
    min_size=0,
    max_size=30,
    unique_by=lambda pair: pair[0],
)


@given(items_and_scores, st.floats(min_value=0, max_value=100))
def test_splitter_covers_all_items(pairs, threshold):
    amap = AnnotationMap()
    items = []
    for name, score in pairs:
        item = EX[name]
        items.append(item)
        amap.set_tag(item, "score", score)
    splitter = SplitterAction(
        "s", [("hi", f"score > {threshold}"), ("lo", f"score <= {threshold}")]
    )
    outcome = splitter.execute(items, amap)
    routed = (
        set(outcome.items("hi"))
        | set(outcome.items("lo"))
        | set(outcome.items(DEFAULT_GROUP))
    )
    assert routed == set(items)
    # hi and lo partition exactly (no item matches both conditions)
    assert not set(outcome.items("hi")) & set(outcome.items("lo"))
    assert outcome.items(DEFAULT_GROUP) == []


@given(items_and_scores, st.floats(min_value=0, max_value=100))
def test_filter_is_splitter_special_case(pairs, threshold):
    amap = AnnotationMap()
    items = []
    for name, score in pairs:
        item = EX[name]
        items.append(item)
        amap.set_tag(item, "score", score)
    condition = f"score > {threshold}"
    filtered = FilterAction("f", condition).execute(items, amap)
    split = SplitterAction("s", [("keep", condition)]).execute(items, amap)
    assert filtered.items(FilterAction.ACCEPTED) == split.items("keep")


@given(items_and_scores)
def test_filter_preserves_order_and_subsets(pairs):
    amap = AnnotationMap()
    items = []
    for name, score in pairs:
        item = EX[name]
        items.append(item)
        amap.set_tag(item, "score", score)
    outcome = FilterAction("f", "score >= 50").execute(items, amap)
    kept = outcome.items(FilterAction.ACCEPTED)
    positions = [items.index(i) for i in kept]
    assert positions == sorted(positions)
    assert set(kept) <= set(items)


# -- annotation map invariants ------------------------------------------------------


@given(
    st.lists(uri_names, max_size=20, unique=True),
    st.lists(uri_names, max_size=20, unique=True),
)
def test_annotation_map_merge_union(names_a, names_b):
    a = AnnotationMap(EX[n] for n in names_a)
    b = AnnotationMap(EX[n] for n in names_b)
    a.merge(b)
    assert set(a.items()) == {EX[n] for n in names_a} | {EX[n] for n in names_b}


@given(st.lists(uri_names, min_size=1, max_size=20, unique=True), st.data())
def test_annotation_map_subset_idempotent(names, data):
    amap = AnnotationMap(EX[n] for n in names)
    chosen = data.draw(st.lists(st.sampled_from(names), unique=True))
    sub = amap.subset(EX[n] for n in chosen)
    assert sub.subset(sub.items()) == sub


# -- condition-language round-trip ---------------------------------------------


_ident = st.text(
    alphabet=string.ascii_letters, min_size=1, max_size=8
).filter(lambda s: s.lower() not in {"and", "or", "not", "in", "is",
                                     "null", "true", "false"})
_value = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False).map(
        lambda f: round(f, 3)
    ),
    st.booleans(),
    st.text(alphabet=string.ascii_letters + " ", max_size=10),
)


def _literal_nodes():
    from repro.process.conditions import ast as cast

    return _value.map(cast.LiteralNode)


def _comparisons():
    from repro.process.conditions import ast as cast

    return st.builds(
        cast.Comparison,
        st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        _ident.map(cast.Identifier),
        _literal_nodes(),
    )


def _condition_nodes(depth=2):
    from repro.process.conditions import ast as cast

    leaf = st.one_of(
        _comparisons(),
        st.builds(
            cast.Membership,
            _ident.map(cast.Identifier),
            st.lists(_literal_nodes(), min_size=1, max_size=3).map(tuple),
            st.booleans(),
        ),
        st.builds(cast.NullCheck, _ident.map(cast.Identifier), st.booleans()),
    )
    if depth == 0:
        return leaf
    sub = _condition_nodes(depth - 1)
    return st.one_of(
        leaf,
        st.builds(cast.AndNode, sub, sub),
        st.builds(cast.OrNode, sub, sub),
        st.builds(cast.NotNode, sub),
    )


@given(_condition_nodes())
@settings(max_examples=200)
def test_condition_unparse_parse_roundtrip(node):
    from repro.process.conditions.parser import parse_condition
    from repro.process.conditions.printer import unparse

    assert parse_condition(unparse(node)) == node


# -- service-message round-trip ---------------------------------------------------


_evidence_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=15),
    st.booleans(),
    uris,
)


@given(
    st.lists(
        st.tuples(uri_names, st.lists(
            st.tuples(uri_names, _evidence_values), max_size=4
        )),
        max_size=10,
        unique_by=lambda pair: pair[0],
    )
)
def test_annotation_map_message_roundtrip(entries):
    from repro.services.messages import AnnotationMapMessage

    amap = AnnotationMap()
    for item_name, evidence in entries:
        item = EX[item_name]
        amap.add_item(item)
        for evidence_name, value in evidence:
            amap.set_evidence(item, EX[evidence_name], value)
    parsed = AnnotationMapMessage.from_xml(AnnotationMapMessage(amap).to_xml())
    assert parsed.amap == amap
