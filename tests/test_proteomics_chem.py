"""Tests for masses, digestion, proteins, spectrometer."""

import math

import pytest

from repro.proteomics import (
    MassSpectrometer,
    Protein,
    SpectrometerSettings,
    WATER_MONO,
    generate_reference_database,
    peptide_mass,
    tryptic_digest,
)
from repro.proteomics.digest import cleavage_sites, limit_peptides, partial_peptides
from repro.proteomics.masses import (
    InvalidSequenceError,
    RESIDUE_MONO,
    mh_ion_mass,
    ppm_error,
    within_tolerance,
)


class TestMasses:
    def test_single_residue(self):
        assert peptide_mass("G") == pytest.approx(57.02146 + WATER_MONO)

    def test_additivity(self):
        assert peptide_mass("GAS") == pytest.approx(
            RESIDUE_MONO["G"] + RESIDUE_MONO["A"] + RESIDUE_MONO["S"] + WATER_MONO
        )

    def test_known_peptide(self):
        # Angiotensin fragment DRVYIHPF: well-known [M+H]+ ~ 1046.54
        assert mh_ion_mass("DRVYIHPF") == pytest.approx(1046.54, abs=0.02)

    def test_lowercase_accepted(self):
        assert peptide_mass("gas") == peptide_mass("GAS")

    def test_invalid_residue_rejected(self):
        with pytest.raises(InvalidSequenceError):
            peptide_mass("GAZ")

    def test_empty_rejected(self):
        with pytest.raises(InvalidSequenceError):
            peptide_mass("")

    def test_ppm_error_sign(self):
        assert ppm_error(1000.01, 1000.0) == pytest.approx(10.0)
        assert ppm_error(999.99, 1000.0) == pytest.approx(-10.0)

    def test_within_tolerance(self):
        assert within_tolerance(1000.01, 1000.0, 20)
        assert not within_tolerance(1000.05, 1000.0, 20)


class TestDigest:
    def test_cleaves_after_k_and_r(self):
        assert cleavage_sites("AAKBBRCC".replace("B", "G")) == [3, 6]

    def test_no_cleavage_before_proline(self):
        assert cleavage_sites("AAKPGGG") == []

    def test_limit_digest_fragments(self):
        peptides = tryptic_digest("AAAAAKGGGGGR", missed_cleavages=0, min_length=5)
        assert [p.sequence for p in peptides] == ["AAAAAK", "GGGGGR"]
        assert all(p.is_limit for p in peptides)

    def test_missed_cleavage_products(self):
        peptides = tryptic_digest("AAAAAKGGGGGR", missed_cleavages=1, min_length=5)
        sequences = {p.sequence for p in peptides}
        assert "AAAAAKGGGGGR" in sequences
        partials = partial_peptides(peptides)
        assert len(partials) == 1
        assert partials[0].missed_cleavages == 1

    def test_positions_are_consistent(self):
        sequence = "AAAAAKGGGGGRCCCCCK"
        for peptide in tryptic_digest(sequence, missed_cleavages=2, min_length=1):
            assert sequence[peptide.start:peptide.end] == peptide.sequence

    def test_length_window(self):
        peptides = tryptic_digest("AAKGGGGGGGGGGR", missed_cleavages=0,
                                  min_length=5, max_length=11)
        assert [p.sequence for p in peptides] == ["GGGGGGGGGGR"]

    def test_negative_missed_cleavages_rejected(self):
        with pytest.raises(ValueError):
            tryptic_digest("AAK", missed_cleavages=-1)

    def test_protein_ending_in_k_has_no_empty_fragment(self):
        peptides = tryptic_digest("AAAAAK", missed_cleavages=0, min_length=1)
        assert [p.sequence for p in peptides] == ["AAAAAK"]


class TestReferenceDatabase:
    def test_deterministic_for_seed(self):
        a = generate_reference_database(20, seed=5)
        b = generate_reference_database(20, seed=5)
        assert [p.sequence for p in a] == [p.sequence for p in b]

    def test_different_seeds_differ(self):
        a = generate_reference_database(20, seed=5)
        b = generate_reference_database(20, seed=6)
        assert [p.sequence for p in a] != [p.sequence for p in b]

    def test_accessions_unique_and_uniprot_style(self):
        db = generate_reference_database(50, seed=1)
        accessions = db.accessions()
        assert len(set(accessions)) == 50
        assert all(a.startswith("P") and len(a) == 6 for a in accessions)

    def test_lengths_in_bounds(self):
        db = generate_reference_database(50, seed=1, min_length=100, max_length=300)
        assert all(100 <= len(p) <= 300 for p in db)

    def test_duplicate_accession_rejected(self):
        db = generate_reference_database(5, seed=1)
        with pytest.raises(ValueError):
            db.add(Protein("P00001", "dup", "AAAAAK"))

    def test_organisms_cycle(self):
        db = generate_reference_database(10, seed=1)
        assert len({p.organism for p in db}) > 1

    def test_invalid_sequence_rejected(self):
        with pytest.raises(InvalidSequenceError):
            Protein("X1", "bad", "AAAB1")


class TestSpectrometer:
    def protein(self):
        return generate_reference_database(5, seed=3).get("P00001")

    def test_deterministic_per_seed(self):
        a = MassSpectrometer(seed=9).acquire([self.protein()])
        b = MassSpectrometer(seed=9).acquire([self.protein()])
        assert a.masses == b.masses

    def test_noise_peaks_present(self):
        settings = SpectrometerSettings(detection_rate=1.0, noise_peaks=5,
                                        contaminant_rate=0.0, mass_error_ppm=0.0)
        peaks = MassSpectrometer(settings, seed=1).acquire([self.protein()])
        theoretical = {
            round(mh_ion_mass(p.sequence), 3)
            for p in tryptic_digest(self.protein().sequence)
        }
        non_matching = [
            m for m in peaks if round(m, 3) not in theoretical
        ]
        assert len(non_matching) >= 5

    def test_peaks_within_scan_range(self):
        settings = SpectrometerSettings()
        peaks = MassSpectrometer(settings, seed=2).acquire([self.protein()])
        assert all(
            settings.scan_min_mass <= m <= settings.scan_max_mass for m in peaks
        )

    def test_higher_detection_rate_more_peaks(self):
        low = SpectrometerSettings(detection_rate=0.2, noise_peaks=0,
                                   contaminant_rate=0.0)
        high = SpectrometerSettings(detection_rate=0.95, noise_peaks=0,
                                    contaminant_rate=0.0)
        protein = generate_reference_database(3, seed=4, min_length=400,
                                              max_length=600).get("P00001")
        n_low = len(MassSpectrometer(low, seed=5).acquire([protein]))
        n_high = len(MassSpectrometer(high, seed=5).acquire([protein]))
        assert n_high > n_low

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            MassSpectrometer(seed=1).acquire([])

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            SpectrometerSettings(detection_rate=0.0)
        with pytest.raises(ValueError):
            SpectrometerSettings(mass_error_ppm=-1)
        with pytest.raises(ValueError):
            SpectrometerSettings(scan_min_mass=100, scan_max_mass=50)
