"""Tests for GO, GOA, Uniprot and PEDRo substitutes."""

import pytest

from repro.proteomics import (
    GeneOntology,
    GOTerm,
    PedroRepository,
    Sample,
    generate_gene_ontology,
    generate_goa,
    generate_reference_database,
    generate_uniprot,
)
from repro.proteomics.goa import EVIDENCE_CODE_RELIABILITY, GOAnnotation
from repro.proteomics.spectrometer import PeakList


class TestGeneOntology:
    def test_generated_dag_is_rooted(self):
        go = generate_gene_ontology(30, seed=2)
        for term in go:
            if term.term_id != go.ROOT_ID:
                assert go.ROOT_ID in go.ancestors(term.term_id)

    def test_deterministic(self):
        a = generate_gene_ontology(30, seed=2)
        b = generate_gene_ontology(30, seed=2)
        assert a.term_ids() == b.term_ids()

    def test_ancestors_exclude_self(self):
        go = generate_gene_ontology(30, seed=2)
        term = go.term_ids()[5]
        assert term not in go.ancestors(term)

    def test_descendants_inverse_of_ancestors(self):
        go = generate_gene_ontology(30, seed=2)
        for term in go.term_ids()[:10]:
            for ancestor in go.ancestors(term):
                assert term in go.descendants(ancestor)

    def test_depth_of_root_is_zero(self):
        go = GeneOntology()
        assert go.depth(go.ROOT_ID) == 0

    def test_add_requires_known_parents(self):
        go = GeneOntology()
        with pytest.raises(ValueError):
            go.add(GOTerm("GO:0000002", "x", parents=("GO:9999999",)))

    def test_duplicate_rejected(self):
        go = GeneOntology()
        with pytest.raises(ValueError):
            go.add(GOTerm(go.ROOT_ID, "dup"))

    def test_bad_id_rejected(self):
        with pytest.raises(ValueError):
            GOTerm("X:123", "bad")


class TestGOA:
    @pytest.fixture(scope="class")
    def world(self):
        db = generate_reference_database(40, seed=3)
        go = generate_gene_ontology(50, seed=3)
        return db, go, generate_goa(db, go, seed=3)

    def test_every_protein_annotated(self, world):
        db, _, goa = world
        for protein in db:
            assert 2 <= len(goa.terms_of(protein.accession)) <= 6

    def test_terms_exist_in_ontology(self, world):
        _, go, goa = world
        for annotation in goa:
            assert annotation.term_id in go

    def test_root_never_assigned(self, world):
        _, go, goa = world
        assert all(a.term_id != go.ROOT_ID for a in goa)

    def test_evidence_codes_valid(self, world):
        _, _, goa = world
        assert all(
            a.evidence_code in EVIDENCE_CODE_RELIABILITY for a in goa
        )

    def test_popularity_is_skewed(self, world):
        _, _, goa = world
        counts = {}
        for annotation in goa:
            counts[annotation.term_id] = counts.get(annotation.term_id, 0) + 1
        frequencies = sorted(counts.values(), reverse=True)
        # Zipf-ish: the most popular term dominates the median one.
        assert frequencies[0] >= 3 * frequencies[len(frequencies) // 2]

    def test_reliability_ranks(self):
        assert GOAnnotation("P1", "GO:1", "IDA").reliability() == 5
        assert GOAnnotation("P1", "GO:1", "IEA").reliability() == 1
        assert GOAnnotation("P1", "GO:1", "???").reliability() == 0

    def test_unknown_accession_empty(self, world):
        _, _, goa = world
        assert goa.terms_of("NOPE") == []


class TestUniprot:
    def test_mirrors_reference(self):
        db = generate_reference_database(20, seed=4)
        uniprot = generate_uniprot(db, seed=4)
        assert len(uniprot) == 20
        for protein in db:
            assert protein.accession in uniprot

    def test_uncurated_entries_are_iea(self):
        db = generate_reference_database(40, seed=4)
        uniprot = generate_uniprot(db, seed=4, curated_fraction=0.5)
        uncurated = [e for e in uniprot if not e.curated]
        assert uncurated
        assert all(e.evidence_codes == ("IEA",) for e in uncurated)
        assert all(e.best_evidence_reliability() == 1 for e in uncurated)

    def test_curated_fraction_bounds(self):
        db = generate_reference_database(5, seed=4)
        with pytest.raises(ValueError):
            generate_uniprot(db, curated_fraction=1.5)

    def test_impact_factors_positive(self):
        db = generate_reference_database(10, seed=4)
        assert all(e.impact_factor > 0 for e in generate_uniprot(db, seed=4))


class TestPedro:
    def make_repository(self):
        repo = PedroRepository("p")
        repo.add(Sample("s1", PeakList([1000.5, 1200.25]), lab="lab-a"))
        repo.add(Sample("s2", PeakList([900.0]), lab="lab-b"))
        return repo

    def test_retrieval_order(self):
        repo = self.make_repository()
        assert [s.sample_id for s in repo.samples(["s2", "s1"])] == ["s2", "s1"]

    def test_samples_default_all(self):
        assert len(self.make_repository().samples()) == 2

    def test_duplicate_rejected(self):
        repo = self.make_repository()
        with pytest.raises(ValueError):
            repo.add(Sample("s1", PeakList([])))

    def test_unknown_sample_raises(self):
        with pytest.raises(KeyError):
            self.make_repository().get("ghost")

    def test_xml_roundtrip(self):
        repo = self.make_repository()
        restored = PedroRepository.from_xml(repo.to_xml())
        assert restored.sample_ids() == ["s1", "s2"]
        assert restored.get("s1").peaks.masses == pytest.approx([1000.5, 1200.25])
        assert restored.get("s2").lab == "lab-b"
