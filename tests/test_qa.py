"""Tests for the domain quality assertions and annotators."""

import pytest

from repro.annotation import AnnotationMap
from repro.proteomics.results import ImprintResultSet
from repro.qa import (
    DecisionLeaf,
    DecisionNode,
    DecisionTreeQA,
    EvidenceCodeAnnotator,
    HRScoreQA,
    ImprintOutputAnnotator,
    JournalImpactAnnotator,
    PIScoreClassifierQA,
    ThresholdClassifierQA,
    UniversalPIScoreQA,
    UniversalPIScore2QA,
)
from repro.qa.classifier import mean_and_stddev
from repro.qa.decision_tree import tree_from_dict
from repro.rdf import Q, URIRef

ITEMS = [URIRef(f"urn:lsid:test:item:{i}") for i in range(8)]


def scored_map(pairs):
    amap = AnnotationMap()
    for item, (hr, mc) in zip(ITEMS, pairs):
        amap.add_item(item)
        if hr is not None:
            amap.set_evidence(item, Q.HitRatio, hr)
        if mc is not None:
            amap.set_evidence(item, Q.Coverage, mc)
    return amap


class TestScores:
    def test_universal_pi_score_weighted(self):
        qa = UniversalPIScoreQA(hr_weight=1.0, mc_weight=0.0)
        amap = scored_map([(0.8, 0.0)])
        out = qa.execute(amap)
        assert out.get_tag(ITEMS[0], "HR MC").plain() == pytest.approx(80.0)

    def test_default_equal_weights(self):
        qa = UniversalPIScoreQA()
        out = qa.execute(scored_map([(1.0, 0.0)]))
        assert out.get_tag(ITEMS[0], "HR MC").plain() == pytest.approx(50.0)

    def test_null_evidence_gives_no_tag(self):
        qa = UniversalPIScoreQA()
        out = qa.execute(scored_map([(0.5, None)]))
        assert out.get_tag(ITEMS[0], "HR MC") is None

    def test_input_map_not_mutated(self):
        qa = UniversalPIScoreQA()
        amap = scored_map([(0.5, 0.5)])
        qa.execute(amap)
        assert amap.get_tag(ITEMS[0], "HR MC") is None

    def test_score2_includes_peptides(self):
        qa = UniversalPIScore2QA(peptides_saturation=10)
        amap = scored_map([(1.0, 1.0)])
        amap.set_evidence(ITEMS[0], Q.PeptidesCount, 10)
        out = qa.execute(amap)
        assert out.get_tag(ITEMS[0], "HR MC").plain() == pytest.approx(100.0)

    def test_score2_saturation(self):
        qa = UniversalPIScore2QA(peptides_saturation=10)
        amap = scored_map([(1.0, 1.0)])
        amap.set_evidence(ITEMS[0], Q.PeptidesCount, 500)
        out = qa.execute(amap)
        assert out.get_tag(ITEMS[0], "HR MC").plain() == pytest.approx(100.0)

    def test_score2_missing_peptides_is_null(self):
        qa = UniversalPIScore2QA()
        out = qa.execute(scored_map([(1.0, 1.0)]))
        assert out.get_tag(ITEMS[0], "HR MC") is None

    def test_hr_score(self):
        qa = HRScoreQA()
        out = qa.execute(scored_map([(0.37, 0.9)]))
        assert out.get_tag(ITEMS[0], "HR").plain() == pytest.approx(37.0)

    def test_missing_variable_binding_rejected(self):
        with pytest.raises(ValueError, match="variable bindings"):
            UniversalPIScoreQA(variables={"hitRatio": Q.HitRatio})

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            UniversalPIScoreQA(hr_weight=0.0, mc_weight=0.0)

    def test_tag_metadata(self):
        qa = UniversalPIScoreQA()
        out = qa.execute(scored_map([(0.5, 0.5)]))
        tag = out.get_tag(ITEMS[0], "HR MC")
        assert tag.syn_type == Q.score


class TestClassifier:
    def test_mean_and_stddev(self):
        mean, std = mean_and_stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert mean == pytest.approx(5.0)
        assert std == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_stddev([])

    def test_single_value_has_zero_stddev(self):
        assert mean_and_stddev([3.0]) == (3.0, 0.0)

    def test_three_way_classification_paper_thresholds(self):
        # scores: one clear outlier high, one clear low, cluster mid
        pairs = [(0.95, 0.95), (0.5, 0.5), (0.52, 0.48), (0.48, 0.52),
                 (0.5, 0.5), (0.05, 0.05)]
        qa = PIScoreClassifierQA()
        out = qa.execute(scored_map(pairs))
        assert out.get_tag(ITEMS[0], "ScoreClass").plain() == Q.high
        assert out.get_tag(ITEMS[5], "ScoreClass").plain() == Q.low
        for item in ITEMS[1:5]:
            assert out.get_tag(item, "ScoreClass").plain() == Q.mid

    def test_classification_tag_metadata(self):
        qa = PIScoreClassifierQA()
        out = qa.execute(scored_map([(0.5, 0.5), (0.9, 0.9), (0.1, 0.1)]))
        tag = out.get_tag(ITEMS[0], "ScoreClass")
        assert tag.syn_type == Q["class"]
        assert tag.sem_type == Q.PIScoreClassification

    def test_null_evidence_unclassified(self):
        qa = PIScoreClassifierQA()
        out = qa.execute(scored_map([(0.5, 0.5), (None, 0.5)]))
        assert out.get_tag(ITEMS[1], "ScoreClass") is None

    def test_all_null_collection(self):
        qa = PIScoreClassifierQA()
        out = qa.execute(scored_map([(None, None)]))
        assert out.get_tag(ITEMS[0], "ScoreClass") is None

    def test_threshold_classifier_bands(self):
        qa = ThresholdClassifierQA(
            "bands",
            "Band",
            {"hitRatio": Q.HitRatio},
            lambda v: v.get("hitRatio"),
            bands=[(0.3, Q.low), (0.7, Q.mid)],
            top_class=Q.high,
            scheme=Q.PIScoreClassification,
        )
        amap = scored_map([(0.1, None), (0.5, None), (0.9, None)])
        out = qa.execute(amap)
        assert out.get_tag(ITEMS[0], "Band").plain() == Q.low
        assert out.get_tag(ITEMS[1], "Band").plain() == Q.mid
        assert out.get_tag(ITEMS[2], "Band").plain() == Q.high

    def test_threshold_bands_must_ascend(self):
        with pytest.raises(ValueError):
            ThresholdClassifierQA(
                "bad", "B", {}, lambda v: 0,
                bands=[(0.7, Q.mid), (0.3, Q.low)],
                top_class=Q.high, scheme=Q.PIScoreClassification,
            )


class TestDecisionTree:
    def make_tree(self):
        return DecisionNode(
            "hitRatio", ">", 0.5,
            then_branch=DecisionNode(
                "coverage", ">", 0.5,
                then_branch=DecisionLeaf(Q.high),
                else_branch=DecisionLeaf(Q.mid),
            ),
            else_branch=DecisionLeaf(Q.low),
        )

    def test_paths(self):
        tree = self.make_tree()
        assert tree.decide({"hitRatio": 0.9, "coverage": 0.9}) == Q.high
        assert tree.decide({"hitRatio": 0.9, "coverage": 0.1}) == Q.mid
        assert tree.decide({"hitRatio": 0.1, "coverage": 0.9}) == Q.low

    def test_missing_takes_else_by_default(self):
        assert self.make_tree().decide({}) == Q.low

    def test_missing_branch_override(self):
        tree = DecisionNode(
            "x", ">", 0, DecisionLeaf("yes"), DecisionLeaf("no"),
            missing=DecisionLeaf("unknown"),
        )
        assert tree.decide({}) == "unknown"

    def test_from_dict(self):
        tree = tree_from_dict({
            "variable": "hitRatio", "op": ">=", "threshold": 0.5,
            "then": {"value": "good"},
            "else": {"value": "bad"},
        })
        assert tree.decide({"hitRatio": 0.5}) == "good"

    def test_from_dict_missing_key(self):
        with pytest.raises(ValueError):
            tree_from_dict({"variable": "x", "op": ">"})

    def test_invalid_operator(self):
        with pytest.raises(ValueError):
            DecisionNode("x", "~", 0, DecisionLeaf(1), DecisionLeaf(2))

    def test_as_qa(self):
        qa = DecisionTreeQA(
            "tree", "Verdict",
            {"hitRatio": Q.HitRatio, "coverage": Q.Coverage},
            self.make_tree(),
        )
        out = qa.execute(scored_map([(0.9, 0.9), (0.2, 0.2)]))
        assert out.get_tag(ITEMS[0], "Verdict").plain() == Q.high
        assert out.get_tag(ITEMS[1], "Verdict").plain() == Q.low


class TestAnnotators:
    def test_imprint_output_annotator(self, result_set):
        annotator = ImprintOutputAnnotator(result_set)
        items = result_set.items()[:5]
        amap = annotator.annotate(
            items, {Q.HitRatio, Q.Coverage, Q.PeptidesCount, Q.ELDP}
        )
        for item in items:
            hit = result_set.hit(item)
            assert amap.get_evidence(item, Q.HitRatio) == hit.hit_ratio
            assert amap.get_evidence(item, Q.Coverage) == hit.mass_coverage
            assert amap.get_evidence(item, Q.ELDP) == float(hit.eldp)

    def test_restricts_to_requested_types(self, result_set):
        annotator = ImprintOutputAnnotator(result_set)
        items = result_set.items()[:2]
        amap = annotator.annotate(items, {Q.HitRatio})
        assert amap.get_evidence(items[0], Q.Coverage) is None

    def test_unknown_item_left_null(self, result_set):
        annotator = ImprintOutputAnnotator(result_set)
        ghost = URIRef("urn:lsid:imprint.man.ac.uk:hit:ghost.1")
        amap = annotator.annotate([ghost], {Q.HitRatio})
        assert ghost in amap
        assert amap.get_evidence(ghost, Q.HitRatio) is None

    def test_evidence_code_annotator(self, scenario, result_set):
        annotator = EvidenceCodeAnnotator(result_set, scenario.uniprot)
        items = result_set.items()[:5]
        amap = annotator.annotate(items, {Q.EvidenceCode})
        for item in items:
            reliability = amap.get_evidence(item, Q.EvidenceCode)
            assert reliability is not None
            assert 1 <= reliability <= 5

    def test_journal_impact_annotator(self, scenario, result_set):
        annotator = JournalImpactAnnotator(result_set, scenario.uniprot)
        items = result_set.items()[:5]
        amap = annotator.annotate(items, {Q.JournalImpactFactor})
        assert all(
            amap.get_evidence(i, Q.JournalImpactFactor) > 0 for i in items
        )
