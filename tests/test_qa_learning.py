"""Tests for the decision-model learner (paper future work ii)."""

import random

import pytest

from repro.annotation import AnnotationMap
from repro.qa.decision_tree import DecisionLeaf, DecisionNode
from repro.qa.learning import (
    LabeledExample,
    entropy,
    gini_impurity,
    learn_decision_tree,
    learn_quality_assertion,
    majority_label,
    tree_accuracy,
    tree_depth,
)
from repro.rdf import Q, URIRef


def synthetic_examples(n=200, seed=0, noise=0.0):
    rng = random.Random(seed)
    examples = []
    for _ in range(n):
        hr, mc = rng.random(), rng.random()
        label = "good" if (hr > 0.4 and mc > 0.3) else "bad"
        if noise and rng.random() < noise:
            label = "bad" if label == "good" else "good"
        examples.append(LabeledExample({"hitRatio": hr, "coverage": mc}, label))
    return examples


class TestImpurity:
    def test_gini_pure(self):
        assert gini_impurity(["a", "a", "a"]) == 0.0

    def test_gini_balanced_binary(self):
        assert gini_impurity(["a", "b"]) == pytest.approx(0.5)

    def test_entropy_pure(self):
        assert entropy(["a"]) == 0.0

    def test_entropy_balanced_binary(self):
        assert entropy(["a", "b"]) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert gini_impurity([]) == 0.0
        assert entropy([]) == 0.0


class TestMajority:
    def test_majority(self):
        examples = [LabeledExample({}, l) for l in "aabbb"]
        assert majority_label(examples) == "b"

    def test_tie_deterministic(self):
        examples = [LabeledExample({}, l) for l in "ab"]
        assert majority_label(examples) == "a"


class TestLearner:
    def test_learns_separable_concept(self):
        examples = synthetic_examples()
        tree = learn_decision_tree(examples, ["hitRatio", "coverage"])
        assert tree_accuracy(tree, examples) >= 0.97

    def test_generalises_to_held_out_data(self):
        train = synthetic_examples(seed=1)
        test = synthetic_examples(seed=2)
        tree = learn_decision_tree(train, ["hitRatio", "coverage"])
        assert tree_accuracy(tree, test) >= 0.9

    def test_depth_limit_respected(self):
        examples = synthetic_examples()
        tree = learn_decision_tree(
            examples, ["hitRatio", "coverage"], max_depth=1
        )
        assert tree_depth(tree) <= 1

    def test_depth_zero_is_majority_leaf(self):
        examples = synthetic_examples()
        tree = learn_decision_tree(examples, ["hitRatio"], max_depth=0)
        assert isinstance(tree, DecisionLeaf)

    def test_pure_training_set_gives_leaf(self):
        examples = [
            LabeledExample({"x": float(i)}, "only") for i in range(10)
        ]
        tree = learn_decision_tree(examples, ["x"])
        assert isinstance(tree, DecisionLeaf)
        assert tree.value == "only"

    def test_noise_robustness_via_min_samples(self):
        examples = synthetic_examples(noise=0.05, seed=3)
        tree = learn_decision_tree(
            examples, ["hitRatio", "coverage"], min_samples_leaf=10
        )
        clean = synthetic_examples(seed=4)
        assert tree_accuracy(tree, clean) >= 0.85

    def test_irrelevant_variable_ignored(self):
        rng = random.Random(5)
        examples = [
            LabeledExample(
                {"signal": v, "junk": rng.random()},
                "hi" if v > 0.5 else "lo",
            )
            for v in (rng.random() for _ in range(200))
        ]
        tree = learn_decision_tree(examples, ["signal", "junk"], max_depth=1)
        assert isinstance(tree, DecisionNode)
        assert tree.variable == "signal"

    def test_missing_values_tolerated(self):
        examples = [
            LabeledExample({"x": 1.0}, "hi"),
            LabeledExample({"x": 0.9}, "hi"),
            LabeledExample({"x": 0.8}, "hi"),
            LabeledExample({}, "lo"),
            LabeledExample({"x": 0.1}, "lo"),
            LabeledExample({"x": 0.0}, "lo"),
            LabeledExample({"x": 0.05}, "lo"),
            LabeledExample({"x": 0.85}, "hi"),
        ]
        tree = learn_decision_tree(examples, ["x"], min_samples_leaf=2)
        assert tree_accuracy(tree, examples) >= 0.8

    def test_empty_examples_rejected(self):
        with pytest.raises(ValueError):
            learn_decision_tree([], ["x"])

    def test_unknown_impurity_rejected(self):
        with pytest.raises(ValueError):
            learn_decision_tree(
                synthetic_examples(10), ["hitRatio"], impurity="chaos"
            )

    def test_entropy_criterion_also_works(self):
        examples = synthetic_examples()
        tree = learn_decision_tree(
            examples, ["hitRatio", "coverage"], impurity="entropy"
        )
        assert tree_accuracy(tree, examples) >= 0.95

    def test_deterministic(self):
        examples = synthetic_examples()
        a = learn_decision_tree(examples, ["hitRatio", "coverage"])
        b = learn_decision_tree(examples, ["hitRatio", "coverage"])
        assert a == b


class TestLearnedQA:
    def test_learned_qa_executes_like_any_other(self):
        examples = synthetic_examples()
        qa = learn_quality_assertion(
            "LearnedTriage",
            "Learned",
            {"hitRatio": Q.HitRatio, "coverage": Q.Coverage},
            examples,
            tag_syn_type=Q["class"],
        )
        items = [URIRef(f"urn:lsid:t:i:{i}") for i in range(3)]
        amap = AnnotationMap(items)
        amap.set_evidence(items[0], Q.HitRatio, 0.9)
        amap.set_evidence(items[0], Q.Coverage, 0.9)
        amap.set_evidence(items[1], Q.HitRatio, 0.05)
        amap.set_evidence(items[1], Q.Coverage, 0.05)
        amap.set_evidence(items[2], Q.HitRatio, 0.9)
        amap.set_evidence(items[2], Q.Coverage, 0.05)
        out = qa.execute(amap)
        assert out.get_tag(items[0], "Learned").plain() == "good"
        assert out.get_tag(items[1], "Learned").plain() == "bad"
        assert out.get_tag(items[2], "Learned").plain() == "bad"

    def test_learned_from_ground_truth_beats_chance(self, scenario, result_set):
        """Train on one half of the spots, evaluate on the other half —
        the ML-derived QA should separate true from false hits."""
        items = result_set.items()
        examples = []
        for item in items:
            hit = result_set.hit(item)
            label = (
                "true"
                if scenario.is_true_positive(
                    result_set.run_id(item), hit.accession
                )
                else "false"
            )
            examples.append(
                LabeledExample(
                    {
                        "hitRatio": hit.hit_ratio,
                        "coverage": hit.mass_coverage,
                        "peptidesCount": float(hit.peptides_count),
                    },
                    label,
                )
            )
        half = len(examples) // 2
        tree = learn_decision_tree(
            examples[:half],
            ["hitRatio", "coverage", "peptidesCount"],
            min_samples_leaf=2,
        )
        assert tree_accuracy(tree, examples[half:]) >= 0.85
