"""The planned SPARQL execution path: ordering, pushdown, caching.

Covers the compile-once machinery in :mod:`repro.rdf.sparql.plan` —
join ordering from the graph's incremental predicate statistics,
filter pushdown into the index-nested-loop join, the prepared-query
(``$param``) API the annotation store runs on, the LRU plan cache and
its metrics — plus the dictionary-encoded storage underneath
(per-predicate statistics, bulk loads, structural copies).

Result *equivalence* against the naive evaluator is the subject of the
randomized differential suite in ``test_sparql_differential.py``; the
tests here pin behaviour and the observable plan shape.
"""

from __future__ import annotations

import pytest

from repro.observability import MetricRegistry, set_default_registry
from repro.rdf import Graph, Literal, Q, RDF, URIRef
from repro.rdf.graph import PredicateStats
from repro.rdf.sparql import (
    compile_query,
    get_plan_cache,
    prepare,
    reset_plan_cache,
)
from repro.rdf.term import Variable

EX = "http://example.org/"


@pytest.fixture
def registry():
    fresh = MetricRegistry()
    previous = set_default_registry(fresh)
    yield fresh
    set_default_registry(previous)


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


def annotated_graph(n_items: int = 20) -> Graph:
    """The paper's Fig. 2 shape: item → evidence node → typed value."""
    graph = Graph("planner-test")
    for index in range(n_items):
        item = URIRef(f"{EX}item/{index}")
        node = URIRef(f"{EX}evidence/{index}")
        graph.add(item, Q["contains-evidence"], node)
        graph.add(node, RDF.type, Q.HitRatio)
        graph.add(node, Q.value, Literal(index / n_items))
    return graph


EVIDENCE_SELECT = """
PREFIX q: <http://qurator.org/iq#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?d ?v WHERE {
  ?d q:contains-evidence ?e .
  ?e rdf:type q:HitRatio ;
     q:value ?v .
}
"""


# -- storage layer: statistics, bulk loads, copies ---------------------------


class TestPredicateStats:
    def test_counts_track_adds(self):
        graph = annotated_graph(10)
        stats = graph.predicate_stats(Q["contains-evidence"])
        assert stats.triples == 10
        assert stats.subjects == 10
        assert stats.objects == 10

    def test_shared_predicate_counts_distinct_terms(self):
        graph = Graph()
        a, b = URIRef(f"{EX}a"), URIRef(f"{EX}b")
        p = URIRef(f"{EX}p")
        graph.add(a, p, Literal("x"))
        graph.add(a, p, Literal("y"))
        graph.add(b, p, Literal("x"))
        stats = graph.predicate_stats(p)
        assert (stats.triples, stats.subjects, stats.objects) == (3, 2, 2)

    def test_removal_decrements(self):
        graph = Graph()
        a, p = URIRef(f"{EX}a"), URIRef(f"{EX}p")
        graph.add(a, p, Literal("x"))
        graph.add(a, p, Literal("y"))
        graph.remove(a, p, Literal("y"))
        stats = graph.predicate_stats(p)
        assert (stats.triples, stats.subjects, stats.objects) == (1, 1, 1)
        graph.remove(a, p, Literal("x"))
        assert graph.predicate_stats(p).triples == 0

    def test_unknown_predicate_is_empty(self):
        stats = Graph().predicate_stats(URIRef(f"{EX}nope"))
        assert isinstance(stats, PredicateStats)
        assert stats.triples == 0

    def test_accessor_returns_a_copy(self):
        graph = annotated_graph(3)
        stats = graph.predicate_stats(Q.value)
        stats.triples = 999
        assert graph.predicate_stats(Q.value).triples == 3

    def test_bulk_load_matches_incremental_stats(self):
        incremental = annotated_graph(15)
        bulk = Graph()
        bulk.add_all(incremental)
        for predicate in (Q["contains-evidence"], RDF.type, Q.value):
            a = incremental.predicate_stats(predicate)
            b = bulk.predicate_stats(predicate)
            assert (a.triples, a.subjects, a.objects) == (
                b.triples, b.subjects, b.objects
            )
        assert set(bulk) == set(incremental)

    def test_copy_is_independent(self):
        original = annotated_graph(5)
        clone = original.copy()
        clone.add(URIRef(f"{EX}new"), Q.value, Literal(1))
        assert len(original) == 15
        assert len(clone) == 16
        assert original.predicate_stats(Q.value).triples == 5
        assert clone.predicate_stats(Q.value).triples == 6

    def test_graph_addition_uses_bulk_path(self):
        left = annotated_graph(4)
        right = Graph()
        right.add(URIRef(f"{EX}x"), Q.value, Literal(9))
        merged = left + right
        assert len(merged) == 13
        assert merged.predicate_stats(Q.value).triples == 5
        assert len(left) == 12  # operands untouched


# -- join ordering and filter pushdown ---------------------------------------


class TestJoinOrdering:
    def test_selective_pattern_runs_first(self):
        graph = annotated_graph(50)
        # a rare predicate: only one triple
        graph.add(URIRef(f"{EX}item/7"), Q.computedBy, URIRef(f"{EX}tool"))
        text = """
        PREFIX q: <http://qurator.org/iq#>
        SELECT ?d ?e WHERE {
          ?d q:contains-evidence ?e .
          ?d q:computedBy ?tool .
        }
        """
        plan = compile_query(text).explain(graph)
        lines = [line for line in plan.splitlines() if ". ?" in line]
        assert "computedBy" in lines[0]
        assert "contains-evidence" in lines[1]

    def test_explain_reports_estimates_and_cache(self):
        graph = annotated_graph(10)
        plan = compile_query(EVIDENCE_SELECT).explain(graph)
        assert "BGP #1 (3 patterns" in plan
        assert "est=" in plan
        assert "plan cache:" in plan

    def test_adjacent_groups_are_coalesced(self):
        # the parser splits `?d ... . ?e ...` into joined BGPs; the
        # planner must merge them so ordering crosses the boundary
        graph = annotated_graph(10)
        plan = compile_query(EVIDENCE_SELECT).explain(graph)
        assert "BGP #2" not in plan

    def test_filter_is_pushed_before_the_last_pattern(self):
        graph = annotated_graph(10)
        text = """
        PREFIX q: <http://qurator.org/iq#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?d WHERE {
          ?e q:value ?v .
          ?d q:contains-evidence ?e .
          ?e rdf:type q:HitRatio .
          FILTER (?v < 0.5)
        }
        """
        plan = compile_query(text).explain(graph)
        assert "1 pushed filters" in plan
        step_lines = plan.splitlines()
        filter_at = next(
            i for i, line in enumerate(step_lines)
            if "filter after this step" in line
        )
        # the filter fires as soon as ?v is bound, not after the join
        following_patterns = [
            line for line in step_lines[filter_at + 1:]
            if line.strip().startswith(("2.", "3."))
        ]
        assert following_patterns, plan

    def test_exists_filter_is_not_pushed(self):
        graph = annotated_graph(5)
        text = """
        PREFIX q: <http://qurator.org/iq#>
        SELECT ?d WHERE {
          ?d q:contains-evidence ?e .
          FILTER NOT EXISTS { ?e q:value ?v . }
        }
        """
        plan = compile_query(text).explain(graph)
        assert "0 pushed filters" in plan
        assert len(graph.query(text)) == 0  # every item has a value

    def test_ordering_never_changes_results(self):
        graph = annotated_graph(25)
        planned = graph.query(EVIDENCE_SELECT)
        naive = graph.query(EVIDENCE_SELECT, use_planner=False)
        assert sorted(map(str, planned.rows)) == sorted(map(str, naive.rows))
        assert len(planned) == 25


class TestPlannedSemantics:
    """Targeted shapes; the differential suite covers the breadth."""

    def test_repeated_variable_in_one_pattern(self):
        graph = Graph()
        a, b = URIRef(f"{EX}a"), URIRef(f"{EX}b")
        p = URIRef(f"{EX}loves")
        graph.add(a, p, a)
        graph.add(a, p, b)
        result = graph.query(
            f"SELECT ?x WHERE {{ ?x <{EX}loves> ?x . }}"
        )
        assert [row for row in result] == [(a,)]

    def test_optional_keeps_unmatched_left_rows(self):
        graph = annotated_graph(3)
        orphan = URIRef(f"{EX}orphan")
        graph.add(orphan, Q["contains-evidence"], URIRef(f"{EX}bare"))
        text = """
        PREFIX q: <http://qurator.org/iq#>
        SELECT ?e ?v WHERE {
          ?d q:contains-evidence ?e .
          OPTIONAL { ?e q:value ?v . }
        }
        """
        rows = graph.query(text).rows
        assert len(rows) == 4
        unbound = [row for row in rows if Variable("v") not in row]
        assert len(unbound) == 1

    def test_union_merges_both_branches(self):
        graph = annotated_graph(4)
        text = """
        PREFIX q: <http://qurator.org/iq#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?x WHERE {
          { ?x rdf:type q:HitRatio . } UNION { ?x q:value ?v . }
        }
        """
        assert len(graph.query(text)) == 8

    def test_ask_and_construct_run_planned(self):
        graph = annotated_graph(3)
        ask = graph.query(
            "PREFIX q: <http://qurator.org/iq#> "
            "ASK { ?d q:contains-evidence ?e . }"
        )
        assert ask.boolean is True
        built = graph.query(
            "PREFIX q: <http://qurator.org/iq#> "
            "CONSTRUCT { ?e q:value ?v . } WHERE { ?e q:value ?v . }"
        )
        assert len(built.graph) == 3

    def test_modifiers_apply_after_planned_matching(self):
        graph = annotated_graph(10)
        text = """
        PREFIX q: <http://qurator.org/iq#>
        SELECT ?v WHERE { ?e q:value ?v . } ORDER BY DESC(?v) LIMIT 3
        """
        values = [value.value for (value,) in graph.query(text)]
        assert values == [0.9, 0.8, 0.7]


# -- prepared queries ---------------------------------------------------------


class TestPreparedQueries:
    def test_params_substitute_terms(self):
        graph = annotated_graph(6)
        lookup = prepare("""
        PREFIX q: <http://qurator.org/iq#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?value WHERE {
          $data q:contains-evidence ?e .
          ?e rdf:type $etype ; q:value ?value .
        }
        """)
        assert lookup.params == frozenset({"data", "etype"})
        result = lookup.execute(
            graph, data=URIRef(f"{EX}item/2"), etype=Q.HitRatio
        )
        assert [value.value for (value,) in result] == [2 / 6]

    def test_plain_values_become_literals(self):
        graph = Graph()
        item = URIRef(f"{EX}a")
        graph.add(item, Q.value, Literal(0.5))
        query = prepare(
            "PREFIX q: <http://qurator.org/iq#> "
            "ASK { ?d q:value $v . }"
        )
        assert query.execute(graph, v=0.5).boolean is True
        assert query.execute(graph, v=0.25).boolean is False

    def test_missing_and_unknown_params_are_rejected(self):
        query = prepare(
            "PREFIX q: <http://qurator.org/iq#> "
            "ASK { $data q:value ?v . }"
        )
        with pytest.raises(ValueError, match="missing parameters: data"):
            query.execute(Graph())
        with pytest.raises(ValueError, match="unknown parameters: bogus"):
            query.execute(Graph(), data=URIRef(f"{EX}a"), bogus=1)

    def test_param_rows_are_not_projected(self):
        graph = annotated_graph(2)
        query = prepare("""
        PREFIX q: <http://qurator.org/iq#>
        SELECT ?v WHERE { $data q:contains-evidence ?e . ?e q:value ?v . }
        """)
        result = query.execute(graph, data=URIRef(f"{EX}item/1"))
        assert result.variables == (Variable("v"),)

    def test_question_and_dollar_spellings_are_one_variable(self):
        graph = Graph()
        graph.add(URIRef(f"{EX}a"), Q.value, Literal(1))
        query = prepare(
            "PREFIX q: <http://qurator.org/iq#> "
            "SELECT ?d WHERE { ?d q:value $v . FILTER (?v > 0) }"
        )
        assert query.params == frozenset({"v"})
        assert len(query.execute(graph, v=0.5)) == 0
        assert len(query.execute(graph, v=1)) == 1


# -- the plan cache -----------------------------------------------------------


class TestPlanCache:
    def test_repeat_compiles_hit(self):
        compile_query(EVIDENCE_SELECT)
        first = compile_query(EVIDENCE_SELECT)
        second = compile_query(EVIDENCE_SELECT)
        assert first is second
        stats = get_plan_cache().stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_lru_evicts_oldest(self):
        reset_plan_cache(capacity=2)
        queries = [
            f"SELECT ?x WHERE {{ ?x <{EX}p{i}> ?y . }}" for i in range(3)
        ]
        for text in queries:
            compile_query(text)
        stats = get_plan_cache().stats()
        assert stats.entries == 2
        assert stats.evictions == 1
        # oldest was dropped: recompiling it misses
        compile_query(queries[0])
        assert get_plan_cache().stats().misses == 4

    def test_use_cache_false_bypasses(self):
        a = compile_query(EVIDENCE_SELECT, use_cache=False)
        b = compile_query(EVIDENCE_SELECT, use_cache=False)
        assert a is not b
        assert get_plan_cache().stats().entries == 0

    def test_one_plan_serves_many_graphs(self):
        small = annotated_graph(2)
        large = annotated_graph(9)
        compiled = compile_query(EVIDENCE_SELECT)
        assert len(compiled.execute(small)) == 2
        assert len(compiled.execute(large)) == 9

    def test_cache_metrics_are_published(self, registry):
        compile_query(EVIDENCE_SELECT)
        compile_query(EVIDENCE_SELECT)
        hits = registry.counter("repro_rdf_plan_cache_hits_total")
        misses = registry.counter("repro_rdf_plan_cache_misses_total")
        assert hits.value == 1
        assert misses.value == 1
        entries = registry.gauge("repro_rdf_plan_cache_entries")
        assert entries.value == 1

    def test_execution_path_metric_labels(self, registry):
        graph = annotated_graph(2)
        graph.query(EVIDENCE_SELECT)
        graph.query(EVIDENCE_SELECT, use_planner=False)
        counter = registry.counter(
            "repro_rdf_plan_executions_total", labels=("planner",)
        )
        assert counter.labels(planner="on").value == 1
        assert counter.labels(planner="off").value == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            reset_plan_cache(capacity=0)
