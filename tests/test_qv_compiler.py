"""Tests for QV compilation (Sec. 6.1) and embedding (Sec. 6.2).

The Figure-6 topology assertions live here: annotators first with
control links to a single Data Enrichment processor, DE fan-out to all
QAs, ConsolidateAssertions, then actions.
"""

import pytest

from repro.core.ispider import (
    LiveImprintAnnotator,
    ResultSetHolder,
    example_quality_view_xml,
)
from repro.qv import parse_quality_view
from repro.qv.compiler import (
    CONSOLIDATE,
    DATA_ENRICHMENT,
    ActionProcessor,
    AnnotatorProcessor,
    AssertionProcessor,
    CompilationError,
    DataEnrichmentProcessor,
    sanitize,
)
from repro.rdf import Q
from repro.workflow.model import ControlLink


@pytest.fixture()
def loaded_framework(framework):
    holder = ResultSetHolder()
    framework.deploy_annotation_service(
        "ImprintOutputAnnotator", LiveImprintAnnotator(holder)
    )
    return framework, holder


@pytest.fixture()
def compiled(loaded_framework):
    framework, _ = loaded_framework
    spec = parse_quality_view(example_quality_view_xml())
    return framework.compiler.compile(spec)


class TestFigure6Topology:
    def test_processor_inventory(self, compiled):
        names = set(compiled.processors)
        assert "ImprintOutputAnnotator" in names
        assert DATA_ENRICHMENT in names
        assert CONSOLIDATE in names
        assert {"HR MC score", "HR score", "PIScoreClassifier"} <= names
        assert "filter top k score" in names

    def test_single_data_enrichment(self, compiled):
        de_processors = [
            p for p in compiled.processors.values()
            if isinstance(p, DataEnrichmentProcessor)
        ]
        assert len(de_processors) == 1

    def test_control_link_annotator_to_de(self, compiled):
        assert (
            ControlLink("ImprintOutputAnnotator", DATA_ENRICHMENT)
            in compiled.control_links
        )

    def test_annotators_have_no_output_ports(self, compiled):
        annotator = compiled.processors["ImprintOutputAnnotator"]
        assert isinstance(annotator, AnnotatorProcessor)
        assert annotator.output_ports == {}

    def test_de_feeds_every_qa(self, compiled):
        for qa_name in ("HR MC score", "HR score", "PIScoreClassifier"):
            feeders = {
                link.source.processor
                for link in compiled.incoming_links(qa_name)
                if link.sink.port == "annotationMap"
            }
            assert feeders == {DATA_ENRICHMENT}

    def test_every_qa_feeds_consolidate(self, compiled):
        feeders = {
            link.source.processor for link in compiled.incoming_links(CONSOLIDATE)
        }
        assert feeders == {"HR MC score", "HR score", "PIScoreClassifier"}

    def test_actions_fed_from_consolidate(self, compiled):
        feeders = {
            link.source.processor
            for link in compiled.incoming_links("filter top k score")
            if link.sink.port == "annotationMap"
        }
        assert feeders == {CONSOLIDATE}

    def test_annotators_execute_before_de_and_qas(self, compiled):
        order = compiled.topological_order()
        assert order.index("ImprintOutputAnnotator") < order.index(DATA_ENRICHMENT)
        assert order.index(DATA_ENRICHMENT) < order.index("HR MC score")
        assert order.index(CONSOLIDATE) < order.index("filter top k score")

    def test_workflow_outputs(self, compiled):
        assert "annotationMap" in compiled.outputs
        assert "filter_top_k_score_accepted" in compiled.outputs

    def test_de_configured_with_evidence_repository_map(self, compiled):
        de = compiled.processors[DATA_ENRICHMENT]
        assert Q.HitRatio in de.sources
        assert Q.Coverage in de.sources
        assert de.sources[Q.HitRatio].name == "cache"

    def test_compiled_workflow_validates(self, compiled):
        compiled.validate()


class TestCompilationErrors:
    def test_unresolvable_service(self, framework):
        spec = parse_quality_view(example_quality_view_xml())
        # no annotation service deployed in the bare framework
        with pytest.raises(CompilationError, match="no binding or deployed"):
            framework.compiler.compile(spec)

    def test_validation_failure_propagates(self, loaded_framework):
        framework, _ = loaded_framework
        text = example_quality_view_xml().replace("q:hitRatio", "q:Bogus")
        spec = parse_quality_view(text)
        with pytest.raises(ValueError, match="validation"):
            framework.compiler.compile(spec)

    def test_annotator_resolving_to_qa_service_rejected(self, framework):
        # Bind the annotation concept to a QA endpoint (and deploy no
        # annotation service at all) to force the category clash.
        framework.bindings.bind_service(
            Q["Imprint-output-annotation"],
            framework.services.by_name("HRScore").endpoint,
        )
        spec = parse_quality_view(example_quality_view_xml())
        with pytest.raises(CompilationError, match="expected an annotation"):
            framework.compiler.compile(spec)


class TestSanitize:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("filter top k score", "filter_top_k_score"),
            ("a-b.c", "a_b_c"),
            ("___", "port"),
            ("ok_name", "ok_name"),
        ],
    )
    def test_sanitize(self, raw, expected):
        assert sanitize(raw) == expected


class TestPortCollisions:
    """sanitize() is many-to-one; colliding claims must fail loudly."""

    HEADER = """
        <QualityView name="collide">
          <Annotator serviceName="ImprintOutputAnnotator"
                     serviceType="q:Imprint-output-annotation">
            <variables repositoryRef="cache" persistent="false">
              <var evidence="q:hitRatio"/>
            </variables>
          </Annotator>
          <QualityAssertion serviceName="HR score" serviceType="q:HRScore"
                            tagName="HR" tagSynType="q:score">
            <variables repositoryRef="cache">
              <var variableName="hitRatio" evidence="q:hitRatio"/>
            </variables>
          </QualityAssertion>
    """

    def view(self, actions):
        return parse_quality_view(self.HEADER + actions + "</QualityView>")

    def test_actions_colliding_on_output_port(self, loaded_framework):
        framework, _ = loaded_framework
        spec = self.view("""
          <action name="top k!">
            <filter><condition>HR &gt; 40</condition></filter>
          </action>
          <action name="top k?">
            <filter><condition>HR &gt; 50</condition></filter>
          </action>
        """)
        with pytest.raises(CompilationError, match="collide"):
            framework.compiler.compile(spec)
        with pytest.raises(CompilationError, match="collide"):
            framework.compiler.compile(spec, optimize=False)

    def test_splitter_groups_colliding_on_port(self, loaded_framework):
        framework, _ = loaded_framework
        spec = self.view("""
          <action name="route">
            <splitter>
              <group name="a b"><condition>HR &gt; 40</condition></group>
              <group name="a:b"><condition>HR &gt; 50</condition></group>
            </splitter>
          </action>
        """)
        with pytest.raises(CompilationError, match="sanitize"):
            framework.compiler.compile(spec)
        with pytest.raises(CompilationError, match="sanitize"):
            framework.compiler.compile(spec, optimize=False)

    def test_distinct_ports_still_compile(self, loaded_framework):
        framework, _ = loaded_framework
        spec = self.view("""
          <action name="top k">
            <filter><condition>HR &gt; 40</condition></filter>
          </action>
        """)
        workflow = framework.compiler.compile(spec)
        assert "top_k_accepted" in workflow.outputs


class TestSplitterCompilation:
    def test_splitter_ports_include_default(self, loaded_framework):
        framework, _ = loaded_framework
        text = """
        <QualityView name="split-view">
          <Annotator serviceName="ImprintOutputAnnotator"
                     serviceType="q:Imprint-output-annotation">
            <variables repositoryRef="cache" persistent="false">
              <var evidence="q:hitRatio"/>
            </variables>
          </Annotator>
          <QualityAssertion serviceName="HR score" serviceType="q:HRScore"
                            tagName="HR" tagSynType="q:score">
            <variables repositoryRef="cache">
              <var variableName="hitRatio" evidence="q:hitRatio"/>
            </variables>
          </QualityAssertion>
          <action name="route">
            <splitter>
              <group name="strong"><condition>HR &gt; 50</condition></group>
              <group name="weak"><condition>HR &gt; 5</condition></group>
            </splitter>
          </action>
        </QualityView>
        """
        workflow = framework.compiler.compile(parse_quality_view(text))
        action = workflow.processors["route"]
        assert isinstance(action, ActionProcessor)
        assert set(action.group_ports) == {"strong", "weak", "default"}
        assert "route_default" in workflow.outputs


class TestEvidenceConditions:
    """Conditions are 'predicates on the values of QAs and of the
    evidence' (Sec. 4): filters on annotator-declared evidence must
    validate and evaluate, even without a QA mentioning that evidence."""

    VIEW = """
    <QualityView name="evidence-filter">
      <Annotator serviceName="ImprintOutputAnnotator"
                 serviceType="q:Imprint-output-annotation">
        <variables repositoryRef="cache" persistent="false">
          <var evidence="q:hitRatio"/>
          <var evidence="q:coverage"/>
        </variables>
      </Annotator>
      <QualityAssertion serviceName="HR score" serviceType="q:HRScore"
                        tagName="HR" tagSynType="q:score">
        <variables repositoryRef="cache">
          <var variableName="hitRatio" evidence="q:hitRatio"/>
        </variables>
      </QualityAssertion>
      <action name="direct">
        <filter><condition>coverage &gt; 0.3 and HR &gt; 10</condition></filter>
      </action>
    </QualityView>
    """

    def test_validates(self, loaded_framework):
        framework, _ = loaded_framework
        from repro.qv import parse_quality_view, validate_quality_view

        report = validate_quality_view(
            parse_quality_view(self.VIEW), framework.iq_model
        )
        assert report.ok(), report.errors

    def test_evidence_condition_evaluates(self, loaded_framework, result_set):
        framework, holder = loaded_framework
        holder.set(result_set)
        view = framework.quality_view(self.VIEW)
        result = view.run(result_set.items())
        kept = result.surviving("direct")
        assert kept
        for item in kept:
            hit = result_set.hit(item)
            assert hit.mass_coverage > 0.3
            assert hit.hit_ratio * 100 > 10
