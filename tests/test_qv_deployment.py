"""Tests for deployment descriptors and workflow embedding (Sec. 6.2)."""

import pytest

from repro.qv.deployment import (
    AdapterSpec,
    ConnectorSpec,
    DeploymentDescriptor,
    DeploymentError,
    embed_quality_workflow,
    input_sinks,
    output_source,
)
from repro.workflow import (
    Enactor,
    Port,
    PythonProcessor,
    Workflow,
)


def host_workflow():
    wf = Workflow("host")
    wf.add_input("x")
    wf.add_output("y")
    wf.add_processor(
        PythonProcessor("produce", lambda v: [v, v + 1],
                        input_ports={"v": 1}, output_ports={"out": 1})
    )
    wf.add_processor(
        PythonProcessor("consume", lambda xs: sum(xs),
                        input_ports={"xs": 1}, output_ports={"total": 0})
    )
    wf.connect("", "x", "produce", "v")
    wf.connect("produce", "out", "consume", "xs")
    wf.connect("consume", "total", "", "y")
    return wf


def quality_fragment():
    wf = Workflow("quality")
    wf.add_input("dataSet")
    wf.add_output("kept")
    wf.add_processor(
        PythonProcessor("keep_even", lambda xs: [x for x in xs if x % 2 == 0],
                        input_ports={"xs": 1}, output_ports={"kept": 1})
    )
    wf.connect("", "dataSet", "keep_even", "xs")
    wf.connect("keep_even", "kept", "", "kept")
    return wf


class TestHelpers:
    def test_input_sinks(self):
        quality = quality_fragment()
        assert input_sinks(quality, "dataSet") == [Port("keep_even", "xs")]

    def test_output_source(self):
        quality = quality_fragment()
        assert output_source(quality, "kept") == Port("keep_even", "kept")

    def test_output_source_unknown(self):
        with pytest.raises(DeploymentError):
            output_source(quality_fragment(), "ghost")


class TestEmbedding:
    def make_descriptor(self):
        descriptor = DeploymentDescriptor("d")
        descriptor.cut("produce", "out", "consume", "xs")
        descriptor.connect("produce", "out", "keep_even", "xs")
        descriptor.connect("keep_even", "kept", "consume", "xs")
        return descriptor

    def test_embedded_runs_with_quality_in_path(self):
        embedded = embed_quality_workflow(
            host_workflow(), quality_fragment(), self.make_descriptor()
        )
        # x=4 -> produce [4,5] -> keep evens [4] -> consume 4
        assert Enactor().run(embedded, {"x": 4}) == {"y": 4}

    def test_host_unmodified(self):
        host = host_workflow()
        embed_quality_workflow(host, quality_fragment(), self.make_descriptor())
        assert Enactor().run(host, {"x": 4}) == {"y": 9}

    def test_cut_of_missing_link_rejected(self):
        descriptor = DeploymentDescriptor("d")
        descriptor.cut("produce", "out", "ghost", "xs")
        with pytest.raises(DeploymentError, match="does not exist"):
            embed_quality_workflow(
                host_workflow(), quality_fragment(), descriptor
            )

    def test_prefix_avoids_collisions(self):
        host = host_workflow()
        host.add_processor(
            PythonProcessor("keep_even", lambda: None, output_ports={"o": 0})
        )
        descriptor = self.make_descriptor()
        descriptor.prefix = "qv_"
        embedded = embed_quality_workflow(host, quality_fragment(), descriptor)
        assert "qv_keep_even" in embedded.processors
        assert Enactor().run(embedded, {"x": 4})["y"] == 4

    def test_collision_without_prefix_rejected(self):
        host = host_workflow()
        host.add_processor(
            PythonProcessor("keep_even", lambda: None, output_ports={"o": 0})
        )
        with pytest.raises(Exception, match="collision"):
            embed_quality_workflow(host, quality_fragment(), self.make_descriptor())

    def test_adapter_in_path(self):
        descriptor = DeploymentDescriptor("d")
        descriptor.cut("produce", "out", "consume", "xs")
        descriptor.add_adapter(
            PythonProcessor("negate", lambda xs: [-x for x in xs],
                            input_ports={"xs": 1}, output_ports={"out": 1})
        )
        descriptor.connect("produce", "out", "negate", "xs")
        descriptor.connect("negate", "out", "keep_even", "xs")
        descriptor.connect("keep_even", "kept", "consume", "xs")
        embedded = embed_quality_workflow(
            host_workflow(), quality_fragment(), descriptor
        )
        assert Enactor().run(embedded, {"x": 4}) == {"y": -4}


class TestDescriptorXML:
    def test_roundtrip(self):
        descriptor = DeploymentDescriptor("d")
        adapter = PythonProcessor("negate", lambda xs: xs,
                                  input_ports={"xs": 1}, output_ports={"out": 1})
        descriptor.add_adapter(adapter)
        descriptor.cut("produce", "out", "consume", "xs")
        descriptor.connect("produce", "out", "negate", "xs")
        xml = descriptor.to_xml()
        restored = DeploymentDescriptor.from_xml(
            xml, adapter_registry={"negate": adapter}
        )
        assert restored.name == "d"
        assert restored.cut_links == descriptor.cut_links
        assert restored.connectors == descriptor.connectors
        assert restored.adapters[0].adapter is adapter

    def test_unregistered_adapter_rejected(self):
        descriptor = DeploymentDescriptor("d")
        descriptor.add_adapter(
            PythonProcessor("a", lambda: None, output_ports={"o": 0})
        )
        with pytest.raises(DeploymentError, match="not registered"):
            DeploymentDescriptor.from_xml(descriptor.to_xml())

    def test_malformed_xml(self):
        with pytest.raises(DeploymentError):
            DeploymentDescriptor.from_xml("<broken")
