"""Tests for the quality-view XML language and validator."""

import pytest

from repro.core.ispider import example_quality_view_xml
from repro.qv import (
    QVSyntaxError,
    parse_quality_view,
    quality_view_to_xml,
    validate_quality_view,
)
from repro.qv.validator import QVValidationError
from repro.rdf import Q

MINIMAL = """
<QualityView name="mini">
  <QualityAssertion serviceName="HRScore" serviceType="q:HRScore"
                    tagName="HR" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitRatio" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <action name="keep">
    <filter><condition>HR &gt; 10</condition></filter>
  </action>
</QualityView>
"""


class TestParsing:
    def test_paper_example_parses(self):
        spec = parse_quality_view(example_quality_view_xml())
        assert len(spec.annotators) == 1
        assert len(spec.assertions) == 3
        assert len(spec.actions) == 1
        annotator = spec.annotators[0]
        assert annotator.service_name == "ImprintOutputAnnotator"
        assert not annotator.persistent
        assert annotator.repository_ref == "cache"

    def test_assertion_details(self):
        spec = parse_quality_view(example_quality_view_xml())
        hr_mc = spec.assertions[0]
        assert hr_mc.tag_name == "HR MC"
        assert hr_mc.tag_syn_type == Q.score
        assert hr_mc.variable_bindings()["coverage"] == Q.coverage

    def test_classifier_sem_type(self):
        spec = parse_quality_view(example_quality_view_xml())
        classifier = spec.assertions[2]
        assert classifier.tag_sem_type == Q.PIScoreClassification

    def test_case_insensitive_attributes(self):
        text = MINIMAL.replace("serviceName", "servicename").replace(
            "tagName", "tagname"
        )
        spec = parse_quality_view(text)
        assert spec.assertions[0].tag_name == "HR"

    def test_filter_condition_preserved(self):
        spec = parse_quality_view(MINIMAL)
        assert spec.actions[0].condition == "HR > 10"

    def test_splitter_parsing(self):
        text = """
        <QualityView name="s">
          <QualityAssertion serviceName="HRScore" serviceType="q:HRScore"
                            tagName="HR">
            <variables><var variableName="hitRatio" evidence="q:HitRatio"/></variables>
          </QualityAssertion>
          <action name="route">
            <splitter>
              <group name="good"><condition>HR &gt; 50</condition></group>
              <group name="ok"><condition>HR &gt; 10</condition></group>
            </splitter>
          </action>
        </QualityView>
        """
        spec = parse_quality_view(text)
        action = spec.actions[0]
        assert action.kind == "splitter"
        assert [g.group for g in action.groups] == ["good", "ok"]

    def test_custom_namespace_declaration(self):
        text = """
        <QualityView name="ns">
          <namespace prefix="my" uri="http://my.org/"/>
          <QualityAssertion serviceName="x" serviceType="my:QA" tagName="T"/>
        </QualityView>
        """
        spec = parse_quality_view(text)
        assert str(spec.assertions[0].service_type) == "http://my.org/QA"

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ("<Annotator/>", "serviceName"),
            ("<Unknown/>", "unexpected element"),
            ("<action name='a'><filter/></action>", "condition"),
            (
                "<action name='a'><filter><condition>x > 1</condition></filter>"
                "<splitter><group name='g'><condition>y = 1</condition></group>"
                "</splitter></action>",
                "exactly one",
            ),
        ],
    )
    def test_syntax_errors(self, mutation, match):
        text = f"<QualityView name='bad'>{mutation}</QualityView>"
        with pytest.raises(QVSyntaxError, match=match):
            parse_quality_view(text)

    def test_wrong_root_rejected(self):
        with pytest.raises(QVSyntaxError):
            parse_quality_view("<View/>")

    def test_unknown_prefix_rejected(self):
        text = MINIMAL.replace("q:HRScore", "zz:HRScore")
        with pytest.raises(QVSyntaxError):
            parse_quality_view(text)

    def test_roundtrip(self):
        spec = parse_quality_view(example_quality_view_xml())
        reparsed = parse_quality_view(quality_view_to_xml(spec))
        assert len(reparsed.assertions) == 3
        assert reparsed.assertions[0].tag_name == "HR MC"
        assert (
            reparsed.actions[0].condition == spec.actions[0].condition
        )


class TestValidation:
    def test_paper_example_validates(self, iq_model):
        spec = parse_quality_view(example_quality_view_xml())
        report = validate_quality_view(spec, iq_model)
        assert report.ok(), report.errors

    def test_case_canonicalisation_recorded(self, iq_model):
        spec = parse_quality_view(example_quality_view_xml())
        report = validate_quality_view(spec, iq_model)
        assert report.canonicalised[Q.coverage] == Q.Coverage
        assert report.canonicalised[Q.hitRatio] == Q.HitRatio

    def test_unknown_evidence_type(self, iq_model):
        text = MINIMAL.replace("q:HitRatio", "q:Bogus")
        report = validate_quality_view(parse_quality_view(text), iq_model)
        assert not report.ok()
        assert any("Bogus" in e for e in report.errors)

    def test_wrong_service_type_category(self, iq_model):
        text = MINIMAL.replace("q:HRScore", "q:HitRatio")
        report = validate_quality_view(parse_quality_view(text), iq_model)
        assert any("QualityAssertion subclass" in e for e in report.errors)

    def test_condition_referencing_unknown_name(self, iq_model):
        text = MINIMAL.replace("HR &gt; 10", "Bogus &gt; 10")
        report = validate_quality_view(parse_quality_view(text), iq_model)
        assert any("unknown names" in e for e in report.errors)

    def test_unknown_repository(self, iq_model):
        report = validate_quality_view(
            parse_quality_view(MINIMAL), iq_model, known_repositories={"other"}
        )
        assert any("unknown repository" in e for e in report.errors)

    def test_duplicate_tags_rejected(self, iq_model):
        text = """
        <QualityView name="dup">
          <QualityAssertion serviceName="a" serviceType="q:HRScore" tagName="T">
            <variables><var variableName="hitRatio" evidence="q:HitRatio"/></variables>
          </QualityAssertion>
          <QualityAssertion serviceName="b" serviceType="q:HRScore" tagName="T">
            <variables><var variableName="hitRatio" evidence="q:HitRatio"/></variables>
          </QualityAssertion>
        </QualityView>
        """
        report = validate_quality_view(parse_quality_view(text), iq_model)
        assert any("duplicate tag names" in e for e in report.errors)

    def test_evidence_not_produced_warns(self, iq_model):
        report = validate_quality_view(parse_quality_view(MINIMAL), iq_model)
        assert report.ok()
        assert any("not produced by any annotator" in w for w in report.warnings)

    def test_declared_qa_evidence_warning(self, iq_model):
        # HRScore requires q:HitRatio per the IQ model; binding something
        # else triggers the advisory.
        text = MINIMAL.replace('evidence="q:HitRatio"', 'evidence="q:Masses"')
        text = text.replace("HR &gt; 10", "HR &gt; 10")
        report = validate_quality_view(parse_quality_view(text), iq_model)
        assert any("does not bind it" in w for w in report.warnings)

    def test_raise_if_failed(self, iq_model):
        text = MINIMAL.replace("q:HitRatio", "q:Bogus")
        report = validate_quality_view(parse_quality_view(text), iq_model)
        with pytest.raises(QVValidationError):
            report.raise_if_failed()

    def test_bad_syn_type(self, iq_model):
        text = MINIMAL.replace("q:score", "q:HitRatio")
        report = validate_quality_view(parse_quality_view(text), iq_model)
        assert any("tagSynType" in e for e in report.errors)
