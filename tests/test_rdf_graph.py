"""Unit tests for the indexed triple store."""

import pytest

from repro.rdf import Graph, Literal, Namespace, RDF, Triple, URIRef

EX = Namespace("http://example.org/")


@pytest.fixture()
def graph():
    g = Graph()
    g.add(EX.a, EX.knows, EX.b)
    g.add(EX.a, EX.knows, EX.c)
    g.add(EX.b, EX.knows, EX.c)
    g.add(EX.a, EX.name, Literal("alice"))
    return g


class TestMutation:
    def test_add_and_len(self, graph):
        assert len(graph) == 4

    def test_add_is_idempotent(self, graph):
        graph.add(EX.a, EX.knows, EX.b)
        assert len(graph) == 4

    def test_add_triple_object(self):
        g = Graph()
        g.add(Triple(EX.a, EX.p, EX.b))
        assert (EX.a, EX.p, EX.b) in g

    def test_add_rejects_literal_subject(self):
        with pytest.raises(TypeError):
            Graph().add(Literal("x"), EX.p, EX.b)

    def test_add_rejects_non_uri_predicate(self):
        with pytest.raises(TypeError):
            Graph().add(EX.a, Literal("p"), EX.b)

    def test_remove_pattern(self, graph):
        removed = graph.remove(EX.a, EX.knows, None)
        assert removed == 2
        assert len(graph) == 2
        assert (EX.a, EX.knows, EX.b) not in graph

    def test_remove_everything(self, graph):
        assert graph.remove() == 4
        assert len(graph) == 0

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0
        assert not graph


class TestPatterns:
    def test_fully_bound_membership(self, graph):
        assert (EX.a, EX.knows, EX.b) in graph
        assert (EX.a, EX.knows, EX.missing) not in graph

    def test_subject_bound(self, graph):
        assert len(list(graph.triples((EX.a, None, None)))) == 3

    def test_predicate_bound(self, graph):
        assert len(list(graph.triples((None, EX.knows, None)))) == 3

    def test_object_bound(self, graph):
        assert len(list(graph.triples((None, None, EX.c)))) == 2

    def test_sp_bound(self, graph):
        assert len(list(graph.triples((EX.a, EX.knows, None)))) == 2

    def test_po_bound(self, graph):
        assert list(graph.triples((None, EX.name, Literal("alice")))) == [
            Triple(EX.a, EX.name, Literal("alice"))
        ]

    def test_so_bound(self, graph):
        assert len(list(graph.triples((EX.a, None, EX.b)))) == 1

    def test_all_unbound(self, graph):
        assert len(list(graph.triples())) == 4

    def test_subjects_deduplicated(self, graph):
        assert set(graph.subjects(EX.knows)) == {EX.a, EX.b}

    def test_objects(self, graph):
        assert set(graph.objects(EX.a, EX.knows)) == {EX.b, EX.c}

    def test_predicates(self, graph):
        assert set(graph.predicates(EX.a)) == {EX.knows, EX.name}


class TestValue:
    def test_value_single_match(self, graph):
        assert graph.value(EX.a, EX.name, None) == Literal("alice")

    def test_value_default(self, graph):
        assert graph.value(EX.c, EX.name, None, default=Literal("?")) == Literal("?")

    def test_value_ambiguous_raises(self, graph):
        with pytest.raises(ValueError):
            graph.value(EX.a, EX.knows, None)

    def test_value_requires_one_unbound(self, graph):
        with pytest.raises(ValueError):
            graph.value(EX.a, None, None)


class TestSetOperations:
    def test_union(self, graph):
        other = Graph()
        other.add(EX.x, EX.p, EX.y)
        combined = graph + other
        assert len(combined) == 5

    def test_difference(self, graph):
        other = Graph()
        other.add(EX.a, EX.knows, EX.b)
        assert len(graph - other) == 3

    def test_intersection(self, graph):
        other = Graph()
        other.add(EX.a, EX.knows, EX.b)
        other.add(EX.z, EX.p, EX.q)
        assert len(graph & other) == 1

    def test_equality_is_set_semantics(self, graph):
        assert graph.copy() == graph

    def test_copy_is_independent(self, graph):
        copy = graph.copy()
        copy.add(EX.new, EX.p, EX.o)
        assert len(graph) == 4


class TestIndexConsistency:
    def test_remove_cleans_all_indices(self):
        g = Graph()
        g.add(EX.a, EX.p, EX.b)
        g.remove(EX.a, EX.p, EX.b)
        assert list(g.triples((EX.a, None, None))) == []
        assert list(g.triples((None, EX.p, None))) == []
        assert list(g.triples((None, None, EX.b))) == []

    def test_same_value_different_positions(self):
        g = Graph()
        g.add(EX.n, EX.n, EX.n)
        assert len(g) == 1
        assert len(list(g.triples((EX.n, None, None)))) == 1
