"""Unit tests for namespaces, prefix management and LSIDs."""

import pytest

from repro.rdf import Namespace, NamespaceManager, Q, RDF, URIRef
from repro.rdf.lsid import (
    LSID,
    LSIDError,
    accession_of,
    go_lsid,
    imprint_hit_lsid,
    pedro_lsid,
    uniprot_lsid,
)


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://x.org/")
        assert ns.Thing == URIRef("http://x.org/Thing")

    def test_item_access_for_awkward_names(self):
        assert Q["contains-evidence"] == URIRef(
            "http://qurator.org/iq#contains-evidence"
        )

    def test_contains(self):
        assert Q.HitRatio in Q
        assert URIRef("http://elsewhere/x") not in Q


class TestNamespaceManager:
    def test_expand_default_prefixes(self):
        nsm = NamespaceManager()
        assert nsm.expand("q:HitRatio") == Q.HitRatio
        assert nsm.expand("rdf:type") == RDF.type

    def test_expand_unknown_prefix(self):
        with pytest.raises(ValueError):
            NamespaceManager().expand("nope:x")

    def test_expand_requires_colon(self):
        with pytest.raises(ValueError):
            NamespaceManager().expand("plainname")

    def test_compact(self):
        nsm = NamespaceManager()
        assert nsm.compact(Q.HitRatio) == "q:HitRatio"

    def test_compact_unknown_namespace(self):
        nsm = NamespaceManager()
        assert nsm.compact(URIRef("http://unknown/x")) is None

    def test_compact_prefers_longest_namespace(self):
        nsm = NamespaceManager(defaults=False)
        nsm.bind("a", "http://x/")
        nsm.bind("b", "http://x/deep/")
        assert nsm.compact(URIRef("http://x/deep/Item")) == "b:Item"

    def test_rebind_replaces(self):
        nsm = NamespaceManager()
        nsm.bind("q", "http://other/")
        assert nsm.expand("q:X") == URIRef("http://other/X")

    def test_bind_no_replace_conflict(self):
        nsm = NamespaceManager()
        with pytest.raises(ValueError):
            nsm.bind("q", "http://other/", replace=False)


class TestLSID:
    def test_format_and_parse_roundtrip(self):
        lsid = LSID("uniprot.org", "uniprot", "P30089")
        assert str(lsid) == "urn:lsid:uniprot.org:uniprot:P30089"
        assert LSID.parse(str(lsid)) == lsid

    def test_revision(self):
        lsid = LSID("a", "b", "c", "2")
        assert str(lsid).endswith(":c:2")
        assert LSID.parse(str(lsid)).revision == "2"

    def test_parse_rejects_non_lsid(self):
        with pytest.raises(LSIDError):
            LSID.parse("http://not-an-lsid")

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(LSIDError):
            LSID.parse("urn:lsid:onlytwo:parts")

    def test_component_cannot_contain_colon(self):
        with pytest.raises(LSIDError):
            LSID("a:b", "ns", "obj")

    def test_empty_component_rejected(self):
        with pytest.raises(LSIDError):
            LSID("", "ns", "obj")

    def test_is_lsid(self):
        assert LSID.is_lsid("urn:lsid:a:b:c")
        assert not LSID.is_lsid("urn:uuid:whatever")

    def test_uniprot_wrapper(self):
        uri = uniprot_lsid("P30089")
        assert str(uri) == "urn:lsid:uniprot.org:uniprot:P30089"
        assert accession_of(uri) == "P30089"

    def test_imprint_hit_wrapper(self):
        uri = imprint_hit_lsid("spot-001", 3)
        assert accession_of(uri) == "spot-001.3"

    def test_go_wrapper_strips_colon(self):
        uri = go_lsid("GO:0001234")
        assert accession_of(uri) == "0001234"

    def test_pedro_wrapper(self):
        assert "pedro" in str(pedro_lsid("s1"))
