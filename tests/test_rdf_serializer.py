"""Unit tests for N-Triples / Turtle serialisation."""

import pytest

from repro.rdf import BNode, Graph, Literal, Namespace, Q, RDF, URIRef
from repro.rdf.serializer import (
    SerializationError,
    parse_ntriples,
    to_ntriples,
    to_turtle,
)

EX = Namespace("http://example.org/")


def sample_graph():
    g = Graph()
    g.add(EX.d1, RDF.type, Q.ImprintHitEntry)
    g.add(EX.d1, Q.value, Literal(0.85))
    g.add(EX.d1, EX.label, Literal('a "quoted"\nstring'))
    g.add(EX.d1, EX.tag, Literal("bonjour", lang="fr"))
    g.add(BNode("b0"), EX.p, EX.d1)
    return g


class TestNTriples:
    def test_roundtrip(self):
        g = sample_graph()
        g2 = Graph().parse(to_ntriples(g))
        assert g2 == g

    def test_sorted_deterministic(self):
        g = sample_graph()
        assert to_ntriples(g) == to_ntriples(g.copy())

    def test_empty_graph(self):
        assert to_ntriples(Graph()) == ""

    def test_parse_skips_comments_and_blanks(self):
        text = "# comment\n\n<http://a> <http://p> <http://b> .\n"
        triples = list(parse_ntriples(text))
        assert len(triples) == 1

    def test_parse_typed_literal(self):
        text = (
            '<http://a> <http://p> '
            '"42"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        (triple,) = parse_ntriples(text)
        assert triple.object.value == 42

    def test_parse_lang_literal(self):
        text = '<http://a> <http://p> "hi"@en .'
        (triple,) = parse_ntriples(text)
        assert triple.object.lang == "en"

    def test_parse_missing_dot_raises(self):
        with pytest.raises(SerializationError):
            list(parse_ntriples("<http://a> <http://p> <http://b>"))

    def test_parse_literal_subject_raises(self):
        with pytest.raises(SerializationError):
            list(parse_ntriples('"lit" <http://p> <http://b> .'))

    def test_parse_unicode_escape(self):
        text = '<http://a> <http://p> "caf\\u00e9" .'
        (triple,) = parse_ntriples(text)
        assert triple.object.lexical == "café"


class TestTurtle:
    def test_contains_prefixes_and_groups_subject(self):
        text = to_turtle(sample_graph())
        assert "@prefix q:" in text
        assert "q:value 0.85" in text
        assert text.count("<http://example.org/d1>\n") == 1

    def test_unknown_format_raises(self):
        with pytest.raises(SerializationError):
            sample_graph().serialize("rdfxml")

    def test_parse_unknown_format_raises(self):
        with pytest.raises(SerializationError):
            Graph().parse("", "rdfxml")
