"""Unit tests for RDF terms."""

import pytest

from repro.rdf import BNode, Literal, URIRef, Variable
from repro.rdf.term import XSD_BOOLEAN, XSD_DOUBLE, XSD_INTEGER


class TestURIRef:
    def test_equality_same_type(self):
        assert URIRef("http://a") == URIRef("http://a")
        assert URIRef("http://a") != URIRef("http://b")

    def test_not_equal_to_other_term_types(self):
        assert URIRef("x") != BNode("x")
        assert URIRef("x") != Variable("x")
        assert URIRef("x") != Literal("x")

    def test_n3(self):
        assert URIRef("http://a#b").n3() == "<http://a#b>"

    def test_fragment(self):
        assert URIRef("http://a#Frag").fragment() == "Frag"
        assert URIRef("http://a/path/Leaf").fragment() == "Leaf"

    def test_defrag(self):
        assert URIRef("http://a#b").defrag() == URIRef("http://a")

    def test_hashable_as_dict_key(self):
        d = {URIRef("http://a"): 1}
        assert d[URIRef("http://a")] == 1

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            URIRef(42)


class TestBNode:
    def test_fresh_bnodes_are_distinct(self):
        assert BNode() != BNode()

    def test_named_bnodes_equal(self):
        assert BNode("x") == BNode("x")

    def test_n3(self):
        assert BNode("b1").n3() == "_:b1"


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?x") == Variable("x")
        assert Variable("$x") == Variable("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("?")

    def test_n3(self):
        assert Variable("x").n3() == "?x"


class TestLiteral:
    def test_infers_integer_datatype(self):
        lit = Literal(5)
        assert str(lit.datatype) == XSD_INTEGER
        assert lit.value == 5

    def test_infers_double_datatype(self):
        lit = Literal(0.5)
        assert str(lit.datatype) == XSD_DOUBLE
        assert lit.value == 0.5

    def test_infers_boolean_datatype(self):
        lit = Literal(True)
        assert str(lit.datatype) == XSD_BOOLEAN
        assert lit.value is True
        assert lit.lexical == "true"

    def test_plain_string_has_no_datatype(self):
        lit = Literal("hello")
        assert lit.datatype is None
        assert lit.value == "hello"

    def test_typed_from_lexical(self):
        lit = Literal("42", datatype=XSD_INTEGER)
        assert lit.value == 42

    def test_numeric_cross_type_equality(self):
        assert Literal(2) == Literal(2.0)
        assert hash(Literal(2)) == hash(Literal(2.0))

    def test_language_literal(self):
        lit = Literal("bonjour", lang="fr")
        assert lit.lang == "fr"
        assert lit.n3() == '"bonjour"@fr'

    def test_lang_and_datatype_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD_INTEGER, lang="en")

    def test_ordering_numeric(self):
        assert Literal(1) < Literal(2.5)
        assert Literal(3) >= Literal(3.0)

    def test_ordering_strings(self):
        assert Literal("a") < Literal("b")

    def test_ordering_mixed_types_raises(self):
        with pytest.raises(TypeError):
            Literal(1) < Literal("a")

    def test_immutable(self):
        lit = Literal(1)
        with pytest.raises(AttributeError):
            lit.value = 2

    def test_n3_escaping(self):
        lit = Literal('say "hi"\n')
        assert lit.n3() == '"say \\"hi\\"\\n"'

    def test_boolean_lexical_parsing(self):
        assert Literal("true", datatype=XSD_BOOLEAN).value is True
        assert Literal("0", datatype=XSD_BOOLEAN).value is False
        with pytest.raises(ValueError):
            Literal("maybe", datatype=XSD_BOOLEAN)

    def test_is_numeric_excludes_booleans(self):
        assert Literal(1).is_numeric()
        assert not Literal(True).is_numeric()
        assert not Literal("1").is_numeric()
