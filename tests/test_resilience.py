"""The fault-tolerance layer: injection, retries, breakers, degradation.

The tentpole guarantee is the *chaos differential*: with deterministic
fault injection at a rate >= 0.3 and retries enabled, a batch of
quality-view jobs must produce results byte-identical to the fault-free
run — the resilience layer may only cost time, never change answers.
"""

from __future__ import annotations

import threading

import pytest

from repro.annotation.map import AnnotationMap
from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.qv.compiler import DEGRADED_TAG
from repro.rdf import URIRef
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerRegistry,
    CircuitOpenError,
    DeadlineExceeded,
    FaultInjector,
    FaultPlan,
    FlakyService,
    InjectedFault,
    ON_FAILURE_DEFAULT,
    ON_FAILURE_SKIP,
    ResilienceConfig,
    ResilientInvoker,
    RetryPolicy,
    apply_resilience,
)
from repro.runtime import RuntimeConfig
from repro.services.interface import Service, ServiceFault
from repro.services.messages import AnnotationMapMessage, DataSetMessage
from repro.workflow.enactor import EnactmentError, Enactor
from repro.workflow.model import Port, Workflow
from repro.workflow.processors import PythonProcessor, WSDLProcessor


class FakeClock:
    """A hand-advanced monotonic clock for sleep-free breaker tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class ScriptedService(Service):
    """A service that fails a scripted number of times, then succeeds."""

    def __init__(self, name: str, fail_times: int = 0, error=None) -> None:
        super().__init__(
            name, URIRef("http://example.org/c"),
            f"http://example.org/{name}",
        )
        self.fail_times = fail_times
        self.error = error
        self.calls = 0

    def invoke(self, dataset, amap, context=None):
        self.calls += 1
        if self.error is not None:
            raise self.error
        if self.calls <= self.fail_times:
            raise ServiceFault(
                self.name, f"scripted failure {self.calls}",
                endpoint=self.endpoint,
            )
        return amap


class EchoService(Service):
    """A minimal concrete service for injector/wrapper tests."""

    def invoke(self, dataset, amap, context=None):
        self._round_trip()
        return amap


def no_sleep(_seconds: float) -> None:
    pass


# -- retry policy ------------------------------------------------------------


class TestRetryPolicy:
    def test_ceiling_doubles_then_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert policy.ceiling(1) == pytest.approx(0.1)
        assert policy.ceiling(2) == pytest.approx(0.2)
        assert policy.ceiling(3) == pytest.approx(0.4)
        assert policy.ceiling(4) == pytest.approx(0.5)
        assert policy.ceiling(10) == pytest.approx(0.5)

    def test_backoff_is_full_jitter_within_ceiling(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=1.0, seed=7)
        for failures in (1, 2, 3):
            for _ in range(50):
                delay = policy.backoff(failures)
                assert 0.0 <= delay <= policy.ceiling(failures)

    def test_seeded_schedules_replay(self):
        first = [RetryPolicy(seed=13).backoff(2) for _ in range(10)]
        again = [RetryPolicy(seed=13).backoff(2) for _ in range(10)]
        assert first == again

    def test_zero_base_means_no_delay(self):
        assert RetryPolicy(backoff_base=0.0).backoff(3) == 0.0

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(ServiceFault("s", "boom"))
        assert not policy.retryable(DeadlineExceeded("s", "late"))
        assert not policy.retryable(ValueError("programming error"))

    def test_backoff_rejects_zero_failures(self):
        with pytest.raises(ValueError):
            RetryPolicy().ceiling(0)


# -- circuit breaker ---------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **kwargs) -> "tuple[CircuitBreaker, FakeClock]":
        clock = FakeClock()
        kwargs.setdefault("threshold", 3)
        kwargs.setdefault("reset_after", 10.0)
        breaker = CircuitBreaker("http://x/svc", clock=clock, **kwargs)
        return breaker, clock

    def test_opens_on_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError) as error:
            breaker.allow()
        assert error.value.endpoint == "http://x/svc"
        assert breaker.snapshot().rejections == 1

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_recloses_on_success(self):
        breaker, clock = self._breaker(threshold=1, reset_after=10.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.allow()  # the probe is admitted
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # only `probes` calls may fly at once
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker, clock = self._breaker(threshold=1, reset_after=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.snapshot().opened_count == 2
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_threshold_zero_disables_breaking(self):
        breaker, _ = self._breaker(threshold=0)
        for _ in range(20):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.snapshot().failures == 20

    def test_registry_isolates_endpoints(self):
        clock = FakeClock()
        registry = CircuitBreakerRegistry(threshold=1, clock=clock)
        registry.breaker("http://x/bad").record_failure()
        assert registry.open_endpoints() == ["http://x/bad"]
        # the unrelated endpoint still admits calls
        registry.breaker("http://x/good").allow()
        assert len(registry) == 2
        snapshots = registry.snapshots()
        assert snapshots["http://x/bad"].state is BreakerState.OPEN
        assert snapshots["http://x/good"].state is BreakerState.CLOSED


# -- resilient invoker -------------------------------------------------------


class TestResilientInvoker:
    def _invoker(self, **overrides) -> ResilientInvoker:
        config = ResilienceConfig(backoff_base=0.0).with_overrides(**overrides)
        return ResilientInvoker(config, clock=FakeClock(), sleep=no_sleep)

    def test_retries_until_success(self):
        invoker = self._invoker(max_attempts=3)
        service = ScriptedService("flaky", fail_times=2)
        amap = AnnotationMap()
        assert invoker.invoke(service, DataSetMessage([]), amap) is amap
        snap = invoker.snapshot()
        assert service.calls == 3
        assert snap.retries == 2
        assert snap.successes == 1
        assert snap.exhausted == 0

    def test_exhaustion_raises_the_last_fault(self):
        invoker = self._invoker(max_attempts=2)
        service = ScriptedService("dead", fail_times=99)
        with pytest.raises(ServiceFault) as error:
            invoker.invoke(service, DataSetMessage([]), AnnotationMap())
        assert "scripted failure 2" in str(error.value)
        snap = invoker.snapshot()
        assert snap.exhausted == 1
        assert snap.retries == 1

    def test_non_service_faults_are_not_retried(self):
        invoker = self._invoker(max_attempts=5)
        service = ScriptedService("buggy", error=ValueError("not a fault"))
        with pytest.raises(ValueError):
            invoker.invoke(service, DataSetMessage([]), AnnotationMap())
        assert service.calls == 1
        assert invoker.snapshot().retries == 0

    def test_deadline_cuts_the_retry_loop(self):
        # backoff_base=10 with jitter_seed=0 draws a first delay of
        # several seconds, far beyond the 0.5 s budget.
        config = ResilienceConfig(
            max_attempts=5, backoff_base=10.0, backoff_cap=10.0,
            jitter_seed=0, deadline=0.5,
        )
        invoker = ResilientInvoker(config, clock=FakeClock(), sleep=no_sleep)
        service = ScriptedService("slow", fail_times=99)
        with pytest.raises(DeadlineExceeded) as error:
            invoker.invoke(service, DataSetMessage([]), AnnotationMap())
        assert isinstance(error.value.cause, ServiceFault)
        assert error.value.__cause__ is error.value.cause
        assert invoker.snapshot().deadline_exceeded == 1

    def test_open_breaker_rejects_without_invoking(self):
        invoker = self._invoker(max_attempts=1, breaker_threshold=1)
        bad = ScriptedService("bad", fail_times=99)
        good = ScriptedService("good")
        with pytest.raises(ServiceFault):
            invoker.invoke(bad, DataSetMessage([]), AnnotationMap())
        calls_before = bad.calls
        with pytest.raises(CircuitOpenError):
            invoker.invoke(bad, DataSetMessage([]), AnnotationMap())
        assert bad.calls == calls_before  # failed fast, no round trip
        assert invoker.snapshot().breaker_rejections == 1
        # an unrelated endpoint is unaffected by the open breaker
        invoker.invoke(good, DataSetMessage([]), AnnotationMap())
        assert invoker.breakers.open_endpoints() == [bad.endpoint]

    def test_registry_health_surfaces_breaker_state(self, framework):
        service = ScriptedService("probe", fail_times=99)
        framework.services.deploy(service)
        invoker = framework.resilient_invoker(
            ResilienceConfig(max_attempts=1, breaker_threshold=1,
                             backoff_base=0.0)
        )
        assert framework.services.health_registry is invoker.breakers
        with pytest.raises(ServiceFault):
            invoker.invoke(service, DataSetMessage([]), AnnotationMap())
        health = framework.services.health()
        assert health[service.endpoint].state is BreakerState.OPEN


# -- fault injection ---------------------------------------------------------


def _verdicts(injector: FaultInjector, service: Service, n: int) -> list:
    outcomes = []
    for _ in range(n):
        try:
            injector.on_invocation(service)
        except InjectedFault as fault:
            outcomes.append(type(fault).__name__)
        else:
            outcomes.append("ok")
    return outcomes


class TestFaultInjector:
    def _service(self, name: str = "svc") -> EchoService:
        return EchoService(
            name, URIRef("http://example.org/c"), f"http://example.org/{name}"
        )

    def test_same_seed_replays_the_same_verdicts(self):
        first = FaultInjector(seed=3).plan_all(fault_rate=0.5)
        second = FaultInjector(seed=3).plan_all(fault_rate=0.5)
        service = self._service()
        assert _verdicts(first, service, 40) == _verdicts(second, service, 40)
        assert "InjectedFault" in _verdicts(
            FaultInjector(seed=3).plan_all(fault_rate=0.5), service, 40
        )

    def test_per_service_streams_ignore_interleaving(self):
        a, b = self._service("a"), self._service("b")
        solo = FaultInjector(seed=9).plan_all(fault_rate=0.4)
        expected = _verdicts(solo, a, 30)
        mixed = FaultInjector(seed=9).plan_all(fault_rate=0.4)
        outcomes = []
        for index in range(30):
            # b's draws interleave arbitrarily with a's
            for _ in range(index % 3):
                try:
                    mixed.on_invocation(b)
                except InjectedFault:
                    pass
            try:
                mixed.on_invocation(a)
            except InjectedFault as fault:
                outcomes.append(type(fault).__name__)
            else:
                outcomes.append("ok")
        assert outcomes == expected

    def test_max_faults_budget(self):
        injector = FaultInjector(seed=0).plan_all(
            fault_rate=1.0, max_faults=2
        )
        service = self._service()
        verdicts = _verdicts(injector, service, 6)
        assert verdicts == ["InjectedFault", "InjectedFault", "ok", "ok",
                            "ok", "ok"]
        assert injector.total_injected() == 2

    def test_attach_preserves_concrete_type_and_detaches(self):
        service = self._service()
        injector = FaultInjector(seed=1).plan(service.name, fault_rate=1.0)
        injector.attach(service)
        assert isinstance(service, EchoService)
        with pytest.raises(InjectedFault):
            service.invoke(DataSetMessage([]), AnnotationMap())
        injector.detach(service)
        service.invoke(DataSetMessage([]), AnnotationMap())

    def test_timeouts_and_counters(self):
        injector = FaultInjector(seed=5).plan_all(timeout_rate=1.0)
        service = self._service()
        from repro.resilience import InjectedTimeout

        with pytest.raises(InjectedTimeout):
            injector.on_invocation(service)
        counters = injector.counters()[service.name]
        assert counters.invocations == 1
        assert counters.timeouts == 1
        assert counters.faults == 0

    def test_flaky_service_wraps_and_delegates(self):
        inner = self._service("wrapped")
        inner.marker = "reachable"
        injector = FaultInjector(seed=2).plan("wrapped", fault_rate=1.0)
        flaky = FlakyService(inner, injector)
        assert flaky.marker == "reachable"
        with pytest.raises(InjectedFault):
            flaky.invoke(DataSetMessage([]), AnnotationMap())

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(fault_rate=1.5).validated()
        with pytest.raises(ValueError):
            FaultPlan(fault_rate=0.6, timeout_rate=0.6).validated()
        with pytest.raises(ValueError):
            FaultPlan(extra_latency=-1.0).validated()


# -- degradation semantics ---------------------------------------------------


def _failing_view_world(scenario, result_set, on_failure=None,
                        overrides=None):
    """The example view with the HRScore service failing every call."""
    framework, holder = setup_framework(scenario)
    holder.set(result_set)
    injector = FaultInjector(seed=0).plan("HRScore", fault_rate=1.0)
    injector.attach(framework.services.by_name("HRScore"))
    config = ResilienceConfig(
        max_attempts=2, backoff_base=0.0, breaker_threshold=0,
        on_failure=on_failure or "fail",
        on_failure_overrides=overrides or {},
    )
    invoker = framework.resilient_invoker(config)
    view = framework.quality_view(example_quality_view_xml())
    view.with_resilience(invoker)
    return framework, view


class TestDegradation:
    def test_degraded_outputs_default_to_nothing(self):
        processor = PythonProcessor(
            "boomer", lambda x: 1 / 0, input_ports={"x": 0},
            output_ports={"out": 0, "items": 1},
        ).with_on_failure(ON_FAILURE_SKIP)
        workflow = Workflow("degrading")
        workflow.add_input("x")
        workflow.add_output("y")
        workflow.add_processor(processor)
        workflow.connect("", "x", "boomer", "x")
        workflow.link(Port("boomer", "out"), Port("", "y"))
        enacted = Enactor().enact(workflow, {"x": 1})
        assert enacted.outputs == {"y": None}
        degraded = enacted.trace.degraded()
        assert [event.processor for event in degraded] == ["boomer"]
        assert "ZeroDivisionError" in degraded[0].error

    def test_fail_policy_still_propagates(self):
        processor = PythonProcessor(
            "boomer", lambda x: 1 / 0, input_ports={"x": 0},
            output_ports={"out": 0},
        )
        workflow = Workflow("failing")
        workflow.add_input("x")
        workflow.add_output("y")
        workflow.add_processor(processor)
        workflow.connect("", "x", "boomer", "x")
        workflow.link(Port("boomer", "out"), Port("", "y"))
        with pytest.raises(EnactmentError):
            Enactor().run(workflow, {"x": 1})

    def test_skip_policy_completes_the_view_without_the_tag(
        self, scenario, result_set
    ):
        framework, view = _failing_view_world(
            scenario, result_set, overrides={"HR score": ON_FAILURE_SKIP}
        )
        result = view.run(result_set.items())
        trace = framework.enactor.last_trace
        assert [e.processor for e in trace.degraded()] == ["HR score"]
        assert not trace.failed()
        for item in result.items:
            assert "HR" not in result.annotation_map.tags_for(item)

    def test_default_annotation_tags_items_as_degraded(
        self, scenario, result_set
    ):
        framework, view = _failing_view_world(
            scenario, result_set, on_failure=ON_FAILURE_DEFAULT
        )
        result = view.run(result_set.items())
        trace = framework.enactor.last_trace
        assert [e.processor for e in trace.degraded()] == ["HR score"]
        for item in result.items:
            tags = result.annotation_map.tags_for(item)
            assert tags["HR"].value == DEGRADED_TAG
            # the healthy assertions still produced real tags
            assert tags["ScoreClass"].value != DEGRADED_TAG


# -- chaos differential (the tentpole acceptance test) -----------------------


def _run_batch(framework, view, datasets, *, parallel=False):
    """Run one dataset-per-job batch; returns serialized results + stats."""
    config = RuntimeConfig(
        workers=4,
        parallel_enactment=parallel,
        resilience=ResilienceConfig(
            max_attempts=10, backoff_base=0.0, breaker_threshold=0,
            jitter_seed=1,
        ),
    )
    with framework.runtime(config) as service:
        batch = service.submit_many(view, datasets)
        outcomes = batch.results()
        snapshot = service.snapshot()
        dead = list(service.dead_letters)
    serialized = [
        (
            AnnotationMapMessage(outcome.annotation_map).to_xml(),
            outcome.groups,
        )
        for outcome in outcomes
    ]
    return serialized, snapshot, dead


@pytest.fixture(scope="module")
def chaos_datasets(result_set, imprint_runs):
    return [result_set.items_of_run(run.run_id) for run in imprint_runs]


class TestChaosDifferential:
    @pytest.mark.parametrize("parallel", [False, True],
                             ids=["serial", "wavefront"])
    def test_faulty_run_is_byte_identical_to_fault_free(
        self, scenario, result_set, chaos_datasets, parallel
    ):
        baseline_framework, holder = setup_framework(scenario)
        holder.set(result_set)
        baseline_view = baseline_framework.quality_view(
            example_quality_view_xml()
        )
        baseline, base_snap, base_dead = _run_batch(
            baseline_framework, baseline_view, chaos_datasets,
            parallel=parallel,
        )
        assert base_snap.invocation_retries == 0
        assert not base_dead

        chaos_framework, holder = setup_framework(scenario)
        holder.set(result_set)
        injector = FaultInjector(seed=11).plan_all(fault_rate=0.35)
        injector.attach_registry(chaos_framework.services)
        chaos_view = chaos_framework.quality_view(example_quality_view_xml())
        chaos, snap, dead = _run_batch(
            chaos_framework, chaos_view, chaos_datasets, parallel=parallel
        )

        assert injector.total_injected() > 0
        assert snap.invocation_retries > 0
        assert snap.dead_lettered == 0
        assert snap.failed == 0
        assert not dead
        for (chaos_xml, chaos_groups), (base_xml, base_groups) in zip(
            chaos, baseline
        ):
            assert chaos_xml == base_xml
            assert chaos_groups == base_groups


class TestOptimizedPlanChaos:
    """Fault drill through an optimized (fused + gated) compiled plan.

    The staged compiler rewires the workflow — one fused HRScore
    invocation, a filter gate narrowing the data set — so resilience
    must keep its guarantees on that shape too: retries recover every
    injected fault and the surviving verdicts match both the fault-free
    optimized run (byte-identical) and the reference compilation.
    """

    def _world(self, scenario, result_set, injector=None):
        from tests.test_compiler_ir import OBSERVED, PUSHDOWN_XML

        framework, holder = setup_framework(scenario)
        holder.set(result_set)
        if injector is not None:
            injector.attach_registry(framework.services)
        view = framework.quality_view(PUSHDOWN_XML)
        return framework, view, OBSERVED

    def test_faults_recover_and_verdicts_match_the_reference(
        self, scenario, result_set, chaos_datasets
    ):
        ref_framework, ref_view, _ = self._world(scenario, result_set)
        ref_view.compile(optimize=False)
        reference, _, _ = _run_batch(
            ref_framework, ref_view, chaos_datasets, parallel=True
        )

        base_framework, base_view, observed = self._world(
            scenario, result_set
        )
        base_view.compile(options=observed)
        assert "HR score + HR score b" in base_view.compile().processors
        baseline, base_snap, base_dead = _run_batch(
            base_framework, base_view, chaos_datasets, parallel=True
        )
        assert base_snap.invocation_retries == 0
        assert not base_dead

        injector = FaultInjector(seed=11).plan_all(fault_rate=0.35)
        chaos_framework, chaos_view, observed = self._world(
            scenario, result_set, injector=injector
        )
        chaos_view.compile(options=observed)
        chaos, snap, dead = _run_batch(
            chaos_framework, chaos_view, chaos_datasets, parallel=True
        )

        assert injector.total_injected() > 0
        assert snap.invocation_retries > 0
        assert snap.failed == 0
        assert not dead
        for (chaos_xml, chaos_groups), (base_xml, base_groups) in zip(
            chaos, baseline
        ):
            assert chaos_xml == base_xml
            assert chaos_groups == base_groups
        # the filter verdicts agree with the reference pipeline's
        for (_, chaos_groups), (_, ref_groups) in zip(chaos, reference):
            assert chaos_groups == ref_groups


# -- runtime integration -----------------------------------------------------


def _flaky_workflow(fail_first: int, error=RuntimeError) -> Workflow:
    """A workflow whose only processor fails its first N enactments."""
    state = {"calls": 0}

    def sometimes(x):
        state["calls"] += 1
        if state["calls"] <= fail_first:
            raise error(f"transient {state['calls']}")
        return x + 1

    workflow = Workflow("flaky-job")
    workflow.add_input("x")
    workflow.add_output("y")
    workflow.add_processor(
        PythonProcessor(
            "sometimes", sometimes, input_ports={"x": 0},
            output_ports={"out": 0},
        )
    )
    workflow.connect("", "x", "sometimes", "x")
    workflow.link(Port("sometimes", "out"), Port("", "y"))
    return workflow


class TestRuntimeResilience:
    def test_job_retry_recovers_a_transient_failure(self, framework):
        with framework.runtime(workers=1, job_retries=2) as service:
            handle = service.submit_workflow(_flaky_workflow(1), {"x": 1})
            assert handle.result(timeout=10) == {"y": 2}
            snap = service.snapshot()
        assert handle.metrics.retries == 1
        assert snap.job_retries == 1
        assert snap.dead_lettered == 0
        assert service.dead_letters == []

    def test_exhausted_jobs_are_dead_lettered(self, framework):
        with framework.runtime(workers=1, job_retries=1) as service:
            handle = service.submit_workflow(_flaky_workflow(99), {"x": 1})
            handle.wait(timeout=10)
            snap = service.snapshot()
        assert isinstance(handle.exception(), EnactmentError)
        assert handle.metrics.retries == 1
        assert snap.job_retries == 1
        assert snap.dead_lettered == 1
        assert snap.failed == 1
        assert service.dead_letters == [handle]

    def test_open_endpoint_does_not_block_unrelated_jobs(self, framework):
        def service_workflow(name: str, service: Service) -> Workflow:
            workflow = Workflow(name)
            workflow.add_input("dataSet")
            workflow.add_output("annotationMap")
            workflow.add_processor(WSDLProcessor("call", service))
            workflow.connect("", "dataSet", "call", "dataSet")
            workflow.link(
                Port("call", "annotationMap"), Port("", "annotationMap")
            )
            return workflow

        bad = ScriptedService("down", fail_times=9999)
        good = ScriptedService("up")
        config = RuntimeConfig(
            workers=2,
            resilience=ResilienceConfig(
                max_attempts=2, backoff_base=0.0, breaker_threshold=2,
            ),
        )
        with framework.runtime(config) as service:
            first = service.submit_workflow(
                service_workflow("bad-wf", bad), {"dataSet": []}
            )
            first.wait(timeout=10)
            # the breaker for the failing endpoint is now open; a second
            # job against it fails fast without a round trip...
            calls_before = bad.calls
            second = service.submit_workflow(
                service_workflow("bad-wf-2", bad), {"dataSet": []}
            )
            second.wait(timeout=10)
            # ...while unrelated jobs keep flowing through the pool.
            healthy = [
                service.submit_workflow(
                    service_workflow(f"good-wf-{i}", good), {"dataSet": []}
                )
                for i in range(4)
            ]
            for handle in healthy:
                assert "annotationMap" in handle.result(timeout=10)
            snap = service.snapshot()
        assert isinstance(first.exception(), EnactmentError)
        assert bad.calls == calls_before  # rejected by the breaker
        assert snap.breaker_rejections >= 1
        assert snap.open_endpoints == 1
        assert snap.completed == 4
        assert service.invoker.breakers.open_endpoints() == [bad.endpoint]

    def test_service_fault_carries_endpoint_and_cause(self):
        class Exploding(Service):
            def invoke(self, dataset, amap, context=None):
                raise KeyError("missing evidence")

        service = Exploding(
            "exploder", URIRef("http://example.org/c"), "http://x/exploder"
        )
        with pytest.raises(ServiceFault) as error:
            service.invoke_xml(
                DataSetMessage([]).to_xml(), AnnotationMapMessage().to_xml()
            )
        fault = error.value
        assert fault.service == "exploder"
        assert fault.endpoint == "http://x/exploder"
        assert isinstance(fault.cause, KeyError)
        assert fault.__cause__ is fault.cause
        assert "http://x/exploder" in str(fault)

    def test_registry_replace_swaps_in_place(self, framework):
        original = ScriptedService("swappable")
        framework.services.deploy(original)
        endpoint = original.endpoint
        replacement = ScriptedService("swappable", fail_times=1)
        previous = framework.services.replace(replacement)
        assert previous is original
        assert framework.services.by_name("swappable") is replacement
        assert replacement.endpoint == endpoint
        assert framework.services.by_endpoint(endpoint) is replacement
        with pytest.raises(KeyError):
            framework.services.replace(ScriptedService("never-deployed"))


class TestApplyResilience:
    def test_only_service_backed_processors_get_the_invoker(self):
        workflow = Workflow("mixed")
        workflow.add_input("dataSet")
        workflow.add_output("annotationMap")
        wsdl = WSDLProcessor("call", ScriptedService("svc"))
        plain = PythonProcessor(
            "local", lambda dataSet: dataSet, input_ports={"dataSet": 1},
            output_ports={"out": 1},
        )
        workflow.add_processor(wsdl)
        workflow.add_processor(plain)
        workflow.connect("", "dataSet", "call", "dataSet")
        workflow.connect("", "dataSet", "local", "dataSet")
        workflow.link(Port("call", "annotationMap"), Port("", "annotationMap"))

        invoker = ResilientInvoker(
            ResilienceConfig(on_failure=ON_FAILURE_SKIP,
                             on_failure_overrides={"local": ON_FAILURE_SKIP})
        )
        apply_resilience(workflow, invoker)
        assert wsdl.invoker is invoker
        assert plain.invoker is None
        assert wsdl.on_failure == ON_FAILURE_SKIP  # service-backed default
        assert plain.on_failure == ON_FAILURE_SKIP  # explicit override
