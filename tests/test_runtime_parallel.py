"""Differential guarantee of the parallel enactor.

``ParallelEnactor`` must be *output-identical* to the serial
``Enactor``: same workflow outputs, same fired-processor set, same
failures — only the interleaving of trace events may differ.  Checked
over the compiled Sec. 5.1 example quality view and over
property-based random DAGs (hypothesis).
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.runtime import ParallelEnactor
from repro.services.interface import ServiceFault
from repro.workflow.enactor import EnactmentError, Enactor
from repro.workflow.model import Port, Workflow
from repro.workflow.processors import PythonProcessor


@pytest.fixture(scope="module")
def qv_world(scenario, result_set):
    """A loaded framework plus the compiled Sec. 5.1 example view."""
    framework, holder = setup_framework(scenario)
    holder.set(result_set)
    view = framework.quality_view(example_quality_view_xml())
    view.compile()
    return framework, view, result_set


class TestExampleViewDifferential:
    def test_parallel_equals_serial_on_example_view(self, qv_world):
        framework, view, results = qv_world
        items = results.items()

        framework.repositories.clear_transient()
        serial = view.run(items, enactor=Enactor(), clear_cache=False)

        parallel_enactor = ParallelEnactor(max_workers=4)
        framework.repositories.clear_transient()
        parallel = view.run(items, enactor=parallel_enactor, clear_cache=False)

        assert parallel.groups == serial.groups
        assert parallel.annotation_map == serial.annotation_map
        assert [str(i) for i in parallel.items] == [str(i) for i in serial.items]

    def test_same_fired_processor_set(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        serial_enactor = Enactor()
        parallel_enactor = ParallelEnactor(max_workers=4)

        framework.repositories.clear_transient()
        view.run(items, enactor=serial_enactor, clear_cache=False)
        framework.repositories.clear_transient()
        view.run(items, enactor=parallel_enactor, clear_cache=False)

        assert set(parallel_enactor.last_trace.order()) == set(
            serial_enactor.last_trace.order()
        )
        # each processor fired exactly once in both strategies
        assert len(parallel_enactor.last_trace.order()) == len(
            serial_enactor.last_trace.order()
        )

    def test_iteration_fanout_equals_serial(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        fanned = ParallelEnactor(max_workers=4, iteration_workers=4)
        framework.repositories.clear_transient()
        serial = view.run(items, enactor=Enactor(), clear_cache=False)
        framework.repositories.clear_transient()
        parallel = view.run(items, enactor=fanned, clear_cache=False)
        assert parallel.groups == serial.groups
        assert parallel.annotation_map == serial.annotation_map


# -- property-based random DAGs ---------------------------------------------


def _build_random_workflow(
    n_processors: int, edge_bits: list, control_bits: list
) -> Workflow:
    """A random-but-valid DAG of deterministic arithmetic processors.

    Processor ``i`` may read any ``j < i`` (edge bits row-major), so the
    graph is acyclic by construction; sources read the workflow input.
    Every sink feeds its own workflow output.  Feeding the ``seed``
    input a *list* exercises implicit iteration under the wavefront
    (each firing's output is then a list, compounding downstream).
    """
    workflow = Workflow("random-dag")
    workflow.add_input("seed")

    for i in range(n_processors):
        feeders = [j for j in range(i) if edge_bits[i * n_processors + j]]
        if not feeders:
            input_ports = {"seed": 0}
        else:
            input_ports = {f"in{j}": 0 for j in feeders}

        def fn(i=i, **values):
            total = 0
            for value in values.values():
                total = total * 31 + (value if isinstance(value, int) else sum(value))
            return total + i

        workflow.add_processor(
            PythonProcessor(
                f"p{i}", fn, input_ports=input_ports, output_ports={"out": 0}
            )
        )
        if not feeders:
            workflow.connect("", "seed", f"p{i}", "seed")
        else:
            for j in feeders:
                workflow.connect(f"p{j}", "out", f"p{i}", f"in{j}")

    fed = {
        link.source.processor
        for link in workflow.data_links
        if link.source.processor
    }
    for i in range(n_processors):
        if f"p{i}" not in fed:
            workflow.add_output(f"result{i}")
            workflow.link(Port(f"p{i}", "out"), Port("", f"result{i}"))

    for i in range(n_processors):
        for j in range(i):
            if control_bits[i * n_processors + j]:
                workflow.control(f"p{j}", f"p{i}")
    return workflow


@st.composite
def random_dags(draw):
    list_source = draw(st.booleans())
    # Iterated runs compound list lengths through cross products, so
    # keep those DAGs small to bound the firing count.
    n = draw(st.integers(min_value=2, max_value=4 if list_source else 7))
    edge_bits = draw(
        st.lists(st.booleans(), min_size=n * n, max_size=n * n)
    )
    control_bits = draw(
        st.lists(st.booleans(), min_size=n * n, max_size=n * n)
    )
    return (
        _build_random_workflow(n, edge_bits, control_bits),
        list_source,
    )


class TestRandomDagDifferential:
    @settings(max_examples=60, deadline=None)
    @given(dag=random_dags(), seed=st.integers(min_value=0, max_value=1000))
    def test_parallel_equals_serial(self, dag, seed):
        workflow, list_source = dag
        inputs = {"seed": [seed, seed + 1, seed + 2] if list_source else seed}
        serial_enactor = Enactor()
        parallel_enactor = ParallelEnactor(max_workers=4, iteration_workers=2)
        serial = serial_enactor.enact(workflow, inputs)
        parallel = parallel_enactor.enact(workflow, inputs)
        assert parallel.outputs == serial.outputs
        assert set(parallel.trace.order()) == set(serial.trace.order())

    def test_failure_propagates_identically(self):
        workflow = Workflow("failing")
        workflow.add_input("x")
        workflow.add_output("y")

        def boom(x):
            raise ValueError("deliberate")

        workflow.add_processor(
            PythonProcessor(
                "ok", lambda x: x + 1, input_ports={"x": 0},
                output_ports={"out": 0},
            )
        )
        workflow.add_processor(
            PythonProcessor(
                "bad", boom, input_ports={"x": 0}, output_ports={"out": 0}
            )
        )
        workflow.connect("", "x", "ok", "x")
        workflow.connect("ok", "out", "bad", "x")
        workflow.add_processor(
            PythonProcessor(
                "after", lambda x: x, input_ports={"x": 0},
                output_ports={"out": 0},
            )
        )
        workflow.connect("bad", "out", "after", "x")
        workflow.link(Port("after", "out"), Port("", "y"))

        with pytest.raises(EnactmentError) as serial_error:
            Enactor().run(workflow, {"x": 1})
        with pytest.raises(EnactmentError) as parallel_error:
            ParallelEnactor(max_workers=3).run(workflow, {"x": 1})
        assert serial_error.value.processor == parallel_error.value.processor
        assert "deliberate" in str(parallel_error.value)


class TestWavefrontFaultPropagation:
    """Satellite: a ServiceFault in one branch fails the run cleanly.

    The wavefront must neither hang nor orphan in-flight siblings: the
    failing branch's error surfaces as one EnactmentError, concurrently
    running siblings finish their firing, nothing downstream of the
    failure is ever scheduled, and the run's thread pools shut down.
    """

    def _forked(self, sibling_delay: float = 0.0) -> Workflow:
        """input -> src -> {bad -> after_bad, slow_sibling} (two branches)."""
        workflow = Workflow("forked")
        workflow.add_input("x")
        workflow.add_output("y")

        def boom(x):
            raise ServiceFault("remote-qa", "endpoint down",
                               endpoint="http://x/qa")

        def slow(x):
            if sibling_delay:
                time.sleep(sibling_delay)
            return x * 2

        workflow.add_processor(
            PythonProcessor("src", lambda x: x + 1, input_ports={"x": 0},
                            output_ports={"out": 0})
        )
        workflow.add_processor(
            PythonProcessor("bad", boom, input_ports={"x": 0},
                            output_ports={"out": 0})
        )
        workflow.add_processor(
            PythonProcessor("after_bad", lambda x: x, input_ports={"x": 0},
                            output_ports={"out": 0})
        )
        workflow.add_processor(
            PythonProcessor("slow_sibling", slow, input_ports={"x": 0},
                            output_ports={"out": 0})
        )
        workflow.connect("", "x", "src", "x")
        workflow.connect("src", "out", "bad", "x")
        workflow.connect("bad", "out", "after_bad", "x")
        workflow.connect("src", "out", "slow_sibling", "x")
        workflow.link(Port("slow_sibling", "out"), Port("", "y"))
        return workflow

    def test_fault_surfaces_without_hanging(self):
        enactor = ParallelEnactor(max_workers=4)
        with pytest.raises(EnactmentError) as error:
            enactor.run(self._forked(), {"x": 1})
        assert error.value.processor == "bad"
        assert isinstance(error.value.cause, ServiceFault)
        assert error.value.cause.endpoint == "http://x/qa"

    def test_in_flight_sibling_completes_and_downstream_is_never_fired(self):
        enactor = ParallelEnactor(max_workers=4)
        with pytest.raises(EnactmentError):
            enactor.run(self._forked(sibling_delay=0.05), {"x": 1})
        trace = enactor.last_trace
        by_name = {event.processor: event for event in trace.events}
        # the sibling that was already in flight finished its firing
        assert by_name["slow_sibling"].status == "completed"
        # nothing downstream of the failure was ever scheduled
        assert "after_bad" not in by_name
        assert by_name["bad"].status == "failed"

    def test_executor_threads_are_shut_down(self):
        enactor = ParallelEnactor(max_workers=3, iteration_workers=2)
        with pytest.raises(EnactmentError):
            enactor.run(self._forked(sibling_delay=0.02), {"x": 1})
        leftovers = [
            thread for thread in threading.enumerate()
            if thread.name.startswith(("enact-forked", "iter-forked"))
        ]
        assert leftovers == []


class TestTraceIsolation:
    """Satellite: concurrent callers never see each other's trace."""

    def _tiny(self, name: str) -> Workflow:
        workflow = Workflow(name)
        workflow.add_input("x")
        workflow.add_output("y")
        workflow.add_processor(
            PythonProcessor(
                "only", lambda x: x, input_ports={"x": 0},
                output_ports={"out": 0},
            )
        )
        workflow.connect("", "x", "only", "x")
        workflow.link(Port("only", "out"), Port("", "y"))
        return workflow

    def test_last_trace_is_per_thread(self):
        enactor = Enactor()
        seen = {}
        barrier = threading.Barrier(2)

        def run(name: str) -> None:
            workflow = self._tiny(name)
            barrier.wait()
            for _ in range(20):
                enactor.run(workflow, {"x": 1})
                assert enactor.last_trace.workflow == name
            seen[name] = enactor.last_trace.workflow

        threads = [
            threading.Thread(target=run, args=(f"wf-{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {"wf-0": "wf-0", "wf-1": "wf-1"}

    def test_enact_returns_trace_attached_to_result(self):
        enactor = Enactor()
        workflow = self._tiny("attached")
        first = enactor.enact(workflow, {"x": 1})
        second = enactor.enact(workflow, {"x": 2})
        assert first.trace is not second.trace
        assert first.outputs == {"y": 1}
        assert second.outputs == {"y": 2}
        assert first.trace.order() == ["only"]
        # last_trace still works for backward compatibility
        assert enactor.last_trace is second.trace
