"""The sharded process-pool backend: routing, differentials, faults.

The load-bearing property of :mod:`repro.runtime.process` is that
distribution never changes an answer: every quality view enacted over
the pool must come back *byte-equal* to the serial enactor — same items
in the same order, same typed annotation terms, same routing groups —
across shard counts, across seeds, and under injected faults and
worker-process crashes.
"""

from __future__ import annotations

import os

import pytest

from repro.core.framework import QuratorFramework
from repro.core.ispider import (
    LiveImprintAnnotator,
    ResultSetHolder,
    example_quality_view_xml,
    setup_framework,
)
from repro.observability import get_event_log
from repro.proteomics import ProteomicsScenario
from repro.proteomics.results import ImprintResultSet
from repro.rdf import Q, URIRef
from repro.runtime import (
    ProcessExecutionService,
    RuntimeClosedError,
    RuntimeConfig,
    ShardSpec,
    WorkerLostError,
    owners,
    partition,
    shard_of,
)
from repro.runtime.config import BACKEND_ENV
from repro.serving import wire
from repro.workflow.enactor import Enactor


def assert_byte_equal(outcome, oracle) -> None:
    """Outcome == oracle down to wire bytes: items, terms, groups."""
    assert list(outcome.items) == list(oracle.items)
    assert wire.encode_typed_map(outcome.annotation_map) == \
        wire.encode_typed_map(oracle.annotation_map)
    assert outcome.groups == oracle.groups


def small_world(seed: int, *, crash=None, n_proteins: int = 12):
    """A compact scenario plus a framework wired to its results."""
    scenario = ProteomicsScenario.generate(
        seed=seed, n_proteins=n_proteins, n_spots=2
    )
    results = ImprintResultSet(scenario.identify_all())
    framework = QuratorFramework()
    framework.register_standard_services()
    holder = ResultSetHolder()
    annotator = (
        crash(holder) if crash is not None else LiveImprintAnnotator(holder)
    )
    framework.deploy_annotation_service("ImprintOutputAnnotator", annotator)
    holder.set(results)
    return framework, results


def serial_oracle(seed: int, items=None):
    """The single-process answer for one seed's whole result set."""
    framework, results = small_world(seed)
    view = framework.quality_view(example_quality_view_xml())
    return view.run(
        items if items is not None else results.items(), enactor=Enactor()
    )


class TestShardRouting:
    """Hash routing must be a pure function of (data_id, shards)."""

    # Frozen BLAKE2b-based assignments: any change here silently splits
    # annotation partitions written by earlier runs of the repository.
    FROZEN = {
        "urn:item:1": {1: 0, 2: 1, 3: 1, 4: 3, 8: 3},
        "urn:item:2": {1: 0, 2: 1, 3: 1, 4: 1, 8: 1},
        "lsid:imprint:spot:0007": {1: 0, 2: 1, 3: 2, 4: 1, 8: 5},
        "http://example.org/protein/P12345": {1: 0, 2: 1, 3: 1, 4: 3, 8: 3},
        "": {1: 0, 2: 0, 3: 0, 4: 0, 8: 4},
    }

    def test_assignment_is_frozen_across_runs(self):
        for data_id, expected in self.FROZEN.items():
            for shards, shard in expected.items():
                assert shard_of(data_id, shards) == shard

    @pytest.mark.parametrize("shards", range(1, 9))
    def test_partition_covers_and_preserves_order(self, result_set, shards):
        items = result_set.items()
        buckets = partition(items, shards)
        assert len(buckets) == shards
        # Exactly-once coverage, each item in its owning bucket.
        flat = [item for bucket in buckets for item in bucket]
        assert sorted(flat) == sorted(items)
        for index, bucket in enumerate(buckets):
            for item in bucket:
                assert shard_of(str(item), shards) == index
        # Relative dataset order survives within every bucket.
        position = {item: rank for rank, item in enumerate(items)}
        for bucket in buckets:
            ranks = [position[item] for item in bucket]
            assert ranks == sorted(ranks)

    @pytest.mark.parametrize("shards", range(1, 9))
    def test_assignment_identical_across_calls(self, result_set, shards):
        items = result_set.items()
        assert owners(items, shards) == owners(list(items), shards)
        assert partition(items, shards) == partition(list(items), shards)

    def test_shard_spec_owns_matches_routing(self, result_set):
        specs = [ShardSpec(index, 4) for index in range(4)]
        for item in result_set.items():
            owning = [spec.index for spec in specs if spec.owns(str(item))]
            assert owning == [shard_of(str(item), 4)]


class TestShardGuard:
    """Workers fail loudly on writes to a partition they don't own."""

    def test_store_rejects_foreign_item(self, framework):
        framework.repositories.configure_shard(ShardSpec(0, 4))
        foreign = next(
            URIRef(f"urn:test:item:{index}")
            for index in range(64)
            if shard_of(f"urn:test:item:{index}", 4) != 0
        )
        with pytest.raises(ValueError, match="does not own"):
            framework.cache.annotate(foreign, Q.HitRatio, 0.5)

    def test_guard_applies_to_future_stores(self, framework):
        framework.repositories.configure_shard(ShardSpec(1, 4))
        store = framework.repositories.get_or_create("late", persistent=False)
        owned = next(
            URIRef(f"urn:test:item:{index}")
            for index in range(64)
            if shard_of(f"urn:test:item:{index}", 4) == 1
        )
        store.annotate(owned, Q.HitRatio, 0.5)
        foreign = next(
            URIRef(f"urn:test:item:{index}")
            for index in range(64)
            if shard_of(f"urn:test:item:{index}", 4) != 1
        )
        with pytest.raises(ValueError, match="shard 1 of 4"):
            store.annotate(foreign, Q.HitRatio, 0.5)
        framework.repositories.configure_shard(None)
        store.annotate(foreign, Q.HitRatio, 0.5)


@pytest.fixture(scope="module")
def qv_world(scenario, result_set):
    framework, holder = setup_framework(scenario)
    holder.set(result_set)
    view = framework.quality_view(example_quality_view_xml())
    view.compile()
    return framework, view, result_set


class TestDifferential:
    """Process backend vs the serial enactor (and the thread backend)."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_byte_equal_to_serial_across_shards(self, qv_world, shards):
        framework, view, results = qv_world
        items = results.items()
        framework.repositories.clear_transient()
        oracle = view.run(items, enactor=Enactor(), clear_cache=False)
        with framework.runtime(
            backend="process", shards=shards, chunk_size=16
        ) as service:
            outcome = service.submit(view, items, clear_cache=True).result(60)
        assert_byte_equal(outcome, oracle)

    def test_byte_equal_to_thread_backend(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        with framework.runtime(backend="thread", workers=2) as service:
            threaded = service.submit(view, items, clear_cache=True).result(60)
        with framework.runtime(backend="process", shards=3) as service:
            processed = service.submit(view, items, clear_cache=True).result(60)
        assert_byte_equal(processed, threaded)

    def test_submit_many_matches_per_dataset_oracles(
        self, qv_world, imprint_runs
    ):
        framework, view, results = qv_world
        datasets = [
            results.items_of_run(run.run_id) for run in imprint_runs[:3]
        ]
        oracles = []
        for dataset in datasets:
            framework.repositories.clear_transient()
            oracles.append(view.run(dataset, enactor=Enactor(),
                                    clear_cache=False))
        with framework.runtime(backend="process", shards=2) as service:
            batch = service.submit_many(view, datasets)
            assert batch.wait(60)
            for handle, oracle in zip(batch, oracles):
                assert_byte_equal(handle.result(), oracle)
            snap = service.snapshot()
        assert snap.completed == len(datasets)
        assert snap.failed == 0

    def test_empty_dataset(self, qv_world):
        framework, view, _ = qv_world
        framework.repositories.clear_transient()
        oracle = view.run([], enactor=Enactor(), clear_cache=False)
        with framework.runtime(backend="process", shards=2) as service:
            outcome = service.submit(view, [], clear_cache=True).result(30)
        assert_byte_equal(outcome, oracle)

    def test_cache_metrics_match_thread_backend(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        with framework.runtime(backend="thread", workers=1) as service:
            reference = service.submit(view, items, clear_cache=True)
            reference.wait(60)
        with framework.runtime(backend="process", shards=2) as service:
            handle = service.submit(view, items, clear_cache=True)
            handle.wait(60)
        assert handle.metrics.cache_lookups > 0
        assert handle.metrics.cache_lookups == reference.metrics.cache_lookups
        assert handle.metrics.cache_hits == reference.metrics.cache_hits


FAST_SEEDS = range(6)
ALL_SEEDS = range(50)


def _differential_one_seed(seed: int, shards: int) -> None:
    oracle = serial_oracle(seed)
    framework, results = small_world(seed)
    view = framework.quality_view(example_quality_view_xml())
    with framework.runtime(
        backend="process", shards=shards, chunk_size=8
    ) as service:
        outcome = service.submit(
            view, results.items(), clear_cache=True
        ).result(60)
    assert_byte_equal(outcome, oracle)


class TestMultiSeedDifferential:
    """Seed sweeps: fresh scenario + framework per seed."""

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_seeds_fast(self, seed):
        _differential_one_seed(seed, shards=2)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", ALL_SEEDS)
    def test_seeds_full(self, seed):
        _differential_one_seed(seed, shards=1 + seed % 4)


class TestFaultInjectionDifferential:
    """Injected service faults + worker-side retries stay byte-equal."""

    def _run(self, seed: int) -> None:
        from repro.resilience import FaultInjector, ResilienceConfig

        oracle = serial_oracle(seed)
        framework, results = small_world(seed)
        injector = FaultInjector(seed=seed)
        injector.plan_all(fault_rate=0.2)
        injector.attach_registry(framework.services)
        resilience = ResilienceConfig(max_attempts=4, jitter_seed=seed)
        with framework.runtime(
            backend="process", shards=2, chunk_size=8,
            resilience=resilience, job_retries=2,
        ) as service:
            outcome = service.submit(
                view := framework.quality_view(example_quality_view_xml()),
                results.items(), clear_cache=True,
            ).result(60)
            del view
        assert_byte_equal(outcome, oracle)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_faults_fast(self, seed):
        self._run(seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(10))
    def test_faults_full(self, seed):
        self._run(seed)


class _CrashingAnnotator(LiveImprintAnnotator):
    """Kills its worker process; optionally only the first time ever."""

    flag_path: str = ""
    once: bool = False

    def annotate(self, items, evidence_types, context=None):
        if not self.once or not os.path.exists(self.flag_path):
            if self.once:
                open(self.flag_path, "w").close()
            os._exit(13)
        return super().annotate(items, evidence_types, context)


class TestWorkerLoss:
    """Crash containment: dead letters, events, retry recovery."""

    def _crash_world(self, tmp_path, once: bool):
        flag = str(tmp_path / "crashed-once")

        class Crash(_CrashingAnnotator):
            pass

        Crash.flag_path = flag
        Crash.once = once
        return small_world(21, crash=Crash)

    def test_permanent_crash_dead_letters_with_cause(self, tmp_path):
        from repro.observability.events import RingBufferSink

        ring = RingBufferSink()
        get_event_log().add_sink(ring)
        framework, results = self._crash_world(tmp_path, once=False)
        view = framework.quality_view(example_quality_view_xml())
        with framework.runtime(backend="process", shards=2) as service:
            handle = service.submit(view, results.items())
            assert handle.wait(60), "job never finished"
            error = handle.exception()
            assert isinstance(error, WorkerLostError)
            details = error.details()
            assert details["reason"] == "worker_lost"
            assert details["exitcode"] == 13
            assert details["shard"] in (0, 1)
            assert service.dead_letters == [handle]
            assert service.snapshot().dead_lettered == 1
        try:
            events = [
                event for event in ring.events()
                if event.get("event") == "runtime.worker_lost"
            ]
            assert events, "no runtime.worker_lost event emitted"
            assert events[-1]["exitcode"] == 13
            assert events[-1]["shard"] in (0, 1)
        finally:
            get_event_log().remove_sink(ring)

    def test_crash_once_recovers_byte_equal(self, tmp_path):
        oracle = serial_oracle(21)
        framework, results = self._crash_world(tmp_path, once=True)
        view = framework.quality_view(example_quality_view_xml())
        with framework.runtime(
            backend="process", shards=2, job_retries=3
        ) as service:
            handle = service.submit(view, results.items(), clear_cache=True)
            outcome = handle.result(timeout=90)
        assert handle.metrics.retries >= 1
        assert_byte_equal(outcome, oracle)


class TestServiceContract:
    """Admission and lifecycle parity with the thread backend."""

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        framework, _ = small_world(2, n_proteins=4)
        service = framework.runtime(shards=2)
        try:
            assert isinstance(service, ProcessExecutionService)
        finally:
            service.shutdown()

    def test_closed_service_rejects_submissions(self):
        framework, results = small_world(2, n_proteins=4)
        view = framework.quality_view(example_quality_view_xml())
        service = framework.runtime(backend="process", shards=2)
        service.shutdown()
        assert service.closed
        with pytest.raises(RuntimeClosedError):
            service.submit(view, results.items())

    def test_submit_workflow_unsupported(self):
        framework, _ = small_world(2, n_proteins=4)
        with framework.runtime(backend="process", shards=2) as service:
            with pytest.raises(NotImplementedError, match="process backend"):
                service.submit_workflow(object())

    def test_config_round_trip(self):
        config = RuntimeConfig(backend="process", shards=3).validated()
        assert config.effective_shards() == 3
        assert RuntimeConfig(
            backend="process", workers=5
        ).effective_shards() == 5
        with pytest.raises(ValueError, match="shards"):
            RuntimeConfig(shards=-1).validated()
