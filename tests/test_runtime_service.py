"""The execution service: queueing, backpressure, metrics, stress."""

from __future__ import annotations

import threading

import pytest

from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.rdf import Graph, Q, RDF, URIRef
from repro.runtime import (
    JobCancelledError,
    JobStatus,
    QueueFullError,
    RuntimeClosedError,
    RuntimeConfig,
)
from repro.workflow.enactor import Enactor
from repro.workflow.model import Port, Workflow
from repro.workflow.processors import PythonProcessor


@pytest.fixture(scope="module")
def qv_world(scenario, result_set):
    framework, holder = setup_framework(scenario)
    holder.set(result_set)
    view = framework.quality_view(example_quality_view_xml())
    view.compile()
    return framework, view, result_set


def _blocking_workflow(gate: threading.Event, started: threading.Event) -> Workflow:
    """A one-processor workflow that parks on ``gate`` when fired."""
    workflow = Workflow("blocker")
    workflow.add_input("x")
    workflow.add_output("y")

    def hold(x):
        started.set()
        assert gate.wait(10), "test gate never opened"
        return x

    workflow.add_processor(
        PythonProcessor(
            "hold", hold, input_ports={"x": 0}, output_ports={"out": 0}
        )
    )
    workflow.connect("", "x", "hold", "x")
    workflow.link(Port("hold", "out"), Port("", "y"))
    return workflow


class TestSubmission:
    def test_submit_matches_direct_run(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        framework.repositories.clear_transient()
        direct = view.run(items, enactor=Enactor(), clear_cache=False)
        with framework.runtime(workers=2) as service:
            handle = service.submit(view, items, clear_cache=True)
            outcome = handle.result(timeout=30)
        assert outcome.groups == direct.groups
        assert outcome.annotation_map == direct.annotation_map
        assert handle.status is JobStatus.SUCCEEDED

    def test_submit_many_shares_compilation(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        compiled_before = view.compile()
        with framework.runtime(workers=4) as service:
            batch = service.submit_many(
                view, [items[: len(items) // 2], items[len(items) // 2:]]
            )
            outcomes = batch.results(timeout=30)
        assert view.compile() is compiled_before
        assert len(outcomes) == 2
        # the two half-datasets partition the full item set
        assert sum(len(o.items) for o in outcomes) == len(items)

    def test_job_failure_surfaces_on_handle(self, qv_world):
        framework, _, __ = qv_world
        workflow = Workflow("fails")
        workflow.add_input("x")
        workflow.add_output("y")

        def boom(x):
            raise ValueError("job deliberately failed")

        workflow.add_processor(
            PythonProcessor(
                "bad", boom, input_ports={"x": 0}, output_ports={"out": 0}
            )
        )
        workflow.connect("", "x", "bad", "x")
        workflow.link(Port("bad", "out"), Port("", "y"))
        with framework.runtime(workers=1) as service:
            handle = service.submit_workflow(workflow, {"x": 1})
            assert handle.wait(10)
            assert handle.status is JobStatus.FAILED
            with pytest.raises(Exception, match="job deliberately failed"):
                handle.result()
            snap = service.snapshot()
        assert snap.failed == 1
        assert snap.completed == 0

    def test_metrics_populated(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        with framework.runtime(workers=1) as service:
            handle = service.submit(view, items, clear_cache=True)
            outcome = handle.result(timeout=30)
        metrics = handle.metrics
        assert outcome.metrics is metrics
        assert metrics.queue_wait is not None and metrics.queue_wait >= 0
        assert metrics.run_seconds is not None and metrics.run_seconds > 0
        # the Fig. 6 pipeline fired: annotator, DE, 3 QAs, consolidate, action
        assert "DataEnrichment" in metrics.processor_seconds
        assert len(metrics.processor_seconds) == 7
        assert metrics.iterations >= 7
        # DE read the cache repository the annotator just filled
        assert metrics.cache_lookups > 0
        assert metrics.cache_hits > 0


class TestAdmissionControl:
    def test_reject_policy_raises_when_full(self, qv_world):
        framework, _, __ = qv_world
        gate, started = threading.Event(), threading.Event()
        workflow = _blocking_workflow(gate, started)
        service = framework.runtime(
            workers=1, queue_size=1, queue_policy="reject"
        )
        try:
            running = service.submit_workflow(workflow, {"x": 1})
            assert started.wait(10)  # worker busy
            queued = service.submit_workflow(workflow, {"x": 2})
            with pytest.raises(QueueFullError):
                service.submit_workflow(workflow, {"x": 3})
            assert service.snapshot().rejected == 1
            gate.set()
            assert running.result(10) == {"y": 1}
            assert queued.result(10) == {"y": 2}
        finally:
            gate.set()
            service.shutdown()
        snap = service.snapshot()
        assert snap.completed == 2
        assert snap.rejected == 1

    def test_cancel_queued_job(self, qv_world):
        framework, _, __ = qv_world
        gate, started = threading.Event(), threading.Event()
        workflow = _blocking_workflow(gate, started)
        service = framework.runtime(workers=1)
        try:
            running = service.submit_workflow(workflow, {"x": 1})
            assert started.wait(10)
            queued = service.submit_workflow(workflow, {"x": 2})
            assert queued.cancel()
            assert queued.status is JobStatus.CANCELLED
            with pytest.raises(JobCancelledError):
                queued.result(10)
            # a running job cannot be cancelled
            assert not running.cancel()
            gate.set()
            assert running.result(10) == {"y": 1}
        finally:
            gate.set()
            service.shutdown()
        assert service.snapshot().cancelled == 1

    def test_closed_service_rejects_submission(self, qv_world):
        framework, view, results = qv_world
        service = framework.runtime(workers=1)
        service.shutdown()
        assert service.closed
        with pytest.raises(RuntimeClosedError):
            service.submit(view, results.items())

    def test_shutdown_without_drain_cancels_queued(self, qv_world):
        framework, _, __ = qv_world
        gate, started = threading.Event(), threading.Event()
        workflow = _blocking_workflow(gate, started)
        service = framework.runtime(workers=1)
        running = service.submit_workflow(workflow, {"x": 1})
        assert started.wait(10)
        queued = service.submit_workflow(workflow, {"x": 2})
        gate.set()
        service.shutdown(drain=False)
        assert running.result(10) == {"y": 1}
        assert queued.status is JobStatus.CANCELLED

    def test_drain_waits_for_all_jobs(self, qv_world):
        framework, view, results = qv_world
        items = results.items()
        service = framework.runtime(workers=2)
        try:
            batch = service.submit_many(
                view, [items[:4], items[4:8], items[8:12], items]
            )
            assert service.drain(timeout=60)
            assert all(handle.done() for handle in batch)
        finally:
            service.shutdown()

    def test_queue_full_error_is_machine_readable(self, qv_world):
        """Satellite: backpressure surfaces without string-parsing."""
        framework, _, __ = qv_world
        gate, started = threading.Event(), threading.Event()
        workflow = _blocking_workflow(gate, started)
        service = framework.runtime(
            workers=1, queue_size=1, queue_policy="reject"
        )
        try:
            service.submit_workflow(workflow, {"x": 1})
            assert started.wait(10)
            service.submit_workflow(workflow, {"x": 2})
            with pytest.raises(QueueFullError) as excinfo:
                service.submit_workflow(workflow, {"x": 3})
            error = excinfo.value
            assert error.reason == "queue_full"
            assert error.capacity == 1
            assert error.queue_depth == 1
            assert error.details() == {
                "reason": "queue_full",
                "queue_depth": 1,
                "capacity": 1,
            }
        finally:
            gate.set()
            service.shutdown()

    def test_queue_timeout_error_reason(self, qv_world):
        framework, _, __ = qv_world
        gate, started = threading.Event(), threading.Event()
        workflow = _blocking_workflow(gate, started)
        service = framework.runtime(
            workers=1, queue_size=1, queue_policy="block"
        )
        try:
            service.submit_workflow(workflow, {"x": 1})
            assert started.wait(10)
            service.submit_workflow(workflow, {"x": 2})
            with pytest.raises(QueueFullError) as excinfo:
                service.submit_workflow(workflow, {"x": 3}, timeout=0.05)
            assert excinfo.value.reason == "queue_timeout"
            assert excinfo.value.details()["capacity"] == 1
        finally:
            gate.set()
            service.shutdown()

    def test_queue_depth_and_outstanding_hooks(self, qv_world):
        """Satellite: live depth/outstanding readings for serving."""
        framework, _, __ = qv_world
        gate, started = threading.Event(), threading.Event()
        workflow = _blocking_workflow(gate, started)
        service = framework.runtime(workers=1)
        try:
            assert service.queue_depth() == 0
            assert service.outstanding == 0
            service.submit_workflow(workflow, {"x": 1})
            assert started.wait(10)
            queued = service.submit_workflow(workflow, {"x": 2})
            assert service.queue_depth() == 1
            assert service.outstanding == 2
            gate.set()
            assert queued.result(10) == {"y": 2}
            assert service.drain(10)
            assert service.queue_depth() == 0
            assert service.outstanding == 0
        finally:
            gate.set()
            service.shutdown()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            RuntimeConfig(workers=0).validated()
        with pytest.raises(ValueError, match="queue_policy"):
            RuntimeConfig(queue_policy="drop").validated()
        with pytest.raises(ValueError, match="iteration_workers"):
            RuntimeConfig(iteration_workers=0).validated()
        assert RuntimeConfig().validated().workers == 4


class TestSnapshotUnderRaces:
    """Satellite: snapshot() stays consistent under concurrent load.

    ``in_queue = outstanding - running`` is computed from two counters
    updated by different threads; these tests pin the invariants the
    arithmetic must hold at every observable instant.
    """

    def _noop_workflow(self) -> Workflow:
        workflow = Workflow("noop")
        workflow.add_input("x")
        workflow.add_output("y")
        workflow.add_processor(
            PythonProcessor(
                "id", lambda x: x, input_ports={"x": 0}, output_ports={"out": 0}
            )
        )
        workflow.connect("", "x", "id", "x")
        workflow.link(Port("id", "out"), Port("", "y"))
        return workflow

    def test_snapshot_invariants_under_concurrent_submit_drain(self, qv_world):
        framework, _, __ = qv_world
        workflow = self._noop_workflow()
        service = framework.runtime(workers=4, queue_size=8)
        stop = threading.Event()
        violations = []

        def reader() -> None:
            while not stop.is_set():
                snap = service.snapshot()
                if snap.in_queue < 0:
                    violations.append(f"in_queue {snap.in_queue} < 0")
                if snap.running < 0 or snap.running > 4:
                    violations.append(f"running {snap.running} outside pool")
                # _outstanding increments (and a worker may even finish
                # the job) before on_submit() runs, so with a single
                # submitter every derived count may lead ``submitted``
                # by at most one in-flight job.
                if snap.in_queue + snap.running > snap.submitted + 1:
                    violations.append(
                        f"live {snap.in_queue}+{snap.running} > "
                        f"submitted {snap.submitted} + 1"
                    )
                if snap.finished > snap.submitted + 1:
                    violations.append(
                        f"finished {snap.finished} > "
                        f"submitted {snap.submitted} + 1"
                    )

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            handles = [
                service.submit_workflow(workflow, {"x": i})
                for i in range(120)
            ]
            assert service.drain(timeout=60)
        finally:
            stop.set()
            for thread in readers:
                thread.join(10)
            service.shutdown()
        assert not violations, violations[:10]
        assert all(h.result(10) == {"y": h.job_id - handles[0].job_id}
                   for h in handles)
        final = service.snapshot()
        assert final.completed == 120
        assert final.in_queue == 0
        assert final.running == 0

    def test_snapshot_in_queue_floors_at_zero_mid_transition(self, qv_world):
        """A worker can be between _try_start and on_start; the clamp
        keeps the published reading non-negative regardless."""
        framework, _, __ = qv_world
        gate, started = threading.Event(), threading.Event()
        workflow = _blocking_workflow(gate, started)
        service = framework.runtime(workers=2)
        try:
            service.submit_workflow(workflow, {"x": 1})
            assert started.wait(10)
            for _ in range(50):
                snap = service.snapshot()
                assert snap.in_queue >= 0
                assert snap.in_queue <= snap.submitted
        finally:
            gate.set()
            service.shutdown()


@pytest.mark.slow
class TestStress:
    def test_eight_concurrent_jobs_one_framework(self, qv_world):
        """≥8 QV jobs in flight against a single framework instance."""
        framework, view, results = qv_world
        datasets = [
            results.items_of_run(run_id)
            for run_id in sorted({results.run_id(i) for i in results.items()})
        ]
        # replicate the per-spot datasets until we have 16 jobs
        while len(datasets) < 16:
            datasets.append(datasets[len(datasets) % 6])

        # serial reference per dataset, one shared repository session
        framework.repositories.clear_transient()
        reference = [
            view.run(ds, enactor=Enactor(), clear_cache=False).groups
            for ds in datasets
        ]

        with framework.runtime(
            workers=8, parallel_enactment=True, enactment_workers=3
        ) as service:
            batch = service.submit_many(view, datasets)
            outcomes = batch.results(timeout=120)
            snap = service.snapshot()
        assert [o.groups for o in outcomes] == reference
        assert snap.completed == len(datasets)
        assert snap.failed == 0
        assert not batch.failures()


class TestGraphConcurrency:
    """Satellite: triple-store index updates are safe under threads."""

    def test_concurrent_adds_keep_indices_consistent(self):
        graph = Graph("stress")
        n_threads, per_thread = 8, 300
        barrier = threading.Barrier(n_threads)

        def writer(t: int) -> None:
            barrier.wait()
            for k in range(per_thread):
                node = URIRef(f"http://example.org/item/{t}/{k}")
                graph.add(node, RDF.type, Q.DataEntity)
                graph.add(node, Q.value, URIRef(f"http://example.org/v/{t}/{k}"))

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(graph) == n_threads * per_thread * 2
        # every triple is reachable through all three indices
        probe = URIRef("http://example.org/item/3/17")
        assert (probe, RDF.type, Q.DataEntity) in graph
        assert len(list(graph.triples((None, RDF.type, Q.DataEntity)))) == (
            n_threads * per_thread
        )

    def test_concurrent_duplicate_adds_count_once(self):
        graph = Graph("dupes")
        triple = (
            URIRef("http://example.org/s"),
            Q.value,
            URIRef("http://example.org/o"),
        )
        barrier = threading.Barrier(8)

        def writer() -> None:
            barrier.wait()
            for _ in range(200):
                graph.add(*triple)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(graph) == 1
