"""Tests for the service layer: messages, interfaces, registry, WSDL."""

import pytest

from repro.annotation import AnnotationMap
from repro.annotation.functions import CallableAnnotationFunction
from repro.qa import UniversalPIScoreQA
from repro.rdf import Q, URIRef
from repro.services import (
    AnnotationMapMessage,
    AnnotationService,
    DataSetMessage,
    MessageError,
    QualityAssertionService,
    ServiceFault,
    ServiceRegistry,
    wsdl_for,
)
from repro.services.wsdl import parse_wsdl

D1 = URIRef("urn:lsid:test:data:1")
D2 = URIRef("urn:lsid:test:data:2")


class TestDataSetMessage:
    def test_roundtrip(self):
        message = DataSetMessage([D1, D2])
        parsed = DataSetMessage.from_xml(message.to_xml())
        assert parsed.items == [D1, D2]

    def test_empty(self):
        assert DataSetMessage.from_xml(DataSetMessage([]).to_xml()).items == []

    def test_malformed_xml(self):
        with pytest.raises(MessageError):
            DataSetMessage.from_xml("<not closed")

    def test_wrong_root(self):
        with pytest.raises(MessageError):
            DataSetMessage.from_xml("<Other/>")


class TestAnnotationMapMessage:
    def test_roundtrip_evidence_and_tags(self):
        amap = AnnotationMap([D1, D2])
        amap.set_evidence(D1, Q.HitRatio, 0.8)
        amap.set_evidence(D1, Q.PeptidesCount, 7)
        amap.set_evidence(D2, Q.Masses, 3.5)
        amap.set_tag(D1, "ScoreClass", Q.high, syn_type=Q["class"],
                     sem_type=Q.PIScoreClassification)
        amap.set_tag(D2, "HR MC", 42.0, syn_type=Q.score)
        parsed = AnnotationMapMessage.from_xml(
            AnnotationMapMessage(amap).to_xml()
        ).amap
        assert parsed == amap
        # value types survive
        assert isinstance(parsed.get_evidence(D1, Q.PeptidesCount), int)
        assert isinstance(parsed.get_tag(D1, "ScoreClass").plain(), URIRef)

    def test_roundtrip_booleans_and_none(self):
        amap = AnnotationMap([D1])
        amap.set_evidence(D1, Q.EvidenceCode, True)
        parsed = AnnotationMapMessage.from_xml(
            AnnotationMapMessage(amap).to_xml()
        ).amap
        assert parsed.get_evidence(D1, Q.EvidenceCode) is True

    def test_items_without_annotations_survive(self):
        amap = AnnotationMap([D1, D2])
        parsed = AnnotationMapMessage.from_xml(
            AnnotationMapMessage(amap).to_xml()
        ).amap
        assert parsed.items() == [D1, D2]


class TestServices:
    def test_annotation_service_merges_evidence(self):
        fn = CallableAnnotationFunction(
            Q["Imprint-output-annotation"],
            [Q.HitRatio],
            lambda item, ctx: {Q.HitRatio: 0.6},
        )
        service = AnnotationService("ann", fn.function_class, "ep", fn)
        result = service.invoke(DataSetMessage([D1]), AnnotationMap())
        assert result.get_evidence(D1, Q.HitRatio) == 0.6

    def test_qa_service_builds_operator_from_config(self):
        service = QualityAssertionService(
            "qa", Q.UniversalPIScore, "ep", UniversalPIScoreQA
        )
        amap = AnnotationMap([D1])
        amap.set_evidence(D1, Q.HitRatio, 1.0)
        amap.set_evidence(D1, Q.Coverage, 1.0)
        result = service.invoke(
            DataSetMessage([D1]),
            amap,
            context={"name": "s", "tag_name": "T",
                     "variables": {"hitRatio": Q.HitRatio, "coverage": Q.Coverage}},
        )
        assert result.get_tag(D1, "T").plain() == 100.0

    def test_xml_invocation_path(self):
        service = QualityAssertionService(
            "qa", Q.UniversalPIScore, "ep", UniversalPIScoreQA
        )
        amap = AnnotationMap([D1])
        amap.set_evidence(D1, Q.HitRatio, 0.5)
        amap.set_evidence(D1, Q.Coverage, 0.5)
        out_xml = service.invoke_xml(
            DataSetMessage([D1]).to_xml(), AnnotationMapMessage(amap).to_xml()
        )
        out = AnnotationMapMessage.from_xml(out_xml).amap
        assert out.get_tag(D1, "HR MC").plain() == 50.0

    def test_xml_invocation_wraps_errors_as_faults(self):
        service = QualityAssertionService(
            "qa", Q.UniversalPIScore, "ep", UniversalPIScoreQA
        )
        with pytest.raises(ServiceFault):
            service.invoke_xml("<bad", "<AnnotationMap/>")


class TestRegistry:
    def make_service(self, name, concept=Q.UniversalPIScore):
        return QualityAssertionService(name, concept, "", UniversalPIScoreQA)

    def test_deploy_assigns_endpoint(self):
        registry = ServiceRegistry()
        endpoint = registry.deploy(self.make_service("svc"))
        assert endpoint.endswith("/svc")
        assert registry.by_endpoint(endpoint).name == "svc"

    def test_duplicate_name_rejected(self):
        registry = ServiceRegistry()
        registry.deploy(self.make_service("svc"))
        with pytest.raises(ValueError):
            registry.deploy(self.make_service("svc"))

    def test_lookup_by_concept(self):
        registry = ServiceRegistry()
        registry.deploy(self.make_service("svc"))
        assert registry.resolve_concept(Q.UniversalPIScore).name == "svc"

    def test_ambiguous_concept_raises(self):
        registry = ServiceRegistry()
        registry.deploy(self.make_service("a"))
        registry.deploy(self.make_service("b"))
        with pytest.raises(KeyError, match="several services"):
            registry.resolve_concept(Q.UniversalPIScore)

    def test_unknown_name_raises_with_catalogue(self):
        registry = ServiceRegistry()
        with pytest.raises(KeyError):
            registry.by_name("ghost")

    def test_undeploy(self):
        registry = ServiceRegistry()
        registry.deploy(self.make_service("svc"))
        registry.undeploy("svc")
        assert "svc" not in registry
        assert registry.by_concept(Q.UniversalPIScore) == []


class TestWSDL:
    def test_wsdl_roundtrip(self):
        registry = ServiceRegistry()
        service = QualityAssertionService(
            "MyQA", Q.UniversalPIScore2, "", UniversalPIScoreQA
        )
        registry.deploy(service)
        descriptor = parse_wsdl(wsdl_for(service))
        assert descriptor["name"] == "MyQA"
        assert descriptor["endpoint"] == service.endpoint
        assert descriptor["concept"] == str(Q.UniversalPIScore2)

    def test_wsdl_index_covers_all_services(self):
        registry = ServiceRegistry()
        registry.deploy(self.make_service("a"))
        registry.deploy(self.make_service("b"))
        assert len(registry.wsdl_index()) == 2

    make_service = TestRegistry.make_service
