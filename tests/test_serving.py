"""The multi-tenant serving tier: HTTP surface, plan sharing, quotas.

The acceptance scenario of the serving subsystem lives here: two
tenants register the same view spec, the fingerprint-keyed plan cache
compiles exactly once, every tenant's served enactment is byte-equal
to a direct :class:`ExecutionService` run, and one tenant exhausting
its quota answers 429 + ``Retry-After`` while the other keeps being
served.  A fast smoke test (register -> enact -> scrape ``/metrics``)
doubles as the CI serving gate.
"""

from __future__ import annotations

import json
import threading
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro.core.ispider import example_quality_view_xml, setup_framework
from repro.serving import (
    PlanCache,
    QualityViewServer,
    QuotaManager,
    ServingConfig,
    TokenBucket,
    ViewRegistry,
    WireError,
    wire,
)


@pytest.fixture(scope="module")
def serving_world(scenario, result_set):
    """A deployed framework + dataset catalog shared by this module.

    Module-scoped because ``setup_framework`` deploys services and the
    tests below treat the framework as read-only apart from view
    registrations (each server owns its own registry and plan cache).
    """
    framework, holder = setup_framework(scenario)
    holder.set(result_set)
    run_ids = sorted({result_set.run_id(item) for item in result_set.items()})
    datasets = {
        run_id: result_set.items_of_run(run_id) for run_id in run_ids
    }
    return framework, datasets, example_quality_view_xml()


def _request(url, method="GET", body=None, headers=None):
    """(status, parsed-or-text body, headers) for one HTTP exchange."""
    request = Request(url, data=body, method=method)
    for header, value in (headers or {}).items():
        request.add_header(header, value)
    try:
        with urlopen(request, timeout=60) as response:
            raw = response.read()
            status, response_headers = response.status, dict(response.headers)
    except HTTPError as error:
        raw = error.read()
        status, response_headers = error.code, dict(error.headers)
    text = raw.decode("utf-8")
    try:
        return status, json.loads(text), response_headers
    except json.JSONDecodeError:
        return status, text, response_headers


@pytest.fixture()
def server(serving_world):
    """One running server on an ephemeral port (quotas generous)."""
    framework, datasets, _ = serving_world
    runtime = framework.runtime(
        workers=2, queue_size=16, queue_policy="reject", name="serving-test"
    )
    config = ServingConfig(port=0, quota_rate=1000.0, quota_burst=1000.0)
    with QualityViewServer(
        framework, runtime, config=config, datasets=datasets
    ) as running:
        running.serve_in_background()
        yield running
    runtime.shutdown(drain=True)


class TestEndToEndServing:
    def test_two_tenants_one_compilation_byte_equal_results_quota_isolation(
        self, server, serving_world
    ):
        framework, datasets, xml = serving_world
        base = server.url
        dataset_name = sorted(datasets)[0]
        xml_headers = {"Content-Type": "application/xml"}

        # -- two tenants register the *same* view spec -------------------
        status, alice_doc, _ = _request(
            f"{base}/views/qv-alice", "PUT", xml.encode("utf-8"),
            {**xml_headers, "X-Tenant": "alice"},
        )
        assert status == 201
        assert alice_doc["plan_cache"] == "miss"
        status, bob_doc, _ = _request(
            f"{base}/views/qv-bob", "PUT", xml.encode("utf-8"),
            {**xml_headers, "X-Tenant": "bob"},
        )
        assert status == 201
        assert bob_doc["plan_cache"] == "hit"
        assert bob_doc["fingerprint"] == alice_doc["fingerprint"]

        # exactly one compilation, observable both in the registration
        # response and in the cache-hit metric counters
        stats = bob_doc["plan_cache_stats"]
        assert stats["compilations"] == 1
        assert stats["hits"] >= 1
        assert server.plan_cache.stats()["compilations"] == 1

        # -- both tenants' enactments are byte-equal to a direct run -----
        served = {}
        for tenant, view_name in (("alice", "qv-alice"), ("bob", "qv-bob")):
            status, document, _ = _request(
                f"{base}/views/{view_name}/enact", "POST",
                wire.dumps({"dataset": dataset_name, "wait": True}),
                {"X-Tenant": tenant},
            )
            assert status == 200, document
            assert document["job"]["status"] == "succeeded"
            assert document["job"]["tenant"] == tenant
            served[tenant] = wire.dumps(document["result"])

        view = framework.quality_view(xml)
        with framework.runtime(workers=2, name="direct") as direct:
            handle = direct.submit(
                view, datasets[dataset_name], clear_cache=False
            )
            direct_bytes = wire.dumps(wire.encode_result(handle.result(60)))
        assert served["alice"] == direct_bytes
        assert served["bob"] == direct_bytes

        # the direct run reused the same cached plan: still 1 compilation
        assert server.plan_cache.stats()["compilations"] == 1

        # -- quota exhaustion is per-tenant ------------------------------
        server.quotas.configure("alice", rate=0.001, burst=2.0)
        item = str(datasets[dataset_name][0])
        flood_body = wire.dumps({"items": [item]})
        statuses = []
        retry_after = None
        for _ in range(5):
            status, document, headers = _request(
                f"{base}/views/qv-alice/enact", "POST", flood_body,
                {"X-Tenant": "alice"},
            )
            statuses.append(status)
            if status == 429:
                assert document["error"] == "quota_exhausted"
                assert document["tenant"] == "alice"
                retry_after = headers.get("Retry-After")
        assert statuses == [202, 202, 429, 429, 429]
        assert retry_after is not None and int(retry_after) >= 1

        # ...while the other tenant keeps being served
        status, document, _ = _request(
            f"{base}/views/qv-bob/enact", "POST",
            wire.dumps({"items": [item], "wait": True}),
            {"X-Tenant": "bob"},
        )
        assert status == 200, document

    def test_smoke_register_enact_scrape(self, server, serving_world):
        """The CI smoke path: ephemeral port, register, enact, scrape."""
        _, datasets, xml = serving_world
        base = server.url
        status, _, _ = _request(
            f"{base}/views/smoke", "PUT", xml.encode("utf-8"),
            {"Content-Type": "application/xml"},
        )
        assert status == 201
        status, document, _ = _request(
            f"{base}/views/smoke/enact", "POST",
            wire.dumps({"dataset": sorted(datasets)[0], "wait": True}),
        )
        assert status == 200
        assert document["result"]["surviving"]

        status, scrape, _ = _request(f"{base}/metrics")
        assert status == 200
        assert "repro_serving_http_requests_total" in scrape
        assert "repro_serving_plan_cache_hits_total" in scrape
        assert "repro_serving_enactments_total" in scrape

        status, health, _ = _request(f"{base}/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["queue_depth"] >= 0
        assert "breakers" in health

        status, telemetry, _ = _request(f"{base}/metrics.json")
        assert status == 200
        assert telemetry["serving"]["plan_cache"]["entries"] >= 1


class TestDispatch:
    """Route behaviour driven through ``dispatch`` (no socket)."""

    @pytest.fixture()
    def app(self, serving_world):
        framework, datasets, xml = serving_world
        runtime = framework.runtime(
            workers=2, queue_size=8, queue_policy="reject", name="dispatch"
        )
        server = QualityViewServer(
            framework,
            runtime,
            config=ServingConfig(port=0, quota_rate=None),
            datasets=datasets,
        )
        yield server, xml, sorted(datasets)[0]
        runtime.shutdown(drain=True)

    @staticmethod
    def _call(server, method, path, body=b"", headers=None):
        status, _, payload, extra = server.dispatch(
            method, path, body, headers or {}
        )
        return status, json.loads(payload), extra

    def test_unknown_route_lists_the_surface(self, app):
        server, _, _ = app
        status, document, _ = self._call(server, "GET", "/nope")
        assert status == 404
        assert document["error"] == "no_such_route"
        assert "POST /views/{name}/enact" in document["routes"]

    def test_enact_unknown_view_404(self, app):
        server, _, dataset = app
        status, document, _ = self._call(
            server, "POST", "/views/ghost/enact",
            wire.dumps({"dataset": dataset}),
        )
        assert status == 404
        assert document["error"] == "unknown_view"

    def test_register_invalid_view_422(self, app):
        server, _, _ = app
        bad = "<QualityView name='broken'><Nope/></QualityView>"
        status, document, _ = self._call(
            server, "PUT", "/views/broken", bad.encode("utf-8"),
            {"Content-Type": "application/xml"},
        )
        assert status == 422
        assert document["error"] == "invalid_view"

    def test_malformed_json_body_400(self, app):
        server, xml, _ = app
        self._call(
            server, "PUT", "/views/v", xml.encode("utf-8"),
            {"Content-Type": "application/xml"},
        )
        status, document, _ = self._call(
            server, "POST", "/views/v/enact", b"{nope"
        )
        assert status == 400
        assert document["error"] == "bad_request"

    def test_enact_needs_exactly_one_data_source(self, app):
        server, xml, dataset = app
        self._call(
            server, "PUT", "/views/v2", xml.encode("utf-8"),
            {"Content-Type": "application/xml"},
        )
        status, _, _ = self._call(
            server, "POST", "/views/v2/enact",
            wire.dumps({"dataset": dataset, "items": []}),
        )
        assert status == 400
        status, document, _ = self._call(
            server, "POST", "/views/v2/enact",
            wire.dumps({"dataset": "no-such-run"}),
        )
        assert status == 404
        assert "no-such-run" in document["message"]

    def test_job_lifecycle_endpoints(self, app):
        server, xml, dataset = app
        self._call(
            server, "PUT", "/views/jobs-view", xml.encode("utf-8"),
            {"Content-Type": "application/xml"},
        )
        status, accepted, _ = self._call(
            server, "POST", "/views/jobs-view/enact",
            wire.dumps({"dataset": dataset}),
        )
        assert status == 202
        job_id = accepted["job"]["job_id"]
        assert accepted["links"]["result"] == f"/jobs/{job_id}/result"

        record = server._jobs[job_id]
        assert record.handle.wait(30)
        status, document, _ = self._call(server, "GET", f"/jobs/{job_id}")
        assert status == 200
        assert document["status"] == "succeeded"
        status, document, _ = self._call(
            server, "GET", f"/jobs/{job_id}/result"
        )
        assert status == 200
        assert document["result"]["view"]
        status, document, _ = self._call(server, "GET", "/jobs/999999")
        assert status == 404
        assert document["error"] == "unknown_job"
        status, document, _ = self._call(server, "GET", "/jobs")
        assert any(j["job_id"] == job_id for j in document["jobs"])

    def test_view_listing_and_unregistration(self, app):
        server, xml, _ = app
        self._call(
            server, "PUT", "/views/gone", xml.encode("utf-8"),
            {"Content-Type": "application/xml"},
        )
        status, document, _ = self._call(server, "GET", "/views/gone")
        assert status == 200 and document["name"] == "gone"
        status, document, _ = self._call(server, "DELETE", "/views/gone")
        assert status == 200 and document["deleted"] == "gone"
        status, _, _ = self._call(server, "DELETE", "/views/gone")
        assert status == 404

    def test_datasets_and_deadletters_endpoints(self, app):
        server, _, dataset = app
        status, document, _ = self._call(server, "GET", "/datasets")
        assert status == 200
        assert document["datasets"][dataset]["items"] > 0
        status, document, _ = self._call(server, "GET", "/deadletters")
        assert status == 200
        assert document["deadletters"] == []


class TestPlanCache:
    def test_lru_eviction_and_stats(self):
        cache = PlanCache(capacity=2)
        built = []

        def compiler(tag):
            def build():
                built.append(tag)
                return f"plan-{tag}"
            return build

        assert cache.get_or_compile("a", compiler("a")) == "plan-a"
        assert cache.get_or_compile("a", compiler("a")) == "plan-a"
        assert cache.get_or_compile("b", compiler("b")) == "plan-b"
        assert cache.get_or_compile("c", compiler("c")) == "plan-c"  # evicts a
        assert built == ["a", "b", "c"]
        assert not cache.contains("a") and cache.contains("c")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["compilations"] == 3
        assert stats["evictions"] == 1
        assert len(cache) == 2

    def test_concurrent_same_fingerprint_compiles_once(self):
        cache = PlanCache(capacity=4)
        compiled = []
        barrier = threading.Barrier(8)

        def build():
            compiled.append(1)
            return object()

        results = [None] * 8

        def worker(index):
            barrier.wait()
            results[index] = cache.get_or_compile("same", build)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert len(compiled) == 1  # single-flight: one compilation total
        assert all(result is results[0] for result in results)


class TestQuotas:
    def test_token_bucket_refills_on_a_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        allowed, retry_after, _ = bucket.try_acquire()
        assert not allowed
        assert retry_after == pytest.approx(0.5)
        now[0] += 0.5  # exactly one token refilled
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_manager_isolates_tenants_and_reports_them(self):
        now = [0.0]
        quotas = QuotaManager(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert quotas.check("a").allowed
        refused = quotas.check("a")
        assert not refused.allowed
        assert refused.retry_after_header() == "1"
        assert quotas.check("b").allowed  # b has its own bucket
        assert set(quotas.tenants()) == {"a", "b"}

    def test_disabled_manager_always_allows(self):
        quotas = QuotaManager(rate=None)
        assert all(quotas.check("anyone").allowed for _ in range(100))
        assert not quotas.enabled


class TestServingConfig:
    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            ServingConfig(port=-1).validated()
        with pytest.raises(ValueError):
            ServingConfig(quota_rate=0).validated()
        with pytest.raises(ValueError):
            ServingConfig(plan_cache_size=0).validated()
        with pytest.raises(ValueError):
            ServingConfig(wait_timeout=0).validated()

    def test_overrides_revalidate(self):
        config = ServingConfig().with_overrides(port=0, quota_rate=None)
        assert config.port == 0 and config.quota_rate is None
        with pytest.raises(ValueError):
            config.with_overrides(job_history=0)


class TestWire:
    def test_dumps_is_deterministic(self):
        left = wire.dumps({"b": 2, "a": {"d": [1, 2], "c": 1}})
        right = wire.dumps({"a": {"c": 1, "d": [1, 2]}, "b": 2})
        assert left == right

    def test_decode_registration_accepts_xml_and_json_wrapper(self):
        assert wire.decode_view_registration(
            b"<QualityView/>", "application/xml"
        ) == "<QualityView/>"
        assert wire.decode_view_registration(
            json.dumps({"xml": "<QualityView/>"}).encode("utf-8"),
            "application/json",
        ) == "<QualityView/>"
        with pytest.raises(WireError):
            wire.decode_view_registration(b'{"not_xml": 1}', "application/json")
