"""Tests for the SPARQL engine: parsing, evaluation, modifiers."""

import pytest

from repro.rdf import Graph, Literal, Namespace, Q, RDF, URIRef, Variable
from repro.rdf.sparql import SPARQLSyntaxError, evaluate, parse_query

EX = Namespace("http://example.org/")

PREFIXES = """
PREFIX ex: <http://example.org/>
PREFIX q: <http://qurator.org/iq#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
"""


@pytest.fixture()
def graph():
    g = Graph()
    for i, (hr, label) in enumerate(
        [(0.9, "high"), (0.5, "mid"), (0.1, "low")], start=1
    ):
        d = EX[f"d{i}"]
        e = EX[f"e{i}"]
        g.add(d, RDF.type, Q.ImprintHitEntry)
        g.add(d, Q["contains-evidence"], e)
        g.add(e, RDF.type, Q.HitRatio)
        g.add(e, Q.value, Literal(hr))
        g.add(d, EX.label, Literal(label))
    g.add(EX.d1, EX.special, Literal(True))
    return g


class TestSelect:
    def test_basic_bgp(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE { ?d rdf:type q:ImprintHitEntry }
        """)
        assert len(res) == 3
        assert {row[0] for row in res} == {EX.d1, EX.d2, EX.d3}

    def test_join_across_patterns(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d ?v WHERE {
              ?d q:contains-evidence ?e .
              ?e q:value ?v .
            }
        """)
        assert len(res) == 3

    def test_filter_numeric(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE {
              ?d q:contains-evidence ?e . ?e q:value ?v .
              FILTER (?v > 0.4)
            }
        """)
        assert {row[0] for row in res} == {EX.d1, EX.d2}

    def test_filter_boolean_connectives(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE {
              ?d q:contains-evidence ?e . ?e q:value ?v .
              FILTER (?v > 0.4 && ?v < 0.8)
            }
        """)
        assert {row[0] for row in res} == {EX.d2}

    def test_filter_string_equality(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE { ?d ex:label ?l . FILTER (?l = "mid") }
        """)
        assert [row[0] for row in res] == [EX.d2]

    def test_semicolon_and_a_shorthand(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?e WHERE { ?e a q:HitRatio ; q:value ?v . }
        """)
        assert len(res) == 3

    def test_order_by_desc(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d ?v WHERE {
              ?d q:contains-evidence ?e . ?e q:value ?v .
            } ORDER BY DESC(?v)
        """)
        values = [row[1].value for row in res]
        assert values == sorted(values, reverse=True)

    def test_limit_offset(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d ?v WHERE {
              ?d q:contains-evidence ?e . ?e q:value ?v .
            } ORDER BY ?v LIMIT 1 OFFSET 1
        """)
        assert len(res) == 1
        assert res.rows[0][Variable("v")].value == 0.5

    def test_distinct(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT DISTINCT ?t WHERE { ?x rdf:type ?t }
        """)
        assert len(res) == 2

    def test_select_star(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT * WHERE { ?d ex:special ?s }
        """)
        assert len(res.variables) == 2

    def test_optional(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d ?s WHERE {
              ?d rdf:type q:ImprintHitEntry .
              OPTIONAL { ?d ex:special ?s }
            }
        """)
        bindings = {row[0]: row[1] for row in res}
        assert bindings[EX.d1] is not None
        assert bindings[EX.d2] is None

    def test_union(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?x WHERE {
              { ?x ex:label "high" } UNION { ?x ex:label "low" }
            }
        """)
        assert {row[0] for row in res} == {EX.d1, EX.d3}

    def test_bound_filter(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE {
              ?d rdf:type q:ImprintHitEntry .
              OPTIONAL { ?d ex:special ?s }
              FILTER (BOUND(?s))
            }
        """)
        assert [row[0] for row in res] == [EX.d1]

    def test_regex_filter(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE { ?d ex:label ?l . FILTER REGEX(?l, "^h") }
        """)
        assert [row[0] for row in res] == [EX.d1]

    def test_arithmetic_in_filter(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE {
              ?d q:contains-evidence ?e . ?e q:value ?v .
              FILTER (?v * 2 >= 1.0)
            }
        """)
        assert {row[0] for row in res} == {EX.d1, EX.d2}

    def test_type_error_in_filter_is_false(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE { ?d ex:label ?l . FILTER (?l > 5) }
        """)
        assert len(res) == 0


class TestAskAndConstruct:
    def test_ask_true(self, graph):
        assert evaluate(graph, PREFIXES + "ASK { ?d ex:special true }").boolean

    def test_ask_false(self, graph):
        res = evaluate(graph, PREFIXES + "ASK { ex:d2 ex:special ?x }")
        assert res.boolean is False

    def test_construct(self, graph):
        res = evaluate(graph, PREFIXES + """
            CONSTRUCT { ?d ex:copyOf ?v } WHERE {
              ?d q:contains-evidence ?e . ?e q:value ?v .
            }
        """)
        assert len(res.graph) == 3


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "SELECT WHERE { ?x ?y ?z }",
            "SELECT ?x { ?x ?y ?z",
            "FOO ?x WHERE { }",
            "SELECT ?x WHERE { ?x }",
            "PREFIX q <http://x> SELECT ?x WHERE { ?x a q:Y }",
        ],
    )
    def test_rejects(self, query):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(query)

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ValueError):
            parse_query("SELECT ?x WHERE { ?x a zz:Y }")


class TestDescribe:
    def test_describe_constant(self, graph):
        res = evaluate(graph, "DESCRIBE <http://example.org/d1>")
        assert res.query_type == "CONSTRUCT"
        assert (EX.d1, EX.label, Literal("high")) in res.graph
        # only d1's statements
        assert (EX.d2, None, None) not in res.graph

    def test_describe_with_pattern(self, graph):
        res = evaluate(graph, PREFIXES + """
            DESCRIBE ?d WHERE { ?d ex:special true }
        """)
        assert (EX.d1, EX.label, Literal("high")) in res.graph
        assert (EX.d2, None, None) not in res.graph

    def test_describe_expands_blank_nodes(self):
        from repro.rdf import BNode

        g = Graph()
        b = BNode()
        g.add(EX.x, EX.detail, b)
        g.add(b, EX.note, Literal("nested"))
        res = evaluate(g, "DESCRIBE <http://example.org/x>")
        assert len(res.graph) == 2

    def test_describe_requires_terms(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("DESCRIBE WHERE { ?s ?p ?o }")


class TestExists:
    def test_filter_exists(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE {
              ?d rdf:type q:ImprintHitEntry .
              FILTER EXISTS { ?d ex:special ?any }
            }
        """)
        assert [row[0] for row in res] == [EX.d1]

    def test_filter_not_exists(self, graph):
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE {
              ?d rdf:type q:ImprintHitEntry .
              FILTER NOT EXISTS { ?d ex:special ?any }
            }
        """)
        assert {row[0] for row in res} == {EX.d2, EX.d3}

    def test_exists_sees_outer_bindings(self, graph):
        # the inner pattern is correlated with ?d from the outer scope
        res = evaluate(graph, PREFIXES + """
            SELECT ?d WHERE {
              ?d ex:label ?l .
              FILTER EXISTS { ?d q:contains-evidence ?e }
              FILTER (?l = "high")
            }
        """)
        assert [row[0] for row in res] == [EX.d1]

    def test_not_exists_with_constant(self, graph):
        res = evaluate(graph, PREFIXES + """
            ASK { FILTER NOT EXISTS { ex:d1 ex:missingProp ?x } }
        """)
        assert res.boolean is True


class TestUnannotatedItems:
    def test_store_coverage_check(self):
        from repro.annotation import AnnotationStore
        from repro.rdf.lsid import uniprot_lsid

        store = AnnotationStore("coverage")
        a, b, c = (uniprot_lsid(f"C{i}") for i in range(3))
        store.annotate(a, Q.HitRatio, 0.5)
        store.annotate(c, Q.HitRatio, 0.7)
        store.annotate(b, Q.Coverage, 0.2)  # different type
        assert store.unannotated_items([a, b, c], Q.HitRatio) == [b]
        assert store.unannotated_items([a, b, c], Q.Masses) == [a, b, c]
