"""Differential testing: planned execution vs the naive evaluator.

The planner (:mod:`repro.rdf.sparql.plan`) reorders joins, pushes
filters into the join loop, and binds into reused arrays — none of
which may change *what* a query returns, only how fast.  This suite
generates random graphs and random BGP/FILTER/OPTIONAL/UNION queries
and asserts the two execution paths produce the same multiset of
solutions, then hammers one shared graph from eight threads with the
plan cache on and off to show cached plans are safe to share.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from typing import List, Tuple

import pytest

from repro.rdf import Graph, Literal, URIRef
from repro.rdf.sparql import compile_query, reset_plan_cache

EX = "http://example.org/"

SUBJECTS = [URIRef(f"{EX}s{i}") for i in range(6)]
PREDICATES = [URIRef(f"{EX}p{i}") for i in range(4)]
OBJECT_IRIS = [URIRef(f"{EX}o{i}") for i in range(4)] + SUBJECTS[:2]
VARIABLES = ["a", "b", "c", "d"]


def random_graph(rng: random.Random, n_triples: int) -> Graph:
    graph = Graph()
    for _ in range(n_triples):
        subject = rng.choice(SUBJECTS)
        predicate = rng.choice(PREDICATES)
        if rng.random() < 0.4:
            obj = Literal(rng.randint(0, 9))
        else:
            obj = rng.choice(OBJECT_IRIS)
        graph.add(subject, predicate, obj)
    return graph


def random_term(rng: random.Random, kind: str) -> str:
    """One position of a triple pattern, as query text."""
    if rng.random() < 0.5:
        return f"?{rng.choice(VARIABLES)}"
    if kind == "subject":
        return rng.choice(SUBJECTS).n3()
    if kind == "predicate":
        return rng.choice(PREDICATES).n3()
    if rng.random() < 0.4:
        return str(rng.randint(0, 9))
    return rng.choice(OBJECT_IRIS).n3()


def random_bgp(rng: random.Random) -> str:
    patterns = []
    for _ in range(rng.randint(1, 3)):
        patterns.append(
            f"{random_term(rng, 'subject')} "
            f"{random_term(rng, 'predicate')} "
            f"{random_term(rng, 'object')} ."
        )
    return "\n".join(patterns)


def random_group(rng: random.Random, depth: int = 0) -> str:
    """A group graph pattern mixing BGPs, OPTIONAL, UNION and FILTER."""
    body = random_bgp(rng)
    roll = rng.random()
    if depth < 2 and roll < 0.25:
        body += f"\nOPTIONAL {{ {random_group(rng, depth + 1)} }}"
    elif depth < 2 and roll < 0.45:
        body = (
            f"{{ {body} }} UNION {{ {random_group(rng, depth + 1)} }}"
        )
    if rng.random() < 0.4:
        var = rng.choice(VARIABLES)
        op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
        body += f"\nFILTER (?{var} {op} {rng.randint(0, 9)})"
    return body


def used_variables(group: str) -> List[str]:
    return sorted({name for name in VARIABLES if f"?{name}" in group})


def random_query(rng: random.Random) -> str:
    group = random_group(rng)
    names = used_variables(group) or ["a"]
    projection = " ".join(f"?{name}" for name in names)
    return f"SELECT {projection} WHERE {{\n{group}\n}}"


def solutions(result) -> Counter:
    """Rows as a canonical multiset (bindings order-insensitive)."""
    return Counter(
        tuple(sorted((str(var), value.n3()) for var, value in row.items()))
        for row in result.rows
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


class TestPlannedEqualsNaive:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_query_same_multiset(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, rng.randint(5, 60))
        query = random_query(rng)
        planned = graph.query(query)
        naive = graph.query(query, use_planner=False)
        assert solutions(planned) == solutions(naive), query

    @pytest.mark.parametrize("seed", range(20))
    def test_ask_agrees(self, seed):
        rng = random.Random(1000 + seed)
        graph = random_graph(rng, rng.randint(5, 40))
        query = f"ASK {{\n{random_group(rng)}\n}}"
        planned = graph.query(query)
        naive = graph.query(query, use_planner=False)
        assert planned.boolean == naive.boolean, query

    def test_optional_with_outer_filter_scoping(self):
        """FILTER on an OPTIONAL-bound variable: the classic trap."""
        graph = Graph()
        p, q = PREDICATES[0], PREDICATES[1]
        graph.add(SUBJECTS[0], p, Literal(1))
        graph.add(SUBJECTS[1], p, Literal(2))
        graph.add(SUBJECTS[1], q, Literal(5))
        query = f"""
        SELECT ?s ?x ?y WHERE {{
          ?s {p.n3()} ?x .
          OPTIONAL {{ ?s {q.n3()} ?y . }}
          FILTER (?y > 1)
        }}
        """
        planned = graph.query(query)
        naive = graph.query(query, use_planner=False)
        assert solutions(planned) == solutions(naive)

    def test_filter_inside_optional(self):
        graph = Graph()
        p, q = PREDICATES[0], PREDICATES[1]
        for index, subject in enumerate(SUBJECTS):
            graph.add(subject, p, Literal(index))
            graph.add(subject, q, Literal(index * 2))
        query = f"""
        SELECT ?s ?y WHERE {{
          ?s {p.n3()} ?x .
          OPTIONAL {{ ?s {q.n3()} ?y . FILTER (?y >= 6) }}
        }}
        """
        planned = graph.query(query)
        naive = graph.query(query, use_planner=False)
        assert solutions(planned) == solutions(naive)
        assert len(planned) == len(SUBJECTS)

    def test_cross_group_join_variable(self):
        """Shared variable across a UNION boundary."""
        graph = Graph()
        p, q = PREDICATES[0], PREDICATES[1]
        graph.add(SUBJECTS[0], p, OBJECT_IRIS[0])
        graph.add(OBJECT_IRIS[0], q, Literal(3))
        query = f"""
        SELECT ?a ?b WHERE {{
          ?a {p.n3()} ?b .
          {{ ?b {q.n3()} ?c . }} UNION {{ ?a {q.n3()} ?c . }}
        }}
        """
        assert solutions(graph.query(query)) == solutions(
            graph.query(query, use_planner=False)
        )


class TestConcurrentHammer:
    """One shared graph, eight threads, cache on vs off: same answers."""

    THREADS = 8
    ROUNDS = 25

    def _hammer(self, use_cache: bool) -> None:
        rng = random.Random(7)
        graph = random_graph(rng, 80)
        cases: List[Tuple[str, Counter]] = []
        for _ in range(6):
            query = random_query(rng)
            cases.append(
                (query, solutions(graph.query(query, use_planner=False)))
            )
        reset_plan_cache(capacity=4)  # smaller than the working set
        errors: List[str] = []
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_index: int) -> None:
            local = random.Random(worker_index)
            barrier.wait()
            for _ in range(self.ROUNDS):
                query, expected = local.choice(cases)
                try:
                    got = solutions(
                        graph.query(query, use_cache=use_cache)
                    )
                    if got != expected:
                        errors.append(f"divergent rows for:\n{query}")
                except Exception as exc:  # noqa: BLE001 - reported below
                    errors.append(f"{type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:5]

    def test_cache_on(self):
        self._hammer(use_cache=True)

    def test_cache_off(self):
        self._hammer(use_cache=False)

    def test_shared_compiled_plan_across_threads(self):
        rng = random.Random(11)
        graph = random_graph(rng, 60)
        query = random_query(rng)
        expected = solutions(graph.query(query, use_planner=False))
        compiled = compile_query(query)
        errors: List[str] = []

        def worker() -> None:
            for _ in range(20):
                if solutions(compiled.execute(graph)) != expected:
                    errors.append("shared plan diverged")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
