"""Direct tests of every SPARQL FILTER builtin."""

import pytest

from repro.rdf import BNode, Graph, Literal, Namespace, URIRef
from repro.rdf.sparql import evaluate
from repro.rdf.sparql.functions import (
    SPARQLTypeError,
    effective_boolean_value,
)

EX = Namespace("http://example.org/")


@pytest.fixture()
def graph():
    g = Graph()
    g.add(EX.s, EX.name, Literal("Hello World"))
    g.add(EX.s, EX.tag, Literal("bonjour", lang="fr"))
    g.add(EX.s, EX.n, Literal(-3))
    g.add(EX.s, EX.f, Literal(2.5))
    g.add(EX.s, EX.other, EX.o)
    g.add(EX.s, EX.anon, BNode("b9"))
    return g


def ask(graph, expression, bindings="?s ex:name ?x . ?s ex:n ?n . ?s ex:f ?f ."):
    query = f"""
        PREFIX ex: <http://example.org/>
        ASK {{ {bindings} FILTER ({expression}) }}
    """
    return evaluate(graph, query).boolean


class TestStringFunctions:
    def test_strlen(self, graph):
        assert ask(graph, "STRLEN(?x) = 11")

    def test_ucase_lcase(self, graph):
        assert ask(graph, 'UCASE(?x) = "HELLO WORLD"')
        assert ask(graph, 'LCASE(?x) = "hello world"')

    def test_contains(self, graph):
        assert ask(graph, 'CONTAINS(?x, "lo Wo")')
        assert not ask(graph, 'CONTAINS(?x, "xyz")')

    def test_strstarts_strends(self, graph):
        assert ask(graph, 'STRSTARTS(?x, "Hello")')
        assert ask(graph, 'STRENDS(?x, "World")')
        assert not ask(graph, 'STRSTARTS(?x, "World")')

    def test_str_of_uri(self, graph):
        assert ask(
            graph,
            'STR(?o) = "http://example.org/o"',
            bindings="?s ex:other ?o .",
        )

    def test_regex_anchors(self, graph):
        assert ask(graph, 'REGEX(?x, "^Hello")')
        assert not ask(graph, 'REGEX(?x, "^World")')


class TestLanguageAndDatatype:
    def test_lang(self, graph):
        assert ask(graph, 'LANG(?t) = "fr"', bindings="?s ex:tag ?t .")
        assert ask(graph, 'LANG(?x) = ""')

    def test_langmatches(self, graph):
        assert ask(
            graph, 'LANGMATCHES(LANG(?t), "FR")', bindings="?s ex:tag ?t ."
        )
        assert ask(
            graph, 'LANGMATCHES(LANG(?t), "*")', bindings="?s ex:tag ?t ."
        )

    def test_datatype(self, graph):
        assert ask(
            graph,
            "DATATYPE(?n) = <http://www.w3.org/2001/XMLSchema#integer>",
        )
        assert ask(
            graph,
            "DATATYPE(?x) = <http://www.w3.org/2001/XMLSchema#string>",
        )


class TestNumericFunctions:
    def test_abs(self, graph):
        assert ask(graph, "ABS(?n) = 3")

    def test_ceil_floor(self, graph):
        assert ask(graph, "CEIL(?f) = 3")
        assert ask(graph, "FLOOR(?f) = 2")

    def test_round_half_up(self, graph):
        assert ask(graph, "ROUND(?f) = 3")

    def test_numeric_function_on_string_is_type_error(self, graph):
        # a type error makes the filter false, not an exception
        assert not ask(graph, "ABS(?x) = 3")


class TestTermTests:
    def test_isiri(self, graph):
        assert ask(graph, "ISIRI(?o)", bindings="?s ex:other ?o .")
        assert not ask(graph, "ISIRI(?x)")

    def test_isblank(self, graph):
        assert ask(graph, "ISBLANK(?b)", bindings="?s ex:anon ?b .")
        assert not ask(graph, "ISBLANK(?o)", bindings="?s ex:other ?o .")

    def test_isliteral(self, graph):
        assert ask(graph, "ISLITERAL(?x)")
        assert not ask(graph, "ISLITERAL(?o)", bindings="?s ex:other ?o .")

    def test_isnumeric(self, graph):
        assert ask(graph, "ISNUMERIC(?n)")
        assert not ask(graph, "ISNUMERIC(?x)")

    def test_sameterm(self, graph):
        assert ask(graph, "SAMETERM(?x, ?x)")
        assert not ask(graph, "SAMETERM(?x, ?n)")


class TestEffectiveBooleanValue:
    def test_boolean_literal(self):
        assert effective_boolean_value(Literal(True)) is True
        assert effective_boolean_value(Literal(False)) is False

    def test_numeric_literal(self):
        assert effective_boolean_value(Literal(1))
        assert not effective_boolean_value(Literal(0))
        assert not effective_boolean_value(Literal(float("nan")))

    def test_string_literal(self):
        assert effective_boolean_value(Literal("x"))
        assert not effective_boolean_value(Literal(""))

    def test_uri_has_no_ebv(self):
        with pytest.raises(SPARQLTypeError):
            effective_boolean_value(URIRef("http://x"))
