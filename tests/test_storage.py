"""The persistent storage subsystem: WAL, segments, recovery, bulk load.

The durability contract under test: every committed graph mutation
survives a process crash at *any* byte boundary — the write-ahead log
replays complete records and silently truncates a torn tail, while a
genuinely corrupt record (bad CRC mid-log) refuses to open with a
machine-readable :class:`WALCorruption`.  Segments carry a footer with
counts and predicate statistics that are re-verified on every load, so
a tampered or bit-rotten snapshot fails loudly as
:class:`SnapshotMismatch` instead of silently mis-planning queries.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct

import pytest

from repro.rdf import BNode, Graph, Literal, URIRef
from repro.storage import (
    BACKEND_ENV_VAR,
    DiskBackend,
    MemoryBackend,
    SnapshotMismatch,
    StorageError,
    WALCorruption,
    WALWriter,
    backend_from_env,
    bulk_load_ntriples,
    bulk_load_triples,
    open_store,
)
from repro.storage.records import (
    OP_ADD,
    RecordScanner,
    add_payload,
    decode_term,
    encode_record,
    encode_term,
)

EX = "http://example.org/"


def triple(i: int):
    return (
        URIRef(f"{EX}s{i % 7}"),
        URIRef(f"{EX}p{i % 3}"),
        Literal(f"value-{i}"),
    )


def populated_disk_graph(directory: str, n: int = 40, **kwargs) -> Graph:
    kwargs.setdefault("sync", "always")
    graph = Graph(backend=DiskBackend(directory, **kwargs))
    for i in range(n):
        graph.add(*triple(i))
    return graph


class TestTermCodec:
    @pytest.mark.parametrize(
        "term",
        [
            URIRef(f"{EX}resource"),
            BNode("b42"),
            Literal("plain"),
            Literal("42", datatype=URIRef("http://www.w3.org/2001/XMLSchema#integer")),
            Literal("bonjour", lang="fr"),
            Literal(""),
            Literal("snowman ☃ and newline\nand tab\t"),
        ],
    )
    def test_round_trip(self, term):
        blob = encode_term(term)
        decoded, offset = decode_term(blob, 0)
        assert decoded == term
        assert type(decoded) is type(term)
        assert offset == len(blob)
        if isinstance(term, Literal):
            assert decoded.datatype == term.datatype
            assert decoded.lang == term.lang

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_term(b"\xffjunk", 0)


class TestRecordScanner:
    def test_clean_stream(self):
        data = b"".join(
            encode_record(add_payload(i, i + 1, i + 2)) for i in range(5)
        )
        scanner = RecordScanner(data)
        records = list(scanner)
        assert len(records) == 5
        assert scanner.status == "clean"
        assert scanner.end == len(data)

    def test_torn_tail_is_reported_not_fatal(self):
        whole = encode_record(add_payload(1, 2, 3))
        data = whole + encode_record(add_payload(4, 5, 6))[:-3]
        scanner = RecordScanner(data)
        records = list(scanner)
        assert len(records) == 1
        assert scanner.status == "torn"
        assert scanner.end == len(whole)

    def test_corrupt_crc_mid_stream(self):
        first = bytearray(encode_record(add_payload(1, 2, 3)))
        second = encode_record(add_payload(4, 5, 6))
        first[-1] ^= 0xFF  # flip a payload byte: CRC of record 0 fails
        scanner = RecordScanner(bytes(first) + second)
        list(scanner)
        assert scanner.status == "corrupt"
        assert scanner.error is not None


class TestDiskBackendRoundTrip:
    def test_reopen_restores_triples_terms_and_stats(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=40)
        graph.remove(*triple(0))
        expected = sorted(graph.triples(), key=repr)
        predicates = [URIRef(f"{EX}p{i}") for i in range(3)]
        expected_stats = {
            p: graph.predicate_stats(p).as_tuple() for p in predicates
        }
        graph.close()

        reopened = Graph(backend=DiskBackend(directory, sync="none"))
        assert sorted(reopened.triples(), key=repr) == expected
        for p in predicates:
            assert reopened.predicate_stats(p).as_tuple() == expected_stats[p]
        info = reopened.backend.describe()
        assert info["recovery"]["outcome"] == "clean"
        assert info["opens"] == 2
        reopened.close()

    def test_term_ids_are_stable_across_reopen(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=12)
        ids_before = dict(graph.backend.term_ids)
        graph.close()
        reopened = DiskBackend(directory, sync="none")
        assert dict(reopened.term_ids) == ids_before
        reopened.close()

    def test_clear_persists(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=10)
        graph.clear()
        graph.add(*triple(99))
        graph.close()
        reopened = Graph(backend=DiskBackend(directory, sync="none"))
        assert len(reopened) == 1
        assert triple(99) in reopened
        reopened.close()

    def test_missing_store_without_create(self, tmp_path):
        with pytest.raises(StorageError) as excinfo:
            DiskBackend(str(tmp_path / "nope"), create=False)
        assert excinfo.value.code == "storage_error"
        assert "nope" in excinfo.value.details()["directory"]

    def test_context_manager_closes(self, tmp_path):
        directory = str(tmp_path / "store")
        with open_store(directory, sync="none") as graph:
            graph.add(*triple(1))
        backend = DiskBackend(directory, sync="none")
        assert backend.size == 1
        backend.close()


class TestWALRecovery:
    def test_truncation_at_every_byte_boundary_of_last_record(self, tmp_path):
        """Satellite 3: a crash mid-write of the final WAL record must
        reopen to exactly the last fully-committed state, with no
        partial triples, for *every* possible torn-tail length."""
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=5)
        committed = sorted(graph.triples(), key=repr)
        wal_path = pathlib.Path(directory) / "store.wal"
        base_size = wal_path.stat().st_size
        # One more committed mutation: the record we will tear.
        graph.add(*triple(999))
        graph.close()
        full = wal_path.read_bytes()
        last_record = full[base_size:]
        assert last_record, "the final add must have produced WAL bytes"

        for cut in range(len(last_record)):
            wal_path.write_bytes(full[: base_size + cut])
            backend = DiskBackend(directory, sync="none")
            reopened = Graph(backend=backend)
            assert sorted(reopened.triples(), key=repr) == committed, (
                f"torn tail of {cut} bytes must replay to committed state"
            )
            # A cut on an interior record boundary of the final commit
            # (the adds's TERM records precede its ADD) replays clean;
            # any other cut is a torn tail that recovery truncates.
            info = backend.describe()
            outcome = info["recovery"]["outcome"]
            assert outcome in ("clean", "torn_tail")
            if outcome == "torn_tail":
                assert info["recovery"]["wal_truncated_bytes"] > 0
            reopened.close()
            # Recovery rewrites the WAL tail; restore the scenario.
            wal_path.write_bytes(full)

        # And the untouched full WAL replays the final triple.
        backend = DiskBackend(directory, sync="none")
        assert triple(999) in Graph(backend=backend)
        backend.close()

    def test_interior_corruption_is_wal_corruption(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=8)
        graph.close()
        wal_path = pathlib.Path(directory) / "store.wal"
        blob = bytearray(wal_path.read_bytes())
        assert len(blob) > 20
        blob[10] ^= 0xFF  # inside the first record, not the tail
        wal_path.write_bytes(bytes(blob))
        with pytest.raises(WALCorruption) as excinfo:
            DiskBackend(directory, sync="none")
        error = excinfo.value
        assert error.code == "wal_corruption"
        details = error.details()
        assert details["code"] == "wal_corruption"
        assert isinstance(details["offset"], int)

    def test_absurd_record_length_is_corruption(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=3)
        graph.close()
        wal_path = pathlib.Path(directory) / "store.wal"
        bogus = struct.pack("<II", 0x7FFFFFFF, 0) + b"x" * 64
        wal_path.write_bytes(bogus + wal_path.read_bytes())
        with pytest.raises(WALCorruption):
            DiskBackend(directory, sync="none")


class TestSnapshotVerification:
    def test_tampered_segment_is_snapshot_mismatch(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=30)
        graph.backend.compact()
        graph.close()
        segments = sorted(pathlib.Path(directory).glob("*.seg"))
        assert segments
        blob = bytearray(segments[-1].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        segments[-1].write_bytes(bytes(blob))
        with pytest.raises((SnapshotMismatch, WALCorruption)) as excinfo:
            DiskBackend(directory, sync="none")
        assert excinfo.value.code in ("snapshot_mismatch", "wal_corruption")

    def test_bad_magic_is_snapshot_mismatch(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=5)
        graph.backend.compact()
        graph.close()
        segment = sorted(pathlib.Path(directory).glob("*.seg"))[-1]
        blob = bytearray(segment.read_bytes())
        blob[0] ^= 0xFF
        segment.write_bytes(bytes(blob))
        with pytest.raises(SnapshotMismatch) as excinfo:
            DiskBackend(directory, sync="none")
        assert excinfo.value.code == "snapshot_mismatch"
        assert excinfo.value.details()["segment"]

    def test_missing_segment_file(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=5)
        graph.backend.compact()
        graph.close()
        for segment in pathlib.Path(directory).glob("*.seg"):
            segment.unlink()
        with pytest.raises(StorageError):
            DiskBackend(directory, sync="none")


class TestCompactionAndSnapshot:
    def test_compaction_folds_wal_into_segment(self, tmp_path):
        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=25)
        graph.remove(*triple(3))
        expected = sorted(graph.triples(), key=repr)
        wal_path = pathlib.Path(directory) / "store.wal"
        assert wal_path.stat().st_size > 0
        segment = graph.backend.compact()
        assert segment.exists()
        assert wal_path.stat().st_size == 0
        graph.close()
        reopened = Graph(backend=DiskBackend(directory, sync="none"))
        assert sorted(reopened.triples(), key=repr) == expected
        assert reopened.backend.describe()["compactions"] == 1
        reopened.close()

    def test_snapshot_is_an_independent_store(self, tmp_path):
        source_dir = str(tmp_path / "source")
        dest_dir = str(tmp_path / "dest")
        graph = populated_disk_graph(source_dir, n=15)
        expected = sorted(graph.triples(), key=repr)
        graph.backend.snapshot(dest_dir)
        # Diverge the source after the snapshot.
        graph.add(*triple(777))
        graph.close()
        restored = Graph(backend=DiskBackend(dest_dir, sync="none"))
        assert sorted(restored.triples(), key=repr) == expected
        assert triple(777) not in restored
        restored.close()

    def test_snapshot_refuses_existing_store(self, tmp_path):
        source_dir = str(tmp_path / "source")
        graph = populated_disk_graph(source_dir, n=3)
        with pytest.raises(StorageError):
            graph.backend.snapshot(source_dir)
        graph.close()


class TestWALWriterPolicies:
    def test_fsync_batching_counts(self, tmp_path):
        path = str(tmp_path / "w.wal")
        writer = WALWriter(path, sync="batch", fsync_batch=4)
        for i in range(10):
            writer.append(add_payload(i, i, i))
            writer.commit()
        assert writer.commits == 10
        assert writer.fsyncs == 2  # commits 4 and 8
        writer.flush()
        assert writer.fsyncs == 3
        writer.close()

    def test_sync_none_never_fsyncs(self, tmp_path):
        writer = WALWriter(str(tmp_path / "w.wal"), sync="none")
        writer.append(add_payload(1, 2, 3))
        writer.commit()
        writer.flush()
        assert writer.fsyncs == 0
        writer.close()

    def test_sync_always_fsyncs_every_commit(self, tmp_path):
        writer = WALWriter(str(tmp_path / "w.wal"), sync="always")
        for i in range(3):
            writer.append(add_payload(i, i, i))
            writer.commit()
        assert writer.fsyncs == 3
        writer.close()

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WALWriter(str(tmp_path / "w.wal"), sync="sometimes")


class TestBulkLoader:
    def test_load_triples_then_reopen(self, tmp_path):
        directory = str(tmp_path / "bulk")
        triples = [triple(i) for i in range(2000)]
        report = bulk_load_triples(triples, directory, batch_size=256)
        assert report["triples_loaded"] == 2000
        assert report["triples_per_second"] > 0
        graph = Graph(backend=DiskBackend(directory, sync="none"))
        assert len(graph) == 2000
        assert sorted(graph.triples(), key=repr) == sorted(triples, key=repr)
        # Bulk load must produce the same stats as incremental adds.
        incremental = Graph()
        incremental.add_all(triples)
        for i in range(3):
            p = URIRef(f"{EX}p{i}")
            assert (
                graph.predicate_stats(p).as_tuple()
                == incremental.predicate_stats(p).as_tuple()
            )
        graph.close()

    def test_load_ntriples_file(self, tmp_path):
        source = Graph()
        for i in range(120):
            source.add(*triple(i))
        nt_path = tmp_path / "data.nt"
        nt_path.write_text(source.serialize())
        directory = str(tmp_path / "bulk")
        report = bulk_load_ntriples(str(nt_path), directory)
        assert report["triples_loaded"] == 120
        graph = Graph(backend=DiskBackend(directory, sync="none"))
        assert sorted(graph.triples(), key=repr) == sorted(
            source.triples(), key=repr
        )
        graph.close()

    def test_refuses_to_load_over_existing_store(self, tmp_path):
        directory = str(tmp_path / "bulk")
        bulk_load_triples([triple(0)], directory)
        with pytest.raises(StorageError):
            bulk_load_triples([triple(1)], directory)


class TestBackendSelection:
    def test_default_is_memory(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert Graph().backend.kind == "memory"
        assert backend_from_env().kind == "memory"

    def test_env_selects_disk_scratch(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "disk-scratch")
        graph = Graph()
        assert graph.backend.kind == "disk"
        assert graph.backend.durable
        graph.add(*triple(1))
        assert len(graph) == 1
        graph.close()

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "floppy")
        with pytest.raises(StorageError):
            backend_from_env()


class TestGraphCopySemantics:
    """Satellite 1: copies and unions rebuild stats explicitly."""

    def test_stats_identical_across_copy_bulk_incremental_and_reopen(
        self, tmp_path
    ):
        triples = [triple(i) for i in range(60)]
        incremental = Graph()
        for t in triples:
            incremental.add(*t)
        bulk = Graph()
        bulk.add_all(triples)
        copied = incremental.copy()
        union = Graph() + incremental
        disk = populated_disk_graph(str(tmp_path / "store"), n=0)
        disk.add_all(triples)
        disk.close()
        reopened = Graph(backend=DiskBackend(str(tmp_path / "store"), sync="none"))
        graphs = {
            "incremental": incremental,
            "bulk": bulk,
            "copy": copied,
            "union": union,
            "reopened-disk": reopened,
        }
        for i in range(3):
            p = URIRef(f"{EX}p{i}")
            reference = incremental.predicate_stats(p).as_tuple()
            for label, graph in graphs.items():
                assert graph.predicate_stats(p).as_tuple() == reference, label
        reopened.close()

    def test_copy_of_disk_graph_is_memory_and_independent(self, tmp_path):
        disk = populated_disk_graph(str(tmp_path / "store"), n=10)
        clone = disk.copy()
        assert clone.backend.kind == "memory"
        clone.add(*triple(500))
        assert len(clone) == len(disk) + 1
        disk.close()


class TestStoreCLI:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_load_info_compact_snapshot(self, tmp_path, capsys):
        source = Graph()
        for i in range(200):
            source.add(*triple(i))
        nt_path = tmp_path / "data.nt"
        nt_path.write_text(source.serialize())
        store_dir = str(tmp_path / "s1")
        snap_dir = str(tmp_path / "s2")

        assert self.run_cli("store", "load", str(nt_path), store_dir) == 0
        out = capsys.readouterr().out
        assert "200 triples" in out and "triples/sec" in out

        assert self.run_cli("store", "info", store_dir) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["triples"] == 200
        assert info["kind"] == "disk"

        assert self.run_cli("store", "compact", store_dir) == 0
        capsys.readouterr()
        assert self.run_cli("store", "snapshot", store_dir, snap_dir) == 0
        capsys.readouterr()
        graph = Graph(backend=DiskBackend(snap_dir, sync="none"))
        assert len(graph) == 200
        graph.close()

    def test_missing_store_errors_machine_readably(self, tmp_path, capsys):
        assert self.run_cli("store", "info", str(tmp_path / "absent")) == 1
        err = capsys.readouterr().err
        payload = json.loads(err.split("error:", 1)[1])
        assert payload["code"] == "storage_error"


class TestStorageMetrics:
    def test_storage_metric_names_pass_the_lint(self):
        from repro.observability.registry import METRIC_NAME_RE

        for name in (
            "repro_storage_wal_records_total",
            "repro_storage_wal_fsyncs_total",
            "repro_storage_open_backends",
            "repro_storage_recoveries_total",
            "repro_storage_segment_write_seconds",
            "repro_storage_compactions_total",
            "repro_storage_snapshots_total",
            "repro_storage_bulk_load_triples_total",
            "repro_storage_bulk_load_seconds",
        ):
            assert METRIC_NAME_RE.match(name), name

    def test_recovery_outcome_metric_emitted(self, tmp_path):
        from repro.observability import get_registry

        directory = str(tmp_path / "store")
        graph = populated_disk_graph(directory, n=4)
        graph.close()
        registry = get_registry()
        before = registry.counter(
            "repro_storage_recoveries_total",
            "Store opens by recovery outcome.",
            labels=("outcome",),
        ).labels(outcome="clean").value
        backend = DiskBackend(directory, sync="none")
        backend.close()
        after = registry.counter(
            "repro_storage_recoveries_total",
            "Store opens by recovery outcome.",
            labels=("outcome",),
        ).labels(outcome="clean").value
        assert after == before + 1
