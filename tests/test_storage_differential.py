"""Differential testing of the storage backends (E6/E16/E22).

A durable graph — disk segments or paged sorted runs — must be
*indistinguishable* from the in-memory one at the query layer:
identical planned and naive results, identical stats-driven join
orders, identical serialized bytes — on a freshly written store, and
again after close + reopen (segments + WAL replay).  The paged engine
additionally proves crash safety at *every* WAL byte boundary.  The
annotation repository and the durable serving tier get the same
treatment: warm annotations and registered views must survive a
restart with byte-equal responses and no client re-registration.
"""

from __future__ import annotations

import json
import pathlib
import random
import shutil
from collections import Counter

import pytest

from repro.annotation import AnnotationStore
from repro.rdf import Graph, Literal, Q, URIRef
from repro.rdf.lsid import uniprot_lsid
from repro.rdf.sparql import explain, reset_plan_cache
from repro.storage import DiskBackend, MemoryBackend, PagedBackend

DURABLE_BACKENDS = {"disk": DiskBackend, "paged": PagedBackend}


def durable_backend(engine: str, directory: str, sync: str = "none"):
    return DURABLE_BACKENDS[engine](directory, sync=sync)

EX = "http://example.org/"
SUBJECTS = [URIRef(f"{EX}s{i}") for i in range(8)]
PREDICATES = [URIRef(f"{EX}p{i}") for i in range(4)]


def seeded_triples(seed: int, n: int):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        obj = (
            Literal(rng.randint(0, 9))
            if rng.random() < 0.5
            else rng.choice(SUBJECTS)
        )
        out.append((rng.choice(SUBJECTS), rng.choice(PREDICATES), obj))
    return out


QUERIES = [
    # A join whose best order depends on predicate statistics.
    f"""SELECT ?s ?x ?y WHERE {{
        ?s <{EX}p0> ?x .
        ?s <{EX}p1> ?y .
    }}""",
    f"""SELECT ?s ?v WHERE {{
        ?s <{EX}p2> ?v .
        FILTER (?v > 3)
    }}""",
    f"""SELECT ?a ?b WHERE {{
        ?a <{EX}p0> ?b .
        OPTIONAL {{ ?b <{EX}p3> ?c . }}
    }}""",
    f"""SELECT ?s WHERE {{
        {{ ?s <{EX}p0> ?x . }} UNION {{ ?s <{EX}p1> ?x . }}
    }}""",
    "ASK { ?s ?p ?o }",
]


def solutions(result) -> Counter:
    if result.boolean is not None:
        return Counter([("boolean", result.boolean)])
    return Counter(
        tuple(sorted((str(var), value.n3()) for var, value in row.items()))
        for row in result.rows
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


@pytest.fixture(params=["memory", "disk", "paged"])
def make_graph(request, tmp_path):
    """A factory for backend-parametrized graphs (closed at teardown)."""
    opened = []
    counter = iter(range(10_000))

    def factory() -> Graph:
        if request.param == "memory":
            graph = Graph(backend=MemoryBackend())
        else:
            directory = str(tmp_path / f"store-{next(counter)}")
            graph = Graph(
                backend=durable_backend(request.param, directory)
            )
        opened.append(graph)
        return graph

    factory.backend = request.param
    yield factory
    for graph in opened:
        graph.close()


class TestQueryParityAcrossBackends:
    @pytest.mark.parametrize("seed", range(8))
    def test_planned_equals_naive_on_written_store(self, make_graph, seed):
        graph = make_graph()
        graph.add_all(seeded_triples(seed, 80))
        for query in QUERIES:
            planned = graph.query(query)
            naive = graph.query(query, use_planner=False)
            assert solutions(planned) == solutions(naive), query

    @pytest.mark.parametrize("engine", ["disk", "paged"])
    @pytest.mark.parametrize("seed", range(4))
    def test_durable_matches_memory_byte_for_byte(
        self, tmp_path, seed, engine
    ):
        triples = seeded_triples(100 + seed, 90)
        memory = Graph(backend=MemoryBackend())
        memory.add_all(triples)
        durable = Graph(
            backend=durable_backend(engine, str(tmp_path / f"d{seed}"))
        )
        durable.add_all(triples)
        assert memory.serialize() == durable.serialize()
        for query in QUERIES:
            assert solutions(memory.query(query)) == solutions(
                durable.query(query)
            ), query
        durable.close()

    @pytest.mark.parametrize("engine", ["disk", "paged"])
    @pytest.mark.parametrize("seed", range(4))
    def test_reopened_store_answers_identically(
        self, tmp_path, seed, engine
    ):
        triples = seeded_triples(200 + seed, 70)
        directory = str(tmp_path / "store")
        graph = Graph(
            backend=durable_backend(engine, directory, sync="always")
        )
        graph.add_all(triples)
        # A few incremental mutations so the WAL has DELETE records too.
        for t in triples[:5]:
            graph.remove(*t)
        before = {
            query: (
                solutions(graph.query(query)),
                solutions(graph.query(query, use_planner=False)),
            )
            for query in QUERIES
        }
        serialized = graph.serialize()
        graph.close()

        reopened = Graph(backend=durable_backend(engine, directory))
        assert reopened.serialize() == serialized
        for query in QUERIES:
            planned = solutions(reopened.query(query))
            naive = solutions(reopened.query(query, use_planner=False))
            assert (planned, naive) == before[query], query
        reopened.close()

    @pytest.mark.parametrize("engine", ["disk", "paged"])
    def test_join_order_survives_reopen(self, tmp_path, engine):
        """plan.py reads live predicate stats through the probe; the
        persisted stats must reproduce the same greedy join order
        after a restart on either durable engine."""
        directory = str(tmp_path / "store")
        graph = Graph(
            backend=durable_backend(engine, directory, sync="always")
        )
        # p0 is common (unselective), p1 is rare (selective): the
        # planner must start with p1 both before and after reopen.
        for i in range(40):
            graph.add(SUBJECTS[i % 8], PREDICATES[0], Literal(i))
        graph.add(SUBJECTS[0], PREDICATES[1], Literal("rare"))
        query = f"""SELECT ?s ?x ?y WHERE {{
            ?s <{EX}p0> ?x .
            ?s <{EX}p1> ?y .
        }}"""
        def plan_lines(graph: Graph):
            # Drop the plan-cache statistics line: hit counters differ
            # between the first and second explain, join order may not.
            return [
                line for line in explain(graph, query).splitlines()
                if "cache" not in line
            ]

        plan_before = plan_lines(graph)
        graph.close()
        reopened = Graph(backend=durable_backend(engine, directory))
        assert plan_lines(reopened) == plan_before
        plan_before = "\n".join(plan_before)
        assert f"{EX}p1" in plan_before.splitlines()[0] or (
            plan_before.index(f"{EX}p1") < plan_before.index(f"{EX}p0")
        )
        reopened.close()


class TestPagedCrashRecovery:
    """Satellite 3: the paged engine's reopen-after-crash parity at
    every WAL byte boundary — each torn tail must replay to exactly the
    last committed state, with planned/naive query parity intact."""

    def test_reopen_at_every_wal_byte_boundary(self, tmp_path):
        live_dir = str(tmp_path / "live")
        graph = Graph(backend=PagedBackend(live_dir, sync="always"))
        graph.add_all(seeded_triples(7, 40))
        # Checkpoint so the committed state spans sorted runs *and*
        # the WAL tail that follows — replay must compose both.
        assert graph.backend.checkpoint()
        extra = seeded_triples(8, 6)
        graph.add_all(extra)
        graph.remove(*extra[0])
        committed = sorted(graph.triples(), key=repr)
        answers = {q: solutions(graph.query(q)) for q in QUERIES}
        base_size = (pathlib.Path(live_dir) / "store.wal").stat().st_size
        # One more committed mutation: the record we will tear.  The
        # crash image is copied while the store is live — a clean
        # close would checkpoint and empty the WAL.
        graph.add(SUBJECTS[0], PREDICATES[3], Literal("tail"))
        crashed = tmp_path / "crashed"
        shutil.copytree(live_dir, crashed)
        graph.close()
        directory = str(crashed)
        wal_path = crashed / "store.wal"
        full = wal_path.read_bytes()
        last_record = full[base_size:]
        assert last_record, "the final add must have produced WAL bytes"

        for cut in range(len(last_record)):
            wal_path.write_bytes(full[: base_size + cut])
            backend = PagedBackend(directory, sync="none")
            reopened = Graph(backend=backend)
            assert sorted(reopened.triples(), key=repr) == committed, (
                f"torn tail of {cut} bytes must replay to committed state"
            )
            for query in QUERIES:
                planned = solutions(reopened.query(query))
                naive = solutions(reopened.query(query, use_planner=False))
                assert planned == naive == answers[query], (cut, query)
            outcome = backend.describe()["recovery"]["outcome"]
            assert outcome in ("clean", "torn_tail")
            reopened.close()
            # Recovery truncates the torn tail; restore the scenario.
            wal_path.write_bytes(full)

        # And the untouched full WAL replays the final triple.
        backend = PagedBackend(directory, sync="none")
        reopened = Graph(backend=backend)
        assert (SUBJECTS[0], PREDICATES[3], Literal("tail")) in reopened
        reopened.close()


class TestAnnotationStoreParity:
    ITEMS = [uniprot_lsid(f"P{i:05d}") for i in range(1, 9)]

    def annotate_all(self, store: AnnotationStore) -> None:
        for index, item in enumerate(self.ITEMS):
            store.annotate(item, Q.HitRatio, round(0.1 * index, 2))
            if index % 2:
                store.annotate(item, Q.Coverage, index)

    def test_durable_store_answers_like_memory(self, tmp_path):
        memory = AnnotationStore("mem")
        durable = AnnotationStore(
            "disk", directory=str(tmp_path / "repo"), sync="none"
        )
        assert not memory.durable and durable.durable
        self.annotate_all(memory)
        self.annotate_all(durable)
        for item in self.ITEMS:
            assert memory.lookup_all(item) == durable.lookup_all(item)
        durable.close()

    def test_warm_annotations_survive_restart(self, tmp_path):
        directory = str(tmp_path / "repo")
        store = AnnotationStore("r", directory=directory, sync="always")
        self.annotate_all(store)
        expected = {item: store.lookup_all(item) for item in self.ITEMS}
        store.close()

        reopened = AnnotationStore("r", directory=directory, sync="none")
        for item in self.ITEMS:
            assert reopened.lookup_all(item) == expected[item]
        # Restarted stores must keep minting fresh evidence nodes — the
        # generation-scoped instance token prevents collisions with
        # nodes persisted by the previous process.
        persisted_nodes = {
            str(o) for _, p, o in reopened.graph.triples()
            if str(p).endswith("contains-evidence")
        }
        node = reopened.annotate(self.ITEMS[0], Q.Coverage, 42)
        assert str(node) not in persisted_nodes
        assert reopened.lookup(self.ITEMS[0], Q.Coverage) == 42
        reopened.close()


class TestDurableServingRestart:
    def test_views_and_enactments_survive_restart(
        self, tmp_path, scenario, result_set
    ):
        from repro.core.ispider import example_quality_view_xml, setup_framework
        from repro.serving import QualityViewServer, ServingConfig

        xml = example_quality_view_xml()
        run_ids = sorted(
            {result_set.run_id(item) for item in result_set.items()}
        )
        datasets = {
            run_id: result_set.items_of_run(run_id) for run_id in run_ids
        }
        dataset_name = run_ids[0]
        store_dir = str(tmp_path / "serve-store")

        def build_server():
            framework, holder = setup_framework(scenario)
            holder.set(result_set)
            runtime = framework.runtime(
                workers=2, queue_size=16, queue_policy="reject",
                name="restart-test",
            )
            config = ServingConfig(
                port=0, storage_dir=store_dir, storage_sync="always",
                quota_rate=1000.0, quota_burst=1000.0,
            )
            return QualityViewServer(
                framework, runtime, config=config, datasets=datasets
            ), runtime

        server, runtime = build_server()
        try:
            status, _, body, _ = server.dispatch(
                "PUT", "/views/qv-durable", xml.encode("utf-8"),
                {"Content-Type": "application/xml", "X-Tenant": "alice"},
            )
            assert status == 201
            status, _, body, _ = server.dispatch(
                "POST", "/views/qv-durable/enact",
                json.dumps({"dataset": dataset_name, "wait": True}).encode("utf-8"),
                {"Content-Type": "application/json", "X-Tenant": "alice"},
            )
            assert status == 200
            first = json.loads(body)["result"]
            status, _, body, _ = server.dispatch("GET", "/healthz")
            health = json.loads(body)
            assert health["storage"]["durable"] is True
            assert "views" in health["storage"]["stores"]
        finally:
            server.close()
            runtime.shutdown(drain=True)

        # -- a brand-new process opens the same store directory --------
        server, runtime = build_server()
        try:
            status, _, body, _ = server.dispatch("GET", "/views")
            views = json.loads(body)["views"]
            assert [v["name"] for v in views] == ["qv-durable"]
            assert views[0]["restored"] is True
            status, _, body, _ = server.dispatch(
                "POST", "/views/qv-durable/enact",
                json.dumps({"dataset": dataset_name, "wait": True}).encode("utf-8"),
                {"Content-Type": "application/json", "X-Tenant": "alice"},
            )
            assert status == 200
            second = json.loads(body)["result"]
            assert json.dumps(first, sort_keys=True) == json.dumps(
                second, sort_keys=True
            )
        finally:
            server.close()
            runtime.shutdown(drain=True)
