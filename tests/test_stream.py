"""The streaming subsystem: deltas, incremental enactment, resume.

The acceptance scenario of ``repro.stream`` lives here: seeded random
delta sequences (new items, evidence updates, retractions, threshold
edits) flow through the :class:`IncrementalEnactor` and every refreshed
result must serialize *byte-equal* to a full batch recompute of the
same data set — while touching only work proportional to the delta.
The resume test kills a stream mid-feed and restarts it against the
persisted cursor: no record is reprocessed and no drift event is
emitted twice.
"""

from __future__ import annotations

import contextlib
import io
import json
import random

import pytest

from repro.core.ispider import FILTER_ACTION
from repro.rdf import Q, URIRef
from repro.serving import wire
from repro.stream import (
    CusumDetector,
    Delta,
    EvidenceTable,
    EwmaDetector,
    IncrementalEnactor,
    JsonLinesSource,
    QueueSource,
    RollingWindows,
    StreamEngine,
    StreamError,
    StreamRecord,
    StreamStats,
    delta_from_document,
    delta_to_document,
)
from repro.stream.scenario import (
    build_stream_scenario,
    random_row,
    stream_item,
    synthetic_records,
)

#: The number of assertions in the Sec. 5.1 example view.
N_ASSERTIONS = 3


def result_bytes(result) -> bytes:
    """The canonical wire serialization the differential compares."""
    return wire.dumps(wire.encode_result(result))


class ListSource:
    """A record source over an in-memory list (test double)."""

    def __init__(self, records):
        self._records = list(records)

    def records(self):
        return iter(self._records)


# -- the delta model ---------------------------------------------------------


class TestDelta:
    def test_document_round_trip_preserves_fingerprint(self):
        delta = Delta(
            upserts={stream_item(0): {Q.Coverage: 0.5, Q.Masses: 12}},
            retractions=[(stream_item(1), Q.HitRatio), (stream_item(2), None)],
            thresholds={FILTER_ACTION: "HR > 40"},
        )
        document = delta_to_document(delta)
        # the document is plain JSON (string keys, JSON scalars)
        reparsed = delta_from_document(json.loads(json.dumps(document)))
        assert reparsed.fingerprint() == delta.fingerprint()
        assert reparsed.upserts == delta.upserts
        assert reparsed.retractions == delta.retractions
        assert reparsed.thresholds == delta.thresholds

    def test_fingerprint_ignores_mapping_order(self):
        one = Delta(upserts={stream_item(0): {Q.Coverage: 0.5, Q.Masses: 3}})
        other = Delta(upserts={stream_item(0): {Q.Masses: 3, Q.Coverage: 0.5}})
        assert one.fingerprint() == other.fingerprint()

    def test_fingerprint_distinguishes_values(self):
        one = Delta(upserts={stream_item(0): {Q.Coverage: 0.5}})
        other = Delta(upserts={stream_item(0): {Q.Coverage: 0.6}})
        assert one.fingerprint() != other.fingerprint()

    def test_touched_items_first_mention_first(self):
        delta = Delta(
            upserts={stream_item(1): {Q.Coverage: 0.1}},
            retractions=[(stream_item(0), None), (stream_item(1), Q.Masses)],
        )
        assert delta.touched_items() == [stream_item(1), stream_item(0)]

    def test_size_counts_cells_not_items(self):
        delta = Delta(
            upserts={stream_item(0): {Q.Coverage: 0.1, Q.Masses: 2}},
            retractions=[(stream_item(1), None)],
            thresholds={FILTER_ACTION: "HR > 1"},
        )
        assert delta.size() == 4
        assert not delta.is_empty()
        assert Delta().is_empty()

    @pytest.mark.parametrize(
        "document",
        [
            "not a mapping",
            {"upserts": []},
            {"retractions": {"item": "etype"}},
            {"retractions": [["only-item"]]},
            {"upserts": {"item": "not-a-mapping"}},
            {"thresholds": []},
        ],
    )
    def test_malformed_documents_raise_value_error(self, document):
        with pytest.raises(ValueError):
            delta_from_document(document)


class TestEvidenceTable:
    def test_apply_upserts_retractions_and_row_clears(self):
        table = EvidenceTable({stream_item(0): {Q.Coverage: 0.2, Q.Masses: 9}})
        table.apply(
            Delta(
                upserts={
                    stream_item(0): {Q.Coverage: 0.8},
                    stream_item(1): {Q.HitRatio: 0.4},
                },
                retractions=[(stream_item(0), Q.Masses)],
            )
        )
        assert table.get(stream_item(0)) == {Q.Coverage: 0.8}
        assert table.get(stream_item(1)) == {Q.HitRatio: 0.4}
        # a whole-item retraction clears the row but keeps the item
        table.apply(Delta(retractions=[(stream_item(1), None)]))
        assert table.get(stream_item(1)) == {}
        assert table.items() == [stream_item(0), stream_item(1)]

    def test_annotation_function_reads_live_rows(self):
        table = EvidenceTable()
        fn = table.annotation_function(
            Q["Imprint-output-annotation"], [Q.Coverage, Q.HitRatio]
        )
        item = stream_item(0)
        empty = fn.annotate([item], [Q.Coverage])
        assert empty.evidence_for(item) == {}
        table.set(item, Q.Coverage, 0.7)
        table.set(item, Q.Masses, 11)  # not requested, must be filtered
        refreshed = fn.annotate([item], [Q.Coverage])
        assert refreshed.evidence_for(item) == {Q.Coverage: 0.7}


# -- windows and drift detectors ---------------------------------------------


class TestRollingWindows:
    def test_tumbling_windows_close_on_watermark(self):
        windows = RollingWindows(size=10.0)
        assert windows.add(1.0, 0.2) == []
        assert windows.add(5.0, 0.4) == []
        closed = windows.add(10.0, 0.9)
        assert len(closed) == 1
        (window,) = closed
        assert (window.start, window.end, window.count) == (0.0, 10.0, 2)
        assert window.mean == pytest.approx(0.3)
        assert (window.minimum, window.maximum) == (0.2, 0.4)
        # the 10.0 sample landed in the next window
        (tail,) = windows.flush()
        assert (tail.start, tail.count, tail.mean) == (10.0, 1, 0.9)

    def test_sliding_windows_assign_samples_to_every_span(self):
        windows = RollingWindows(size=10.0, slide=5.0)
        windows.add(7.0, 1.0)  # spans [0,10) and [5,15)
        closed = windows.add(12.0, 2.0)  # closes [0,10)
        assert [(w.start, w.count) for w in closed] == [(0.0, 1)]
        remaining = windows.flush()
        assert [(w.start, w.count) for w in remaining] == [
            (5.0, 2),
            (10.0, 1),
        ]

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            RollingWindows(size=0)
        with pytest.raises(ValueError):
            RollingWindows(size=5.0, slide=6.0)

    def test_window_document_shape(self):
        windows = RollingWindows(size=2.0)
        windows.add(0.5, 0.5)
        (window,) = windows.add(2.0, 0.5)
        assert window.to_document() == {
            "start": 0.0,
            "end": 2.0,
            "count": 1,
            "mean": 0.5,
            "min": 0.5,
            "max": 0.5,
        }


class TestDriftDetectors:
    def test_ewma_fires_once_on_a_step_change(self):
        detector = EwmaDetector(alpha=0.3, threshold=3.0, warmup=3)
        samples = [0.8, 0.8, 0.8, 0.8, 0.8, 0.2, 0.21, 0.2]
        events = [detector.update(v) for v in samples]
        fired = [e for e in events if e is not None]
        assert len(fired) == 1
        (event,) = fired
        assert event.kind == "ewma"
        assert event.direction == "down"
        assert event.sample_index == 5
        assert event.statistic > event.threshold

    def test_ewma_is_deterministic(self):
        samples = [0.7, 0.72, 0.69, 0.71, 0.3, 0.31, 0.7]
        runs = []
        for _ in range(2):
            detector = EwmaDetector(warmup=2)
            runs.append(
                [
                    e.to_document() if e else None
                    for e in (detector.update(v) for v in samples)
                ]
            )
        assert runs[0] == runs[1]

    def test_cusum_accumulates_and_reanchors(self):
        detector = CusumDetector(slack=0.02, limit=0.1, warmup=3)
        # warmup establishes the target around 0.8
        for value in (0.8, 0.8, 0.8):
            assert detector.update(value) is None
        # small sustained drop accumulates past the limit
        events = [detector.update(0.72) for _ in range(4)]
        fired = [e for e in events if e is not None]
        assert len(fired) == 1
        assert fired[0].kind == "cusum"
        assert fired[0].direction == "down"
        # after re-anchoring at 0.72 the same level is quiet again
        assert all(detector.update(0.72) is None for _ in range(5))

    def test_cusum_fires_upward_too(self):
        detector = CusumDetector(slack=0.01, limit=0.05, target=0.5)
        events = [detector.update(0.58) for _ in range(3)]
        fired = [e for e in events if e is not None]
        assert fired and fired[0].direction == "up"


# -- sources -----------------------------------------------------------------


class TestSources:
    def test_queue_source_drains_until_closed(self):
        source = QueueSource()
        records = synthetic_records(items=2, steps=2, seed=1)
        for record in records:
            source.put(record)
        source.close()
        assert [r.seq for r in source.records()] == [1, 2, 3]

    def test_jsonlines_round_trip(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        records = synthetic_records(items=3, steps=4, seed=2)
        assert JsonLinesSource.write(path, records) == 5
        replayed = list(JsonLinesSource(path).records())
        assert [r.seq for r in replayed] == [r.seq for r in records]
        assert [r.delta.fingerprint() for r in replayed] == [
            r.delta.fingerprint() for r in records
        ]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        good = StreamRecord(seq=1, timestamp=1.0, delta=Delta())
        path.write_text(
            json.dumps(good.to_document()) + "\n\n" + '{"ts": 2.0}\n'
        )
        source = JsonLinesSource(path)
        iterator = source.records()
        assert next(iterator).seq == 1
        with pytest.raises(ValueError, match=r"feed\.jsonl:3.*'seq'"):
            next(iterator)

    def test_record_document_round_trip(self):
        record = StreamRecord(
            seq=7,
            timestamp=12.5,
            delta=Delta(upserts={stream_item(0): {Q.Coverage: 0.3}}),
        )
        parsed = StreamRecord.from_document(record.to_document())
        assert parsed == record


# -- cursors -----------------------------------------------------------------


class TestCursors:
    def test_save_load_round_trip(self, tmp_path):
        from repro.storage import CursorFile

        cursor = CursorFile(tmp_path, "alpha")
        assert cursor.load() is None
        cursor.save({"seq": 12, "view": "v"})
        assert cursor.load() == {"seq": 12, "view": "v"}
        cursor.save({"seq": 13, "view": "v"})
        assert cursor.load()["seq"] == 13
        cursor.clear()
        assert cursor.load() is None
        cursor.clear()  # idempotent

    def test_corrupt_cursor_reads_as_none(self, tmp_path):
        from repro.storage import CursorFile

        cursor = CursorFile(tmp_path, "beta")
        cursor.save({"seq": 5})
        # flip a payload byte: the CRC must catch it
        raw = cursor.path.read_text()
        cursor.path.write_text(raw.replace('"seq": 5', '"seq": 6'))
        assert cursor.load() is None
        # non-JSON garbage and truncation also read as "no cursor"
        cursor.path.write_text("not json at all")
        assert cursor.load() is None

    def test_cursor_files_globs_only_cursors(self, tmp_path):
        from repro.storage import CursorFile, cursor_files

        CursorFile(tmp_path, "b").save({"seq": 1})
        CursorFile(tmp_path, "a").save({"seq": 2})
        (tmp_path / "manifest.json").write_text("{}")
        names = [path.name for path in cursor_files(tmp_path)]
        assert names == ["stream-a.cursor", "stream-b.cursor"]
        assert cursor_files(tmp_path / "missing") == []

    def test_rejects_unsafe_names(self, tmp_path):
        from repro.storage import CursorFile

        with pytest.raises(ValueError):
            CursorFile(tmp_path, "../escape")


# -- the incremental differential --------------------------------------------


def make_enactor():
    scenario = build_stream_scenario()
    return scenario, IncrementalEnactor(scenario.view, feed=scenario.table)


def random_delta(rng, universe, next_index):
    """One random delta; may add items, update, retract, move thresholds."""
    kind = rng.random()
    upserts = {}
    retractions = []
    thresholds = {}
    if kind < 0.25 or not universe:
        # arrival of new items
        for _ in range(rng.randint(1, 3)):
            item = stream_item(next_index)
            next_index += 1
            universe.append(item)
            upserts[item] = random_row(rng)
    elif kind < 0.65:
        # evidence updates over a random subset (sometimes partial rows)
        for item in rng.sample(universe, rng.randint(1, min(4, len(universe)))):
            row = random_row(rng)
            if rng.random() < 0.3:
                keep = rng.sample(sorted(row, key=str), 2)
                row = {etype: row[etype] for etype in keep}
            upserts[item] = row
    elif kind < 0.9:
        # retractions: single evidence cells or whole rows
        for item in rng.sample(universe, rng.randint(1, min(3, len(universe)))):
            if rng.random() < 0.5:
                retractions.append((item, None))
            else:
                retractions.append(
                    (item, rng.choice([Q.Coverage, Q.HitRatio, Q.Masses]))
                )
    else:
        thresholds[FILTER_ACTION] = rng.choice(
            ["ScoreClass in q:high", "ScoreClass in q:low", "HR > 40", "HR > 10"]
        )
    return Delta(
        upserts=upserts, retractions=retractions, thresholds=thresholds
    ), next_index


class TestIncrementalDifferential:
    """Incremental apply vs. the full-recompute oracle, byte for byte."""

    @pytest.mark.parametrize("seed", range(50))
    def test_seeded_random_sequences_are_byte_equal_and_proportional(
        self, seed
    ):
        """50 random sequences x 6 deltas = 300 differential steps.

        Every step must (a) serialize byte-equal to the batch oracle
        and (b) re-annotate exactly the touched items — the cost side
        of the memoization contract.
        """
        rng = random.Random(1000 + seed)
        scenario, enactor = make_enactor()
        universe = []
        next_index = 0
        # bootstrap: a handful of items with full evidence
        bootstrap = {}
        for _ in range(rng.randint(4, 8)):
            item = stream_item(next_index)
            next_index += 1
            universe.append(item)
            bootstrap[item] = random_row(rng)
        deltas = [Delta(upserts=bootstrap)]
        for _ in range(5):
            delta, next_index = random_delta(rng, universe, next_index)
            deltas.append(delta)
        for delta in deltas:
            outcome = enactor.apply(delta)
            incremental = result_bytes(outcome.result)
            oracle = result_bytes(enactor.full_recompute())
            assert incremental == oracle, (
                f"seed {seed}: divergence on delta "
                f"{delta.fingerprint()[:12]} ({delta.to_document()})"
            )
            report = outcome.report
            # cost proportionality: only touched items are re-annotated,
            # and the memo accounting covers every (assertion, item) pair
            touched = len(delta.touched_items())
            assert report.reannotated_items == touched
            total = report.items_total
            assert report.memo_hits + report.memo_misses == (
                N_ASSERTIONS * total
            )
            # at most: the collection-scoped classifier over everything
            # plus the two item-local scores over the touched subset
            assert report.memo_misses <= total + 2 * touched

    def test_update_costs_stay_proportional_to_the_delta(self):
        """At a 10% delta ratio the memo absorbs ~90% of QA verdicts."""
        scenario, enactor = make_enactor()
        records = synthetic_records(items=40, steps=6, delta_ratio=0.1, seed=9)
        bootstrap = enactor.apply(records[0].delta)
        assert bootstrap.report.new_items == 40
        assert bootstrap.report.memo_hits == 0
        for record in records[1:]:
            report = enactor.apply(record.delta).report
            assert report.items_total == 40
            assert report.reannotated_items == 4
            # two item-local QAs reuse 36 verdicts each; only the
            # collection-scoped classifier pays full price
            assert report.memo_hits == 2 * 36
            assert report.memo_misses == 40 + 2 * 4
            assert report.qa_item_evaluations == 48  # vs 120 for batch

    def test_retractions_and_unknown_items_match_the_oracle(self):
        scenario, enactor = make_enactor()
        items = {stream_item(i): random_row(random.Random(i)) for i in range(6)}
        enactor.apply(Delta(upserts=items))
        # retract one whole row, one single cell, and touch a brand-new
        # item with an empty upsert (membership without evidence)
        outcome = enactor.apply(
            Delta(
                upserts={stream_item(99): {}},
                retractions=[
                    (stream_item(0), None),
                    (stream_item(1), Q.HitRatio),
                ],
            )
        )
        assert result_bytes(outcome.result) == result_bytes(
            enactor.full_recompute()
        )
        assert stream_item(99) in enactor.items

    def test_threshold_edit_rebuilds_the_filter_and_matches(self):
        scenario, enactor = make_enactor()
        rng = random.Random(5)
        enactor.apply(
            Delta(
                upserts={
                    stream_item(i): random_row(rng) for i in range(8)
                }
            )
        )
        before = enactor.apply(Delta()).result.surviving()
        outcome = enactor.apply(Delta(thresholds={FILTER_ACTION: "HR > 0"}))
        assert outcome.report.actions_rebuilt == [FILTER_ACTION]
        # "HR > 0" accepts everything with any hit ratio — strictly more
        # permissive than the class-based default
        assert len(outcome.result.surviving()) >= len(before)
        assert result_bytes(outcome.result) == result_bytes(
            enactor.full_recompute()
        )

    def test_threshold_edit_for_unknown_action_is_a_stream_error(self):
        scenario, enactor = make_enactor()
        with pytest.raises(StreamError, match="unknown action"):
            enactor.apply(Delta(thresholds={"no such action": "HR > 1"}))

    def test_invalid_condition_is_a_stream_error(self):
        scenario, enactor = make_enactor()
        with pytest.raises(StreamError, match="invalid condition"):
            enactor.apply(Delta(thresholds={FILTER_ACTION: ">>>"}))

    def test_empty_delta_is_all_memo_hits(self):
        scenario, enactor = make_enactor()
        rng = random.Random(11)
        enactor.apply(
            Delta(upserts={stream_item(i): random_row(rng) for i in range(5)})
        )
        report = enactor.apply(Delta()).report
        assert report.reannotated_items == 0
        assert report.memo_misses == 0
        assert report.memo_hits == N_ASSERTIONS * 5
        assert report.annotators_fired == 0


# -- the engine: windows, drift, resume --------------------------------------


class TestStreamEngine:
    def test_drift_fires_on_a_degraded_tail(self):
        scenario, enactor = make_enactor()
        records = synthetic_records(
            items=20, steps=12, delta_ratio=0.3, seed=4,
            drift_after=6, drift_quality=0.2,
        )
        engine = StreamEngine(
            enactor,
            windows=RollingWindows(5.0),
            detectors=[
                EwmaDetector(warmup=3),
                CusumDetector(warmup=3, slack=0.01, limit=0.05),
            ],
        )
        stats = engine.run(ListSource(records))
        assert stats.processed == len(records)
        assert stats.drift_events >= 1
        assert stats.windows_closed >= 1
        assert stats.watermark == records[-1].seq

    def test_resume_skips_processed_records_and_duplicates_nothing(
        self, tmp_path
    ):
        from repro.storage import CursorFile

        records = synthetic_records(
            items=12, steps=8, delta_ratio=0.25, seed=3,
            drift_after=4, drift_quality=0.2,
        )
        detectors = lambda: [  # noqa: E731 - tiny factory
            EwmaDetector(warmup=2, threshold=2.0),
            CusumDetector(warmup=2, slack=0.01, limit=0.05),
        ]

        # first run: process a prefix, then "crash"
        scenario1, enactor1 = make_enactor()
        engine1 = StreamEngine(
            enactor1,
            detectors=detectors(),
            cursor=CursorFile(tmp_path, "resume-test"),
        )
        first_drift = []
        stats1 = engine1.run(
            ListSource(records[:6]),
            on_step=lambda step: first_drift.extend(
                (step.record.seq, e.detector) for e in step.drift_events
            ),
        )
        assert stats1.processed == 6
        assert stats1.watermark == 6

        # second run: fresh process, same cursor, full feed
        scenario2, enactor2 = make_enactor()
        engine2 = StreamEngine(
            enactor2,
            detectors=detectors(),
            cursor=CursorFile(tmp_path, "resume-test"),
        )
        assert engine2.resumed
        assert engine2.watermark == 6
        second_drift = []
        stats2 = engine2.run(
            ListSource(records),
            on_step=lambda step: second_drift.extend(
                (step.record.seq, e.detector) for e in step.drift_events
            ),
        )
        # no record is reprocessed, the skipped prefix is replayed into
        # the feed, and one bootstrap re-introduces the full data set
        assert stats2.skipped == 6
        assert stats2.replayed == 6
        assert stats2.processed == len(records) - 6
        assert stats2.bootstrapped_items == 12
        # no duplicate drift: every event belongs to a live record of
        # its own run, so the two runs' sequence numbers are disjoint
        assert all(seq <= 6 for seq, _ in first_drift)
        assert all(seq > 6 for seq, _ in second_drift)
        # the resumed state is byte-equal to a batch run over the feed
        assert result_bytes(
            enactor2.apply(Delta()).result
        ) == result_bytes(enactor2.full_recompute())
        assert CursorFile(tmp_path, "resume-test").load()["seq"] == len(
            records
        )

    def test_restart_over_fully_consumed_feed_is_all_skips(self, tmp_path):
        from repro.storage import CursorFile

        records = synthetic_records(items=6, steps=4, seed=8)
        scenario1, enactor1 = make_enactor()
        engine1 = StreamEngine(
            enactor1, cursor=CursorFile(tmp_path, "done")
        )
        engine1.run(ListSource(records))

        scenario2, enactor2 = make_enactor()
        engine2 = StreamEngine(
            enactor2,
            detectors=[EwmaDetector(warmup=1, threshold=0.1)],
            cursor=CursorFile(tmp_path, "done"),
        )
        stats = engine2.run(ListSource(records))
        assert stats.processed == 0
        assert stats.skipped == len(records)
        assert stats.drift_events == 0  # nothing re-announced

    def test_queue_source_feeds_the_engine(self):
        scenario, enactor = make_enactor()
        engine = StreamEngine(enactor)
        source = QueueSource()
        for record in synthetic_records(items=4, steps=2, seed=6):
            source.put(record)
        source.close()
        stats = engine.run(source)
        assert stats.processed == 3
        assert 0.0 <= stats.last_signal <= 1.0


# -- the serving surface -----------------------------------------------------


def _serving_request(url, method="GET", body=None, headers=None):
    from urllib.error import HTTPError
    from urllib.request import Request, urlopen

    request = Request(url, data=body, method=method)
    for header, value in (headers or {}).items():
        request.add_header(header, value)
    try:
        with urlopen(request, timeout=60) as response:
            raw, status = response.read(), response.status
            response_headers = dict(response.headers)
    except HTTPError as error:
        raw, status = error.read(), error.code
        response_headers = dict(error.headers)
    return status, json.loads(raw.decode("utf-8")), response_headers


def _start_stream_server(quota_rate=500.0, quota_burst=500.0):
    from repro.serving import QualityViewServer, ServingConfig

    scenario = build_stream_scenario()
    runtime = scenario.framework.runtime(
        workers=1, queue_size=8, queue_policy="reject", name="stream-serving"
    )
    config = ServingConfig(
        port=0, quota_rate=quota_rate, quota_burst=quota_burst
    )
    server = QualityViewServer(scenario.framework, runtime, config=config)
    return scenario, runtime, server


@pytest.fixture()
def delta_server():
    from repro.core.ispider import example_quality_view_xml

    scenario, runtime, server = _start_stream_server()
    with server as running:
        running.serve_in_background()
        status, _, _ = _serving_request(
            f"{running.url}/views/stream-view",
            "PUT",
            example_quality_view_xml().encode("utf-8"),
            {"Content-Type": "application/xml", "X-Tenant": "streamer"},
        )
        assert status == 201
        yield running, scenario
    runtime.shutdown(drain=True)


def _delta_body(delta: Delta) -> bytes:
    return json.dumps({"delta": delta_to_document(delta)}).encode("utf-8")


class TestServingDeltas:
    def test_post_delta_enacts_incrementally_with_session_memo(
        self, delta_server
    ):
        server, scenario = delta_server
        rng = random.Random(21)
        rows = {stream_item(i): random_row(rng) for i in range(10)}
        # the server-side enactor treats upserts as invalidation hints:
        # the annotator reads the scenario's table, so populate it first
        scenario.table.apply(Delta(upserts=rows))
        status, document, _ = _serving_request(
            f"{server.url}/views/stream-view/deltas",
            "POST",
            _delta_body(Delta(upserts=rows)),
            {"X-Tenant": "streamer"},
        )
        assert status == 200
        assert document["view"] == "stream-view"
        assert document["report"]["items_total"] == 10
        assert document["report"]["new_items"] == 10
        assert document["result"]["items"]
        assert document["delta"]["size"] == sum(len(r) for r in rows.values())

        # the session memo persists: a second, smaller delta reuses it
        touch = {stream_item(0): random_row(rng)}
        scenario.table.apply(Delta(upserts=touch))
        status, second, _ = _serving_request(
            f"{server.url}/views/stream-view/deltas",
            "POST",
            _delta_body(Delta(upserts=touch)),
            {"X-Tenant": "streamer"},
        )
        assert status == 200
        assert second["report"]["items_total"] == 10
        assert second["report"]["reannotated_items"] == 1
        assert second["report"]["memo_hits"] > 0

    def test_reregistration_drops_the_stream_session(self, delta_server):
        from repro.core.ispider import example_quality_view_xml

        server, scenario = delta_server
        rng = random.Random(22)
        rows = {stream_item(i): random_row(rng) for i in range(4)}
        scenario.table.apply(Delta(upserts=rows))
        status, first, _ = _serving_request(
            f"{server.url}/views/stream-view/deltas",
            "POST",
            _delta_body(Delta(upserts=rows)),
        )
        assert status == 200 and first["report"]["items_total"] == 4
        # re-register with a different condition: new fingerprint
        status, _, _ = _serving_request(
            f"{server.url}/views/stream-view",
            "PUT",
            example_quality_view_xml("HR > 40").encode("utf-8"),
            {"Content-Type": "application/xml"},
        )
        assert status == 200
        touch = {stream_item(0): {}}
        status, after, _ = _serving_request(
            f"{server.url}/views/stream-view/deltas",
            "POST",
            _delta_body(Delta(upserts=touch)),
        )
        assert status == 200
        # the memo was reset: only the touched item is tracked now
        assert after["report"]["items_total"] == 1

    def test_malformed_bodies_answer_422(self, delta_server):
        server, _ = delta_server
        for body in (
            b'{"no_delta": 1}',
            b'{"delta": {"retractions": [["only-item"]]}}',
            b'{"delta": {"thresholds": {"no such action": "HR > 1"}}}',
        ):
            status, document, _ = _serving_request(
                f"{server.url}/views/stream-view/deltas", "POST", body
            )
            assert status == 422, body
            assert document["error"] == "invalid_delta"

    def test_unknown_view_answers_404(self, delta_server):
        server, _ = delta_server
        status, document, _ = _serving_request(
            f"{server.url}/views/nope/deltas", "POST", _delta_body(Delta())
        )
        assert status == 404
        assert document["error"] == "unknown_view"

    def test_deltas_share_the_tenant_quota(self):
        from repro.core.ispider import example_quality_view_xml

        scenario, runtime, server = _start_stream_server(
            quota_rate=0.001, quota_burst=2.0
        )
        with server as running:
            running.serve_in_background()
            status, _, _ = _serving_request(
                f"{running.url}/views/metered",
                "PUT",
                example_quality_view_xml().encode("utf-8"),
                {"Content-Type": "application/xml"},
            )
            assert status == 201
            headers = {"X-Tenant": "metered-tenant"}
            for _ in range(2):
                status, _, _ = _serving_request(
                    f"{running.url}/views/metered/deltas",
                    "POST",
                    _delta_body(Delta()),
                    headers,
                )
                assert status == 200
            status, document, response_headers = _serving_request(
                f"{running.url}/views/metered/deltas",
                "POST",
                _delta_body(Delta()),
                headers,
            )
            assert status == 429
            assert document["error"] == "quota_exhausted"
            assert "Retry-After" in response_headers
        runtime.shutdown(drain=True)


# -- the CLI -----------------------------------------------------------------


class TestStreamCli:
    def run_cli(self, argv):
        from repro.cli import main

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = main(argv)
        return status, buffer.getvalue()

    def test_synthetic_stream_verifies_byte_equal(self):
        status, output = self.run_cli(
            [
                "stream", "--items", "10", "--steps", "4",
                "--delta-ratio", "0.2", "--seed", "13", "--verify",
            ]
        )
        assert status == 0
        assert "verification: 5/5 byte-equal" in output
        assert "MISMATCH" not in output

    def test_emit_then_consume_a_feed_file_with_resume(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        status, output = self.run_cli(
            [
                "stream", "--emit-events", str(feed),
                "--items", "8", "--steps", "6", "--seed", "3",
            ]
        )
        assert status == 0
        assert "wrote 7 records" in output

        cursor_dir = tmp_path / "cursors"
        status, output = self.run_cli(
            [
                "stream", "--events", str(feed),
                "--cursor-dir", str(cursor_dir),
                "--max-records", "4",
            ]
        )
        assert status == 0
        assert "4 processed" in output

        status, output = self.run_cli(
            [
                "stream", "--events", str(feed),
                "--cursor-dir", str(cursor_dir), "--verify",
            ]
        )
        assert status == 0
        assert "resumed from persisted watermark seq 4" in output
        assert "3 processed, 4 skipped" in output
        assert "verification: 3/3 byte-equal" in output

    def test_store_info_lists_cursors(self, tmp_path):
        from repro.storage import CursorFile, DiskBackend

        directory = tmp_path / "store"
        backend = DiskBackend(str(directory))
        backend.close()
        CursorFile(directory, "tail").save({"seq": 41, "stream": "tail"})
        (directory / "stream-broken.cursor").write_text("garbage")
        status, output = self.run_cli(["store", "info", str(directory)])
        assert status == 0
        description = json.loads(output)
        cursors = description["stream_cursors"]
        assert cursors["stream-tail.cursor"]["seq"] == 41
        assert cursors["stream-broken.cursor"] == "unreadable"

    def test_bad_delta_ratio_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert main(["stream", "--delta-ratio", "2.0"]) == 2
        assert "--delta-ratio" in capsys.readouterr().err
