"""Tests for structured evidence, assertion provenance, the QV library,
and the CLI."""

import pytest

from repro.annotation import AnnotationMap, AnnotationStore
from repro.annotation.structured import (
    annotate_structured,
    lookup_assertions,
    lookup_structured,
    record_assertions,
)
from repro.core.ispider import example_quality_view_xml
from repro.qv import QualityViewLibrary, LibraryError, parse_quality_view
from repro.rdf import Q, URIRef
from repro.rdf.lsid import uniprot_lsid

D1 = uniprot_lsid("P00001")


class TestStructuredEvidence:
    def test_roundtrip(self, iq_model):
        store = AnnotationStore("s", iq_model=iq_model)
        annotate_structured(
            store, D1, Q.EvidenceCode,
            {"code": "IDA", "curator": "db", "reliability": 5},
        )
        description = lookup_structured(store, D1, Q.EvidenceCode)
        assert description == {"code": "IDA", "curator": "db", "reliability": 5}

    def test_uri_values_preserved(self):
        store = AnnotationStore("s")
        annotate_structured(
            store, D1, Q.EvidenceCode, {"source": Q.UniprotEntry}
        )
        description = lookup_structured(store, D1, Q.EvidenceCode)
        assert description["source"] == Q.UniprotEntry

    def test_missing_returns_none(self):
        store = AnnotationStore("s")
        assert lookup_structured(store, D1, Q.EvidenceCode) is None

    def test_empty_description_rejected(self):
        store = AnnotationStore("s")
        with pytest.raises(ValueError):
            annotate_structured(store, D1, Q.EvidenceCode, {})

    def test_type_checked_against_iq_model(self, iq_model):
        store = AnnotationStore("s", iq_model=iq_model)
        with pytest.raises(ValueError):
            annotate_structured(store, D1, Q.NotARealType, {"x": 1})

    def test_coexists_with_plain_evidence(self, iq_model):
        store = AnnotationStore("s", iq_model=iq_model)
        store.annotate(D1, Q.HitRatio, 0.9)
        annotate_structured(store, D1, Q.EvidenceCode, {"code": "TAS"})
        assert store.lookup(D1, Q.HitRatio) == 0.9
        assert lookup_structured(store, D1, Q.EvidenceCode)["code"] == "TAS"


class TestAssertionProvenance:
    def make_map(self):
        amap = AnnotationMap([D1])
        amap.set_tag(D1, "ScoreClass", Q.high, syn_type=Q["class"],
                     sem_type=Q.PIScoreClassification)
        amap.set_tag(D1, "HR MC", 73.25, syn_type=Q.score)
        return amap

    def test_record_and_lookup(self):
        store = AnnotationStore("p")
        written = record_assertions(store, self.make_map())
        assert written == 2
        results = lookup_assertions(store, D1)
        assert ("HR MC", 73.25) in results
        assert ("ScoreClass", Q.high) in results

    def test_null_tags_skipped(self):
        store = AnnotationStore("p")
        amap = AnnotationMap([D1])
        amap.set_tag(D1, "empty", None)
        assert record_assertions(store, amap) == 0

    def test_provenance_is_sparql_queryable(self):
        store = AnnotationStore("p")
        record_assertions(store, self.make_map())
        result = store.graph.query("""
            PREFIX q: <http://qurator.org/iq#>
            SELECT ?item ?cls WHERE {
              ?item q:hasAssertionResult ?r .
              ?r q:assignedClass ?cls .
            }
        """)
        assert list(result) == [(D1, Q.high)]


class TestLibrary:
    def test_publish_and_versions(self, iq_model):
        library = QualityViewLibrary(iq_model)
        library.publish_xml(example_quality_view_xml(), author="pm")
        library.publish_xml(example_quality_view_xml("HR MC > 30"))
        assert library.versions_of("protein-id-quality") == [1, 2]
        latest = library.get("protein-id-quality")
        assert latest.version == 2
        assert library.get("protein-id-quality", 1).author == "pm"

    def test_unknown_entries_raise(self, iq_model):
        library = QualityViewLibrary(iq_model)
        with pytest.raises(LibraryError):
            library.get("ghost")
        library.publish_xml(example_quality_view_xml())
        with pytest.raises(LibraryError):
            library.get("protein-id-quality", 9)

    def test_validation_on_publish(self, iq_model):
        library = QualityViewLibrary(iq_model)
        bad = example_quality_view_xml().replace("q:hitRatio", "q:Bogus")
        with pytest.raises(ValueError):
            library.publish_xml(bad)
        assert len(library) == 0

    def test_find_by_evidence_case_insensitive(self, iq_model):
        library = QualityViewLibrary(iq_model)
        library.publish_xml(example_quality_view_xml())
        assert library.find_by_evidence(Q.Coverage)
        assert library.find_by_evidence(Q.coverage)
        assert not library.find_by_evidence(Q.JournalImpactFactor)

    def test_find_by_assertion_walks_hierarchy(self, iq_model):
        library = QualityViewLibrary(iq_model)
        library.publish_xml(example_quality_view_xml())
        # the view uses UniversalPIScore2, a subclass of UniversalPIScore
        assert library.find_by_assertion(Q.UniversalPIScore)

    def test_find_by_dimension(self, iq_model):
        library = QualityViewLibrary(iq_model)
        library.publish_xml(example_quality_view_xml())
        assert library.find_by_dimension(Q.Accuracy)
        assert not library.find_by_dimension(Q.Currency)

    def test_export_import_roundtrip(self, iq_model, tmp_path):
        library = QualityViewLibrary(iq_model)
        library.publish_xml(example_quality_view_xml())
        paths = library.export_to(str(tmp_path))
        assert len(paths) == 1
        other = QualityViewLibrary(iq_model)
        imported = other.import_from(str(tmp_path), author="peer")
        assert len(imported) == 1
        assert imported[0].spec.tag_names() == ["HR MC", "HR", "ScoreClass"]
        assert imported[0].author == "peer"


class TestCLI:
    def test_validate_ok(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "view.xml"
        path.write_text(example_quality_view_xml())
        assert main(["validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_bad_view(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "view.xml"
        path.write_text(
            example_quality_view_xml().replace("q:hitRatio", "q:Bogus")
        )
        assert main(["validate", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_prints_scufl(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "view.xml"
        path.write_text(example_quality_view_xml())
        assert main(["compile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "<scufl" in out
        assert "DataEnrichment" in out

    def test_demo_runs(self, capsys):
        from repro.cli import main

        assert main(["demo", "--spots", "2", "--proteins", "80",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "GO occurrences" in out

    def test_info(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        assert "Qurator" in capsys.readouterr().out


class TestLibraryDiff:
    def test_version_diff(self, iq_model):
        library = QualityViewLibrary(iq_model)
        library.publish_xml(example_quality_view_xml("ScoreClass in q:high"))
        library.publish_xml(
            example_quality_view_xml("ScoreClass in q:high, q:mid")
        )
        diff = library.diff("protein-id-quality")
        assert not diff.is_empty()
        assert "filter top k score" in diff.changed_conditions

    def test_explicit_versions(self, iq_model):
        library = QualityViewLibrary(iq_model)
        for condition in ("HR MC > 10", "HR MC > 20", "HR MC > 30"):
            library.publish_xml(example_quality_view_xml(condition))
        diff = library.diff("protein-id-quality", 1, 3)
        (change,) = diff.changed_conditions.values()
        assert change == (["HR MC > 10"], ["HR MC > 30"])

    def test_single_version_diff_is_empty(self, iq_model):
        library = QualityViewLibrary(iq_model)
        library.publish_xml(example_quality_view_xml())
        assert library.diff("protein-id-quality").is_empty()
