"""The inter-process wire codec: round trips and the picklability guard.

Every payload the process execution backend puts on a queue must
survive ``serving/wire.py`` encode/decode bit-for-bit; anything else is
rejected *at send time* with an error naming the offending type — never
silently coerced on the far side.
"""

from __future__ import annotations

import pytest

from repro.annotation.map import AnnotationMap
from repro.rdf import Literal, Q, URIRef, XSD
from repro.serving import wire


def _item(index: int) -> URIRef:
    return URIRef(f"urn:test:item:{index}")


def _rich_map() -> AnnotationMap:
    """A map exercising every term shape the codec must preserve."""
    amap = AnnotationMap([_item(1), _item(2), _item(3)])
    amap.set_evidence(_item(1), Q.HitRatio, Literal("0.25", datatype=XSD.double))
    amap.set_evidence(_item(1), Q.MassCoverage, 0.75)
    amap.set_evidence(_item(2), Q.HitRatio, None)
    amap.set_evidence(_item(2), Q.ELDP, 3)
    amap.set_evidence(_item(3), Q.MassCoverage, Literal("high", lang="en"))
    amap.set_tag(_item(1), "PIScore", 0.9, syn_type=XSD.double, sem_type=Q.PIScore)
    amap.set_tag(_item(3), "ScoreClass", URIRef(str(Q.high)))
    return amap


class TestMessageRoundTrip:
    """encode_message/decode_message over every message kind."""

    DOCUMENTS = [
        {"kind": "view", "fingerprint": "abc", "xml": "<qv/>",
         "mode": "optimized", "processors": ["a", "b"], "shardable": ["a"]},
        {"kind": "chunk", "job": 7, "attempt": 1, "seq": 0,
         "fingerprint": "abc", "items": ["urn:test:item:1"]},
        {"kind": "clear"},
        {"kind": "stop"},
        {"kind": "ready", "shard": 3},
        {"kind": "part", "shard": 0, "job": 7, "attempt": 1, "seq": 0,
         "frontier": [["p", "annotationMap", {"kind": "null"}]],
         "cache_lookups": 4, "cache_hits": 2},
        {"kind": "stat", "shard": 0, "job": 7, "seq": 0, "items": 8,
         "status": "completed", "stage_seconds": {"annotate": 0.25},
         "cache_lookups": 4, "cache_hits": 2},
        {"kind": "error", "shard": 1, "job": 7, "attempt": 2, "seq": 3,
         "processor": "annotate PMF evidence",
         "error": {"type": "RuntimeError", "message": "boom"}},
    ]

    @pytest.mark.parametrize(
        "document", DOCUMENTS, ids=[d["kind"] for d in DOCUMENTS]
    )
    def test_kind_round_trips(self, document):
        payload = wire.encode_message(document)
        assert isinstance(payload, bytes)
        assert wire.decode_message(payload) == document

    def test_every_kind_is_covered(self):
        assert {d["kind"] for d in self.DOCUMENTS} == set(wire.MESSAGE_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(wire.WireError, match="unknown message kind"):
            wire.encode_message({"kind": "gossip"})

    def test_malformed_payload_rejected(self):
        with pytest.raises(wire.WireError, match="malformed"):
            wire.decode_message(b'{"job": 1}')


class TestWireGuard:
    """The strict type guard: failures name the offending type."""

    def test_uriref_value_names_the_type(self):
        # URIRef is a str subclass: it would serialize fine and decode
        # as plain str — exactly the silent corruption the guard exists
        # to catch, so the exact-type check must reject it by name.
        with pytest.raises(wire.WireError, match="URIRef"):
            wire.encode_message({"kind": "chunk", "items": [_item(1)]})

    def test_arbitrary_object_names_the_type(self):
        class Opaque:
            pass

        with pytest.raises(wire.WireError, match="Opaque"):
            wire.encode_message({"kind": "stat", "payload": Opaque()})

    def test_error_names_the_path(self):
        with pytest.raises(wire.WireError, match=r"message\.items\[1\]"):
            wire.encode_message(
                {"kind": "chunk", "items": ["ok", _item(2)]}
            )

    def test_non_string_key_rejected(self):
        with pytest.raises(wire.WireError, match="plain str"):
            wire.encode_message({"kind": "stat", 3: "x"})

    def test_annotation_map_must_use_value_codec(self):
        with pytest.raises(wire.WireError, match="AnnotationMap"):
            wire.encode_message({"kind": "part", "map": _rich_map()})


class TestTypedValueCodecs:
    """Lossless annotation-map / stage-value round trips."""

    def test_typed_map_round_trips_equal(self):
        amap = _rich_map()
        decoded = wire.decode_typed_map(wire.encode_typed_map(amap))
        assert decoded == amap

    def test_typed_map_preserves_order_and_types(self):
        amap = _rich_map()
        document = wire.encode_typed_map(amap)
        # The encoded document is itself wire-safe (nested in parts).
        wire.encode_message({"kind": "part", "frontier": [
            ["p", "annotationMap", {"kind": "annotationMap", "map": document}]
        ]})
        decoded = wire.decode_typed_map(document)
        assert list(decoded.items()) == list(amap.items())
        evidence = decoded.evidence_for(_item(1))
        assert list(evidence) == list(amap.evidence_for(_item(1)))
        lexical = evidence[Q.HitRatio]
        assert isinstance(lexical, Literal)
        assert lexical.lexical == "0.25"
        assert lexical.datatype == XSD.double
        assert isinstance(evidence[Q.MassCoverage], float)
        assert decoded.evidence_for(_item(2))[Q.HitRatio] is None
        lang = decoded.evidence_for(_item(3))[Q.MassCoverage]
        assert lang.lang == "en"
        tag = decoded.get_tag(_item(1), "PIScore")
        assert tag.value == 0.9
        assert tag.syn_type == XSD.double
        assert tag.sem_type == Q.PIScore

    def test_stage_value_round_trips(self):
        amap = _rich_map()
        for value in (None, amap, [str(_item(1)), str(_item(2))]):
            document = wire.encode_stage_value(value)
            decoded = wire.decode_stage_value(document)
            if value is None:
                assert decoded is None
            elif isinstance(value, AnnotationMap):
                assert decoded == value
            else:
                assert decoded == [URIRef(entry) for entry in value]

    def test_stage_value_rejects_unknown_types(self):
        with pytest.raises(wire.WireError, match="dict"):
            wire.encode_stage_value({"not": "a stage value"})
        with pytest.raises(wire.WireError, match="int"):
            wire.encode_stage_value([3])

    def test_unknown_term_and_stage_tags_rejected(self):
        with pytest.raises(wire.WireError, match="unknown stage-value"):
            wire.decode_stage_value({"kind": "mystery"})
