"""Tests for the workflow environment: model, enactor, scavenger, SCUFL."""

import pytest

from repro.annotation import AnnotationMap
from repro.annotation.functions import CallableAnnotationFunction
from repro.rdf import Q, URIRef
from repro.services import AnnotationService, ServiceRegistry
from repro.workflow import (
    Enactor,
    EnactmentError,
    Port,
    PythonProcessor,
    Scavenger,
    StringConstantProcessor,
    Workflow,
    WorkflowError,
)
from repro.workflow.scufl import workflow_from_xml, workflow_to_xml


def linear_workflow():
    wf = Workflow("linear")
    wf.add_input("x")
    wf.add_output("y")
    wf.add_processor(
        PythonProcessor("double", lambda v: v * 2,
                        input_ports={"v": 1}, output_ports={"out": 0})
    )
    wf.add_processor(
        PythonProcessor("inc", lambda v: v + 1,
                        input_ports={"v": 1}, output_ports={"out": 0})
    )
    wf.connect("", "x", "double", "v")
    wf.connect("double", "out", "inc", "v")
    wf.connect("inc", "out", "", "y")
    return wf


class TestModel:
    def test_duplicate_processor_rejected(self):
        wf = Workflow("w")
        wf.add_processor(StringConstantProcessor("c", "v"))
        with pytest.raises(WorkflowError):
            wf.add_processor(StringConstantProcessor("c", "v"))

    def test_link_validates_ports(self):
        wf = linear_workflow()
        with pytest.raises(WorkflowError):
            wf.connect("double", "nonexistent", "inc", "v")
        with pytest.raises(WorkflowError):
            wf.connect("ghost", "out", "inc", "v")
        with pytest.raises(WorkflowError):
            wf.connect("", "not_an_input", "inc", "v")

    def test_control_link_validates_names(self):
        wf = linear_workflow()
        with pytest.raises(WorkflowError):
            wf.control("double", "ghost")

    def test_topological_order_respects_data_links(self):
        order = linear_workflow().topological_order()
        assert order.index("double") < order.index("inc")

    def test_topological_order_respects_control_links(self):
        wf = Workflow("w")
        wf.add_processor(StringConstantProcessor("a", "1"))
        wf.add_processor(StringConstantProcessor("b", "2"))
        wf.control("b", "a")
        order = wf.topological_order()
        assert order.index("b") < order.index("a")

    def test_cycle_detected(self):
        wf = Workflow("w")
        wf.add_processor(PythonProcessor("a", lambda v: v,
                                         input_ports={"v": 1},
                                         output_ports={"out": 0}))
        wf.add_processor(PythonProcessor("b", lambda v: v,
                                         input_ports={"v": 1},
                                         output_ports={"out": 0}))
        wf.connect("a", "out", "b", "v")
        wf.connect("b", "out", "a", "v")
        with pytest.raises(WorkflowError, match="cycle"):
            wf.topological_order()

    def test_validate_rejects_double_fed_port(self):
        wf = linear_workflow()
        wf.add_processor(StringConstantProcessor("c", "v"))
        wf.data_links.append(
            type(wf.data_links[0])(Port("c", "value"), Port("inc", "v"))
        )
        with pytest.raises(WorkflowError, match="multiple data links"):
            wf.validate()

    def test_validate_rejects_unfed_output(self):
        wf = Workflow("w")
        wf.add_output("y")
        with pytest.raises(WorkflowError, match="exactly one"):
            wf.validate()


class TestEnactor:
    def test_linear_run(self):
        outputs = Enactor().run(linear_workflow(), {"x": 5})
        assert outputs == {"y": 11}

    def test_missing_input_rejected(self):
        with pytest.raises(WorkflowError, match="missing inputs"):
            Enactor().run(linear_workflow(), {})

    def test_processor_failure_wrapped(self):
        wf = Workflow("boom")
        wf.add_processor(
            PythonProcessor("bad", lambda: 1 / 0, output_ports={"out": 0})
        )
        with pytest.raises(EnactmentError) as info:
            Enactor().run(wf, {})
        assert info.value.processor == "bad"

    def test_trace_records_order_and_status(self):
        enactor = Enactor()
        enactor.run(linear_workflow(), {"x": 1})
        trace = enactor.last_trace
        assert trace.order() == ["double", "inc"]
        assert all(e.status == "completed" for e in trace.events)
        assert trace.failed() == []

    def test_implicit_iteration_over_scalar_port(self):
        wf = Workflow("iter")
        wf.add_input("xs")
        wf.add_output("ys")
        wf.add_processor(
            PythonProcessor("sq", lambda v: v * v,
                            input_ports={"v": 0}, output_ports={"out": 0})
        )
        wf.connect("", "xs", "sq", "v")
        wf.connect("sq", "out", "", "ys")
        assert Enactor().run(wf, {"xs": [1, 2, 3]})["ys"] == [1, 4, 9]

    def test_implicit_iteration_cross_product(self):
        wf = Workflow("cross")
        wf.add_input("a")
        wf.add_input("b")
        wf.add_output("c")
        wf.add_processor(
            PythonProcessor("pair", lambda x, y: (x, y),
                            input_ports={"x": 0, "y": 0},
                            output_ports={"out": 0})
        )
        wf.connect("", "a", "pair", "x")
        wf.connect("", "b", "pair", "y")
        wf.connect("pair", "out", "", "c")
        result = Enactor().run(wf, {"a": [1, 2], "b": ["u", "v"]})
        assert result["c"] == [(1, "u"), (1, "v"), (2, "u"), (2, "v")]

    def test_iteration_count_in_trace(self):
        wf = Workflow("iter")
        wf.add_input("xs")
        wf.add_output("ys")
        wf.add_processor(
            PythonProcessor("sq", lambda v: v,
                            input_ports={"v": 0}, output_ports={"out": 0})
        )
        wf.connect("", "xs", "sq", "v")
        wf.connect("sq", "out", "", "ys")
        enactor = Enactor()
        enactor.run(wf, {"xs": [1, 2, 3]})
        assert enactor.last_trace.events[0].iterations == 3


class TestScavenger:
    def make_registry(self):
        registry = ServiceRegistry()
        fn = CallableAnnotationFunction(
            Q["Imprint-output-annotation"],
            [Q.HitRatio],
            lambda item, ctx: {Q.HitRatio: 1.0},
        )
        registry.deploy(
            AnnotationService("AnnSvc", fn.function_class, "", fn)
        )
        return registry

    def test_scan_discovers_services(self):
        scavenger = Scavenger()
        found = scavenger.scan(self.make_registry())
        assert found == ["AnnSvc"]
        assert "AnnSvc" in scavenger

    def test_scan_is_incremental(self):
        registry = self.make_registry()
        scavenger = Scavenger()
        scavenger.scan(registry)
        assert scavenger.scan(registry) == []

    def test_processor_for_discovered_service(self):
        registry = self.make_registry()
        scavenger = Scavenger()
        scavenger.scan(registry)
        processor = scavenger.processor("AnnSvc")
        item = URIRef("urn:lsid:test:data:1")
        outputs = processor.fire(
            {"dataSet": [item], "annotationMap": AnnotationMap()}
        )
        assert outputs["annotationMap"].get_evidence(item, Q.HitRatio) == 1.0

    def test_unknown_service_raises(self):
        with pytest.raises(KeyError):
            Scavenger().processor("ghost")


class TestScufl:
    def test_structure_roundtrip(self):
        wf = linear_workflow()
        wf.control("double", "inc")
        restored = workflow_from_xml(workflow_to_xml(wf))
        assert set(restored.processors) == {"double", "inc"}
        assert restored.inputs == ["x"]
        assert restored.outputs == ["y"]
        assert len(restored.data_links) == 3
        assert len(restored.control_links) == 1
        assert restored.topological_order() == ["double", "inc"]

    def test_stub_processors_refuse_to_fire(self):
        restored = workflow_from_xml(workflow_to_xml(linear_workflow()))
        with pytest.raises(NotImplementedError):
            restored.processors["double"].fire({})

    def test_factory_supplies_implementations(self):
        def factory(name, type_name, inputs, outputs):
            return PythonProcessor(
                name, lambda v: v, input_ports=inputs, output_ports=outputs
            )

        restored = workflow_from_xml(
            workflow_to_xml(linear_workflow()), processor_factory=factory
        )
        assert Enactor().run(restored, {"x": 7}) == {"y": 7}
